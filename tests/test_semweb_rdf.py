"""Unit tests for the RDF triple store."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semweb.rdf import BNode, Graph, Literal, URIRef

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


class TestTerms:
    def test_uriref_is_a_string(self):
        term = uri("a")
        assert term == EX + "a"
        assert isinstance(term, str)

    def test_uriref_n3(self):
        assert uri("a").n3() == f"<{EX}a>"

    def test_bnode_n3(self):
        assert BNode("b0").n3() == "_:b0"

    def test_literal_plain(self):
        lit = Literal("hello")
        assert lit.lexical == "hello"
        assert lit.datatype is None
        assert lit.n3() == '"hello"'

    def test_literal_int(self):
        lit = Literal(42)
        assert lit.to_python() == 42
        assert lit.datatype == Literal.XSD_INTEGER

    def test_literal_float_roundtrip(self):
        lit = Literal(0.125)
        assert lit.to_python() == 0.125
        assert lit.datatype == Literal.XSD_DOUBLE

    def test_literal_bool(self):
        assert Literal(True).to_python() is True
        assert Literal(False).to_python() is False

    def test_literal_bool_not_confused_with_int(self):
        # bool is a subclass of int; make sure True maps to xsd:boolean.
        assert Literal(True).datatype == Literal.XSD_BOOLEAN

    def test_literal_language_tag(self):
        lit = Literal("Buch", language="de")
        assert lit.n3() == '"Buch"@de'

    def test_literal_rejects_datatype_and_language(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=Literal.XSD_STRING, language="en")

    def test_literal_equality_and_hash(self):
        assert Literal("a") == Literal("a")
        assert Literal("a") != Literal("a", language="en")
        assert hash(Literal(1)) == hash(Literal(1))

    def test_literal_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"

    def test_literal_escaping_in_n3(self):
        lit = Literal('say "hi"\nplease\t\\now')
        n3 = lit.n3()
        assert "\n" not in n3
        assert '\\"' in n3
        assert "\\n" in n3
        assert "\\t" in n3
        assert "\\\\" in n3


class TestGraphBasics:
    def test_empty_graph(self):
        graph = Graph()
        assert len(graph) == 0
        assert list(graph) == []

    def test_add_and_contains(self):
        graph = Graph()
        triple = (uri("s"), uri("p"), uri("o"))
        graph.add(triple)
        assert triple in graph
        assert len(graph) == 1

    def test_add_duplicate_is_noop(self):
        graph = Graph()
        triple = (uri("s"), uri("p"), Literal("x"))
        graph.add(triple)
        graph.add(triple)
        assert len(graph) == 1

    def test_add_returns_self_for_chaining(self):
        graph = Graph()
        result = graph.add((uri("s"), uri("p"), uri("o")))
        assert result is graph

    def test_constructor_with_triples(self):
        triples = [(uri("s"), uri("p"), Literal(i)) for i in range(3)]
        graph = Graph(triples)
        assert len(graph) == 3

    def test_rejects_literal_subject(self):
        with pytest.raises(TypeError):
            Graph().add((Literal("x"), uri("p"), uri("o")))

    def test_rejects_bnode_predicate(self):
        with pytest.raises(TypeError):
            Graph().add((uri("s"), BNode("b"), uri("o")))

    def test_rejects_plain_string_object(self):
        with pytest.raises(TypeError):
            Graph().add((uri("s"), uri("p"), "plain"))

    def test_bnode_subject_allowed(self):
        graph = Graph()
        graph.add((BNode("b"), uri("p"), Literal(1)))
        assert len(graph) == 1

    def test_graph_equality(self):
        t = (uri("s"), uri("p"), uri("o"))
        assert Graph([t]) == Graph([t])
        assert Graph([t]) != Graph()

    def test_graph_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())

    def test_copy_is_independent(self):
        graph = Graph([(uri("s"), uri("p"), uri("o"))])
        clone = graph.copy()
        clone.add((uri("s2"), uri("p"), uri("o")))
        assert len(graph) == 1
        assert len(clone) == 2


class TestPatternMatching:
    @pytest.fixture
    def graph(self) -> Graph:
        graph = Graph()
        graph.add((uri("alice"), uri("knows"), uri("bob")))
        graph.add((uri("alice"), uri("knows"), uri("carol")))
        graph.add((uri("bob"), uri("knows"), uri("carol")))
        graph.add((uri("alice"), uri("name"), Literal("Alice")))
        return graph

    def test_fully_bound_hit(self, graph):
        pattern = (uri("alice"), uri("knows"), uri("bob"))
        assert list(graph.triples(pattern)) == [pattern]

    def test_fully_bound_miss(self, graph):
        pattern = (uri("bob"), uri("knows"), uri("alice"))
        assert list(graph.triples(pattern)) == []

    def test_sp_pattern(self, graph):
        matches = set(graph.triples((uri("alice"), uri("knows"), None)))
        assert matches == {
            (uri("alice"), uri("knows"), uri("bob")),
            (uri("alice"), uri("knows"), uri("carol")),
        }

    def test_po_pattern(self, graph):
        matches = list(graph.triples((None, uri("knows"), uri("carol"))))
        assert len(matches) == 2
        assert {m[0] for m in matches} == {uri("alice"), uri("bob")}

    def test_so_pattern(self, graph):
        matches = list(graph.triples((uri("alice"), None, uri("bob"))))
        assert matches == [(uri("alice"), uri("knows"), uri("bob"))]

    def test_s_only(self, graph):
        assert len(list(graph.triples((uri("alice"), None, None)))) == 3

    def test_p_only(self, graph):
        assert len(list(graph.triples((None, uri("knows"), None)))) == 3

    def test_o_only(self, graph):
        assert len(list(graph.triples((None, None, uri("carol"))))) == 2

    def test_unbound(self, graph):
        assert len(list(graph.triples())) == 4

    def test_subjects_distinct(self, graph):
        subjects = list(graph.subjects(uri("knows")))
        assert sorted(subjects) == [uri("alice"), uri("bob")]

    def test_objects(self, graph):
        objects = set(graph.objects(uri("alice"), uri("knows")))
        assert objects == {uri("bob"), uri("carol")}

    def test_predicates(self, graph):
        predicates = set(graph.predicates(uri("alice")))
        assert predicates == {uri("knows"), uri("name")}

    def test_value_returns_object(self, graph):
        assert graph.value(uri("alice"), uri("name")) == Literal("Alice")

    def test_value_default(self, graph):
        assert graph.value(uri("dave"), uri("name"), default=Literal("?")) == Literal("?")

    def test_value_returns_subject(self, graph):
        found = graph.value(None, uri("name"), Literal("Alice"))
        assert found == uri("alice")

    def test_value_requires_one_unbound(self, graph):
        with pytest.raises(ValueError):
            graph.value(uri("a"), uri("b"), uri("c"))
        with pytest.raises(ValueError):
            graph.value(None, None, uri("c"))


class TestRemoval:
    def test_remove_exact(self):
        t = (uri("s"), uri("p"), uri("o"))
        graph = Graph([t])
        assert graph.remove(t) == 1
        assert len(graph) == 0

    def test_remove_pattern(self):
        graph = Graph()
        for i in range(5):
            graph.add((uri("s"), uri("p"), Literal(i)))
        graph.add((uri("s"), uri("q"), Literal(0)))
        removed = graph.remove((uri("s"), uri("p"), None))
        assert removed == 5
        assert len(graph) == 1

    def test_remove_missing_returns_zero(self):
        graph = Graph()
        assert graph.remove((uri("x"), None, None)) == 0

    def test_indexes_consistent_after_removal(self):
        graph = Graph()
        graph.add((uri("s"), uri("p"), uri("o")))
        graph.add((uri("s"), uri("p"), uri("o2")))
        graph.remove((uri("s"), uri("p"), uri("o")))
        assert list(graph.objects(uri("s"), uri("p"))) == [uri("o2")]
        assert list(graph.subjects(uri("p"), uri("o"))) == []

    def test_readd_after_remove(self):
        t = (uri("s"), uri("p"), uri("o"))
        graph = Graph([t])
        graph.remove(t)
        graph.add(t)
        assert t in graph


class TestSetOperations:
    def test_union(self):
        a = Graph([(uri("s"), uri("p"), Literal(1))])
        b = Graph([(uri("s"), uri("p"), Literal(2))])
        assert len(a | b) == 2

    def test_difference(self):
        t1 = (uri("s"), uri("p"), Literal(1))
        t2 = (uri("s"), uri("p"), Literal(2))
        assert set(Graph([t1, t2]) - Graph([t2])) == {t1}

    def test_intersection(self):
        t1 = (uri("s"), uri("p"), Literal(1))
        t2 = (uri("s"), uri("p"), Literal(2))
        assert set(Graph([t1, t2]) & Graph([t2])) == {t2}

    def test_update(self):
        a = Graph([(uri("s"), uri("p"), Literal(1))])
        b = Graph([(uri("s"), uri("p"), Literal(2))])
        a.update(b)
        assert len(a) == 2


@given(
    st.lists(
        st.tuples(
            st.sampled_from([uri(c) for c in "abcde"]),
            st.sampled_from([uri(p) for p in "pqr"]),
            st.sampled_from([uri(o) for o in "xyz"] + [Literal(i) for i in range(3)]),
        ),
        max_size=40,
    )
)
def test_graph_behaves_like_triple_set(triples):
    """Property: a Graph is observationally equivalent to a set of triples."""
    graph = Graph(triples)
    reference = set(triples)
    assert len(graph) == len(reference)
    assert set(graph) == reference
    for s, p, o in reference:
        assert (s, p, o) in graph
        assert (s, p, o) in set(graph.triples((s, None, None)))
        assert (s, p, o) in set(graph.triples((None, p, None)))
        assert (s, p, o) in set(graph.triples((None, None, o)))


@given(
    st.lists(
        st.tuples(
            st.sampled_from([uri(c) for c in "abc"]),
            st.sampled_from([uri(p) for p in "pq"]),
            st.sampled_from([Literal(i) for i in range(4)]),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_remove_then_rescan_consistent(triples):
    """Property: removing any one triple leaves all indexes consistent."""
    graph = Graph(triples)
    victim = triples[0]
    graph.remove(victim)
    reference = set(triples) - {victim}
    assert set(graph) == reference
    for s, p, o in reference:
        assert o in set(graph.objects(s, p))
