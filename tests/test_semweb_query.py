"""Unit tests for the BGP query engine."""

from __future__ import annotations

from repro.semweb.namespace import FOAF, RDF, TRUST
from repro.semweb.query import Variable, select, select_one
from repro.semweb.rdf import Graph, Literal, URIRef

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


def knows_graph() -> Graph:
    graph = Graph()
    graph.add((uri("alice"), FOAF.knows, uri("bob")))
    graph.add((uri("alice"), FOAF.knows, uri("carol")))
    graph.add((uri("bob"), FOAF.knows, uri("carol")))
    graph.add((uri("alice"), FOAF.name, Literal("Alice")))
    graph.add((uri("bob"), FOAF.name, Literal("Bob")))
    graph.add((uri("carol"), FOAF.name, Literal("Carol")))
    return graph


class TestSelect:
    def test_single_pattern(self):
        x = Variable("x")
        results = select(knows_graph(), [(uri("alice"), FOAF.knows, x)])
        assert {b[x] for b in results} == {uri("bob"), uri("carol")}

    def test_join_two_patterns(self):
        x, name = Variable("x"), Variable("name")
        results = select(
            knows_graph(),
            [
                (uri("alice"), FOAF.knows, x),
                (x, FOAF.name, name),
            ],
        )
        assert {(b[x], b[name].lexical) for b in results} == {
            (uri("bob"), "Bob"),
            (uri("carol"), "Carol"),
        }

    def test_triangle_join(self):
        x, y = Variable("x"), Variable("y")
        results = select(
            knows_graph(),
            [
                (uri("alice"), FOAF.knows, x),
                (x, FOAF.knows, y),
                (uri("alice"), FOAF.knows, y),
            ],
        )
        assert len(results) == 1
        assert results[0][x] == uri("bob")
        assert results[0][y] == uri("carol")

    def test_no_solutions(self):
        x = Variable("x")
        assert select(knows_graph(), [(uri("carol"), FOAF.knows, x)]) == []

    def test_repeated_variable_in_pattern(self):
        graph = Graph()
        graph.add((uri("n"), uri("p"), uri("n")))
        graph.add((uri("n"), uri("p"), uri("m")))
        x = Variable("x")
        results = select(graph, [(x, uri("p"), x)])
        assert len(results) == 1
        assert results[0][x] == uri("n")

    def test_all_variables(self):
        s, p, o = Variable("s"), Variable("p"), Variable("o")
        results = select(knows_graph(), [(s, p, o)])
        assert len(results) == 6

    def test_empty_patterns(self):
        assert select(knows_graph(), []) == []

    def test_deterministic_order(self):
        x = Variable("x")
        patterns = [(uri("alice"), FOAF.knows, x)]
        assert select(knows_graph(), patterns) == select(knows_graph(), patterns)

    def test_variable_repr(self):
        assert repr(Variable("x")) == "?x"


class TestSelectOne:
    def test_existence(self):
        x = Variable("x")
        binding = select_one(knows_graph(), [(uri("alice"), FOAF.knows, x)])
        assert binding is not None
        assert binding[x] in {uri("bob"), uri("carol")}

    def test_absence(self):
        x = Variable("x")
        assert select_one(knows_graph(), [(x, FOAF.knows, uri("alice"))]) is None

    def test_empty_patterns(self):
        assert select_one(knows_graph(), []) is None


class TestOnPublishedHomepage:
    """Query a real published FOAF homepage — the intended use case."""

    def test_trust_values_above_threshold(self):
        from repro.core.models import Agent
        from repro.semweb.foaf import publish_agent

        agent = Agent(uri=EX + "alice", name="Alice")
        graph = publish_agent(
            agent,
            {EX + "bob": 0.9, EX + "carol": 0.3, EX + "mallory": -0.8},
            {},
        )
        stmt, target, value = Variable("stmt"), Variable("target"), Variable("value")
        results = select(
            graph,
            [
                (uri("alice"), TRUST.trusts, stmt),
                (stmt, TRUST.target, target),
                (stmt, TRUST.value, value),
            ],
        )
        strong = {
            str(b[target])
            for b in results
            if float(b[value].to_python()) > 0.5
        }
        assert strong == {EX + "bob"}

    def test_person_typed_principal(self):
        from repro.core.models import Agent
        from repro.semweb.foaf import publish_agent

        graph = publish_agent(Agent(uri=EX + "alice", name="Alice"), {}, {})
        who = Variable("who")
        binding = select_one(graph, [(who, RDF.type, FOAF.Person)])
        assert binding is not None
        assert binding[who] == uri("alice")
