"""EX20–EX23 scenario experiments: shapes, gates, epoch determinism."""

from __future__ import annotations

import pytest

from repro.datasets.generators import CommunityConfig, generate_community
from repro.evaluation.scenarios import (
    run_ex20_churn,
    run_ex21_coldstart,
    run_ex22_evolving_sybil,
    run_ex23_drift,
    smooth_degradation,
)
from repro.perf.parallel import ParallelExperimentRunner

TINY = dict(per_user=2, min_ratings=6, max_users=6)


@pytest.fixture(scope="module")
def community():
    """A small generated community shared by the scenario tests."""
    config = CommunityConfig(n_agents=50, n_products=100, n_clusters=4, seed=13)
    return generate_community(config)


class TestSmoothDegradation:
    def test_monotone_decline_passes(self):
        assert smooth_degradation([0.5, 0.4, 0.3, 0.1])

    def test_rise_within_tolerance_passes(self):
        assert smooth_degradation([0.5, 0.51, 0.49], tolerance=0.02)

    def test_rise_beyond_tolerance_fails(self):
        assert not smooth_degradation([0.5, 0.56], tolerance=0.02)

    def test_short_series_pass(self):
        assert smooth_degradation([])
        assert smooth_degradation([0.7])


class TestEx20Churn:
    def test_table_shape(self, community):
        table = run_ex20_churn(
            community=community,
            churn_rates=(0.0, 0.2),
            n_epochs=2,
            rounds=50,
            **TINY,
        )
        assert len(table.rows) == 2
        assert len(table.rows[0]) == len(table.headers) == 8
        assert table.rows[0][0] == "0.00"
        # Every accuracy cell parses as a probability.
        for row in table.rows:
            assert 0.0 <= float(row[3]) <= 1.0
            assert 0.0 <= float(row[4]) <= 1.0


class TestEx21Coldstart:
    def test_newcomers_counted_and_covered(self, community):
        table = run_ex21_coldstart(
            community=community,
            wave_sizes=(0, 4),
            n_epochs=2,
            rounds=50,
            **TINY,
        )
        assert [int(row[2]) for row in table.rows] == [0, 8]
        for row in table.rows:
            assert 0.0 <= float(row[5]) <= 1.0
            assert 0.0 <= float(row[6]) <= 1.0


class TestEx22EvolvingSybil:
    def test_zero_bridges_admits_nothing(self, community):
        table = run_ex22_evolving_sybil(
            community=community,
            bridge_rates=(0, 2),
            n_epochs=2,
            ring_growth=3,
            **TINY,
        )
        zero_row, bridged_row = table.rows
        assert float(zero_row[3]) == 0.0  # appleseed admission
        assert float(zero_row[4]) == 0.0  # hybrid contamination
        assert int(bridged_row[2]) > 0  # bridges accumulated
        # The trust-aware hybrid never out-contaminates blind CF.
        for row in table.rows:
            assert float(row[4]) <= float(row[5]) + 1e-9


class TestEx23Drift:
    def test_drifted_grows_with_rate(self, community):
        table = run_ex23_drift(
            community=community,
            drift_rates=(0.0, 0.3),
            n_epochs=2,
            rounds=50,
            **TINY,
        )
        drifted = [int(row[2]) for row in table.rows]
        assert drifted[0] == 0
        assert drifted[1] > 0


class TestEpochDeterminism:
    """Same seed ⇒ byte-identical tables, any worker count, any rerun."""

    def render(self, community, runner):
        return run_ex20_churn(
            community=community,
            churn_rates=(0.1,),
            n_epochs=2,
            rounds=50,
            runner=runner,
            **TINY,
        ).render()

    def test_repeated_runs_identical(self, community):
        assert self.render(community, None) == self.render(community, None)

    def test_parallel_matches_serial(self, community):
        serial = self.render(community, None)
        for workers in (2, 3):
            runner = ParallelExperimentRunner(max_workers=workers, mode="process")
            assert self.render(community, runner) == serial

    def test_serial_runner_matches_none(self, community):
        runner = ParallelExperimentRunner(mode="serial")
        assert self.render(community, runner) == self.render(community, None)

    def test_ex22_parallel_matches_serial(self, community):
        kwargs = dict(
            community=community,
            bridge_rates=(1,),
            n_epochs=2,
            ring_growth=3,
            **TINY,
        )
        serial = run_ex22_evolving_sybil(**kwargs).render()
        runner = ParallelExperimentRunner(max_workers=2, mode="process")
        assert run_ex22_evolving_sybil(runner=runner, **kwargs).render() == serial
