"""Shape assertions for the extended experiments EX12-EX15."""

from __future__ import annotations

import pytest

from repro.datasets.amazon import book_taxonomy_config
from repro.datasets.generators import CommunityConfig, generate_community
from repro.evaluation.experiments_ext import (
    explicit_community,
    run_ex12_prediction,
    run_ex13_stereotypes,
    run_ex14_ablations,
    run_ex15_weblog_mining,
    run_ex16_diversification,
    run_ex17_distrust,
)


@pytest.fixture(scope="module")
def community():
    config = CommunityConfig(
        n_agents=200,
        n_products=400,
        n_clusters=6,
        seed=42,
        taxonomy=book_taxonomy_config(target_topics=500, seed=42),
    )
    return generate_community(config)


class TestEx12:
    def test_personalized_beats_global_mean(self):
        table = run_ex12_prediction(explicit_community(n_agents=200), max_users=30)
        mae = {row[0]: float(row[2]) for row in table.rows}
        assert mae["hybrid weights"] < mae["global mean"]
        coverage = {row[0]: float(row[3]) for row in table.rows}
        assert coverage["global mean"] == 1.0
        assert 0.0 < coverage["hybrid weights"] <= 1.0


class TestEx13:
    def test_purity_beats_chance(self, community):
        table = run_ex13_stereotypes(community, max_users=15)
        rows = {row[0]: row[1] for row in table.rows}
        purity = float(rows["cluster purity vs planted"])
        chance = float(rows["chance purity"])
        assert purity > 2 * chance
        assert rows["converged"] == "True"


class TestEx14:
    def test_ablation_shapes(self, community):
        table = run_ex14_ablations(community, max_users=15)
        rows = {(row[0], row[1]): (row[2], row[3]) for row in table.rows}
        with_dist, without_dist = rows[
            ("appleseed backward edges", "rank-weighted hop distance")
        ]
        assert float(with_dist) < float(without_dist)
        nonlinear, linear = rows[("nonlinear normalization", "top-10 rank share")]
        assert float(nonlinear) > float(linear)
        eq3, flat = rows[("Eq.3 propagation", "F1@10")]
        assert float(eq3) > 0.0
        uniform, weighted = rows[("uniform product split", "F1@10")]
        assert uniform == weighted  # implicit data: identical by construction


class TestEx16:
    def test_ils_falls_with_theta(self, community):
        table = run_ex16_diversification(
            community, thetas=(0.0, 0.5, 0.9), max_users=12
        )
        ils = [float(row[3]) for row in table.rows]
        assert ils == sorted(ils, reverse=True)
        assert ils[-1] < ils[0]

    def test_theta_zero_is_reference_precision(self, community):
        table = run_ex16_diversification(
            community, thetas=(0.0, 0.9), max_users=12
        )
        precisions = [float(row[1]) for row in table.rows]
        assert precisions[0] >= precisions[-1]


class TestEx17:
    def test_distrust_discounting_suppresses_rogues(self, community):
        table = run_ex17_distrust(community)
        rows = {row[0]: row for row in table.rows}
        assert float(rows["ignored"][1]) > 0.0
        assert float(rows["one-step discount"][1]) < float(rows["ignored"][1])


class TestEx15:
    def test_weblog_channel_lossless(self, community):
        table = run_ex15_weblog_mining(community)
        rows = {row[0]: row[1] for row in table.rows}
        mined, total = rows["agents mined exactly"].split("/")
        assert mined == total
        recovered, expected = rows["ratings recovered"].split("/")
        assert recovered == expected
        assert int(rows["unmapped links"]) == 0
        assert float(rows["rec overlap@10 vs reference"]) == 1.0
