"""Unit tests for graph diffing and homepage update summaries."""

from __future__ import annotations

import pytest

from repro.core.models import Agent
from repro.semweb.diff import graph_diff, summarize_homepage_update
from repro.semweb.foaf import publish_agent
from repro.semweb.rdf import Graph, Literal, URIRef

ALICE = Agent(uri="http://example.org/alice", name="Alice")
BOB = "http://example.org/bob"
CAROL = "http://example.org/carol"


class TestGraphDiff:
    def test_identical_graphs_empty_delta(self):
        graph = Graph([(URIRef("u:s"), URIRef("u:p"), Literal(1))])
        delta = graph_diff(graph, graph.copy())
        assert delta.is_empty
        assert len(delta) == 0

    def test_added_and_removed(self):
        t1 = (URIRef("u:s"), URIRef("u:p"), Literal(1))
        t2 = (URIRef("u:s"), URIRef("u:p"), Literal(2))
        delta = graph_diff(Graph([t1]), Graph([t2]))
        assert delta.added == {t2}
        assert delta.removed == {t1}
        assert len(delta) == 2

    def test_diff_is_antisymmetric(self):
        old = Graph([(URIRef("u:a"), URIRef("u:p"), Literal(1))])
        new = Graph([(URIRef("u:b"), URIRef("u:p"), Literal(1))])
        forward = graph_diff(old, new)
        backward = graph_diff(new, old)
        assert forward.added == backward.removed
        assert forward.removed == backward.added


class TestHomepageUpdate:
    def test_no_change(self):
        graph = publish_agent(ALICE, {BOB: 0.8}, {"isbn:1": 1.0})
        update = summarize_homepage_update(graph, graph.copy())
        assert update.is_empty
        assert not update.affects_trust_graph
        assert not update.affects_profiles

    def test_trust_added(self):
        old = publish_agent(ALICE, {BOB: 0.8}, {})
        new = publish_agent(ALICE, {BOB: 0.8, CAROL: 0.5}, {})
        update = summarize_homepage_update(old, new)
        assert [s.target for s in update.trust_added] == [CAROL]
        assert update.trust_removed == ()
        assert update.affects_trust_graph
        assert not update.affects_profiles

    def test_trust_retracted(self):
        old = publish_agent(ALICE, {BOB: 0.8, CAROL: 0.5}, {})
        new = publish_agent(ALICE, {BOB: 0.8}, {})
        update = summarize_homepage_update(old, new)
        assert [s.target for s in update.trust_removed] == [CAROL]

    def test_trust_revalued(self):
        old = publish_agent(ALICE, {BOB: 0.8}, {})
        new = publish_agent(ALICE, {BOB: -0.4}, {})
        update = summarize_homepage_update(old, new)
        assert len(update.trust_changed) == 1
        assert update.trust_changed[0].value == -0.4
        assert update.trust_added == ()
        assert update.trust_removed == ()

    def test_rating_lifecycle(self):
        old = publish_agent(ALICE, {}, {"isbn:1": 1.0, "isbn:2": 0.5})
        new = publish_agent(ALICE, {}, {"isbn:2": 0.9, "isbn:3": 1.0})
        update = summarize_homepage_update(old, new)
        assert [r.product for r in update.ratings_added] == ["isbn:3"]
        assert [r.product for r in update.ratings_removed] == ["isbn:1"]
        assert [r.product for r in update.ratings_changed] == ["isbn:2"]
        assert update.ratings_changed[0].value == 0.9
        assert update.affects_profiles
        assert not update.affects_trust_graph

    def test_principal_change_rejected(self):
        old = publish_agent(ALICE, {}, {})
        new = publish_agent(Agent(uri=BOB, name="Bob"), {}, {})
        with pytest.raises(ValueError, match="principal changed"):
            summarize_homepage_update(old, new)

    def test_end_to_end_with_crawler_versions(self, small_community):
        """Diff the stored replica against a staged update, as a consumer
        reacting to a refresh would."""
        from repro.semweb.serializer import parse_ntriples, serialize_ntriples
        from repro.web.crawler import Crawler, publish_community
        from repro.web.network import SimulatedWeb

        dataset = small_community.dataset
        web = SimulatedWeb()
        publish_community(web, dataset, small_community.taxonomy)
        seed = sorted(dataset.agents)[0]
        crawler = Crawler(web=web)
        crawler.crawl([seed])
        old_body = crawler.store.get(seed).body

        ratings = dict(dataset.ratings_of(seed))
        new_product = sorted(p for p in dataset.products if p not in ratings)[0]
        ratings[new_product] = 1.0
        new_body = serialize_ntriples(
            publish_agent(dataset.agents[seed], dataset.trust_of(seed), ratings)
        )
        web.publish(seed, new_body)
        crawler.refresh()

        update = summarize_homepage_update(
            parse_ntriples(old_body),
            parse_ntriples(crawler.store.get(seed).body),
        )
        assert [r.product for r in update.ratings_added] == [new_product]
        assert not update.affects_trust_graph
