"""Property tests for the vectorized trust engines (repro.trust.engine).

The dict-based metrics are the oracle; the packed-CSR numpy engines must
agree with them within 1e-9 on continuous ranks and *exactly* on every
discrete output (membership sets, iteration counts, convergence flags,
Advogato accepted sets).  Hypothesis drives both engines over random
graphs that include the awkward shapes: dangling sinks, disconnected
sources, all-negative edge sets, weight-zero statements.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.trust.advogato import Advogato
from repro.trust.appleseed import Appleseed
from repro.trust.engine import (
    TRUST_AUTO_THRESHOLD,
    numpy_trust_available,
    rank_many,
    resolve_trust_engine,
)
from repro.trust.graph import TrustGraph
from repro.trust.pagerank import PersonalizedPageRank

requires_numpy = pytest.mark.skipif(
    not numpy_trust_available(), reason="numpy engine not available"
)

# -- strategies --------------------------------------------------------------

_NODES = [f"http://t.example.org/n{i:02d}" for i in range(14)]

#: Weights rounded to 3 decimals; zero stays possible (a stated-but-flat
#: trust value is neither positive nor negative and must drop out of
#: both engines identically).
_weights = st.floats(min_value=-1.0, max_value=1.0).map(lambda v: round(v, 3))


@st.composite
def trust_graphs(draw) -> tuple[TrustGraph, list[str]]:
    """Random graphs with isolated nodes, sinks and signed edges.

    Every node is added explicitly first, so nodes without any edge
    (disconnected sources, pure sinks) always occur.  Edge pairs are
    unique — re-stating an edge with a flipped sign is overwrite
    semantics, a separate (deterministic) concern from propagation.
    """
    nodes = draw(
        st.lists(st.sampled_from(_NODES), min_size=2, max_size=14, unique=True)
    )
    graph = TrustGraph()
    for node in nodes:
        graph.add_node(node)
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)).filter(
                lambda pair: pair[0] != pair[1]
            ),
            max_size=40,
            unique=True,
        )
    )
    for source, target in pairs:
        graph.add_edge(source, target, draw(_weights))
    return graph, nodes


def _dense_graph(seed: int = 97, n: int = 60, edges: int = 300) -> TrustGraph:
    """A fixed seeded graph big enough for auto to resolve to numpy."""
    rng = random.Random(seed)
    nodes = [f"http://t.example.org/d{i:03d}" for i in range(n)]
    graph = TrustGraph()
    for node in nodes:
        graph.add_node(node)
    seen: set[tuple[str, str]] = set()
    while len(seen) < edges:
        source, target = rng.sample(nodes, 2)
        if (source, target) in seen:
            continue
        seen.add((source, target))
        weight = round(rng.uniform(-1.0, 1.0), 3) or 0.5
        graph.add_edge(source, target, weight)
    return graph


def _assert_rank_parity(python, vectorized, tolerance: float = 1e-9) -> None:
    for agent in sorted(set(python.ranks) | set(vectorized.ranks)):
        assert vectorized.ranks.get(agent, 0.0) == pytest.approx(
            python.ranks.get(agent, 0.0), abs=tolerance
        )


#: Metric configurations covering every branch the kernel specializes.
APPLESEED_CONFIGS = [
    {},
    {"normalization": "nonlinear"},
    {"backward_propagation": False},
    {"distrust_mode": "one_step"},
    {"spreading_factor": 0.5, "convergence_threshold": 0.001},
    {"max_depth": 2},
    {"max_iterations": 3},
]


# -- appleseed parity --------------------------------------------------------


@requires_numpy
@pytest.mark.parametrize("config", APPLESEED_CONFIGS)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_appleseed_numpy_matches_oracle(config, data):
    """Ranks agree within 1e-9; discrete outputs agree exactly."""
    graph, nodes = data.draw(trust_graphs())
    source = data.draw(st.sampled_from(nodes))
    python = Appleseed(engine="python", **config).compute(graph, source)
    vectorized = Appleseed(engine="numpy", **config).compute(graph, source)
    _assert_rank_parity(python, vectorized)
    assert vectorized.iterations == python.iterations
    assert vectorized.converged == python.converged
    assert vectorized.neighborhood(0.0) == python.neighborhood(0.0)
    assert len(vectorized.history) == len(python.history)
    for numpy_delta, python_delta in zip(vectorized.history, python.history):
        assert numpy_delta == pytest.approx(python_delta, abs=1e-9)


@requires_numpy
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_pagerank_numpy_matches_oracle(data):
    graph, nodes = data.draw(trust_graphs())
    source = data.draw(st.sampled_from(nodes))
    python = PersonalizedPageRank(engine="python").compute(graph, source)
    vectorized = PersonalizedPageRank(engine="numpy").compute(graph, source)
    _assert_rank_parity(python, vectorized)
    assert vectorized.iterations == python.iterations
    assert vectorized.converged == python.converged


@requires_numpy
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_advogato_numpy_matches_oracle_exactly(data):
    """Flow networks are built in identical order, so the accepted set
    (which depends on arc insertion order, not just capacities) must be
    *equal*, not merely close."""
    graph, nodes = data.draw(trust_graphs())
    seed = data.draw(st.sampled_from(nodes))
    target_size = data.draw(st.integers(min_value=1, max_value=20))
    python = Advogato(target_size=target_size, engine="python").compute(graph, seed)
    vectorized = Advogato(target_size=target_size, engine="numpy").compute(graph, seed)
    assert vectorized.accepted == python.accepted
    assert vectorized.total_flow == python.total_flow
    assert vectorized.capacities == python.capacities


# -- directed edge cases -----------------------------------------------------


class TestEdgeCases:
    def _both(self, graph, source, **config):
        python = Appleseed(engine="python", **config).compute(graph, source)
        vectorized = Appleseed(engine="numpy", **config).compute(graph, source)
        _assert_rank_parity(python, vectorized)
        assert vectorized.neighborhood(0.0) == python.neighborhood(0.0)
        return python

    @requires_numpy
    def test_dangling_sink_absorbs_energy(self):
        graph = TrustGraph.from_edges([("a", "b", 0.9)])
        result = self._both(graph, "a")
        assert result.ranks["b"] > 0.0

    @requires_numpy
    def test_disconnected_source_ranks_nobody(self):
        graph = TrustGraph.from_edges([("a", "b", 0.9)])
        graph.add_node("loner")
        result = self._both(graph, "loner")
        assert result.ranks == {}
        assert result.converged

    @requires_numpy
    def test_all_negative_edges_rank_nobody(self):
        graph = TrustGraph.from_edges(
            [("a", "b", -0.9), ("a", "c", -0.4), ("b", "c", -1.0)]
        )
        result = self._both(graph, "a", distrust_mode="one_step")
        assert result.neighborhood(0.0) == set()

    def test_self_loops_are_rejected(self):
        graph = TrustGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "a", 0.5)

    @requires_numpy
    def test_matrix_rejects_self_loops(self):
        from repro.perf.trustmatrix import TrustMatrix

        with pytest.raises(ValueError):
            TrustMatrix.from_edges([("a", "a", 0.5)])

    @requires_numpy
    def test_edge_back_to_source_matches_oracle(self):
        # A real positive edge pointing at the source is replaced by the
        # virtual backward edge in the oracle's quota; the kernel must
        # not double-count it.
        graph = TrustGraph.from_edges(
            [("a", "b", 0.8), ("b", "a", 0.9), ("b", "c", 0.6)]
        )
        self._both(graph, "a")


# -- resolver ----------------------------------------------------------------


class TestResolver:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_trust_engine("fortran")

    def test_python_pins_the_oracle(self):
        assert resolve_trust_engine("python", size=10**6) == "python"

    @requires_numpy
    def test_auto_keeps_small_graphs_on_the_oracle(self):
        assert resolve_trust_engine("auto", size=TRUST_AUTO_THRESHOLD - 1) == "python"
        assert resolve_trust_engine("auto", size=TRUST_AUTO_THRESHOLD) == "numpy"

    def test_metric_constructors_validate_engine(self):
        for metric in (Appleseed, PersonalizedPageRank, Advogato):
            with pytest.raises(ValueError):
                metric(engine="fortran")


# -- sharded sweeps ----------------------------------------------------------


@requires_numpy
class TestRankMany:
    def test_identical_across_worker_counts(self):
        """Serial and 1/2/8-worker sharded sweeps return equal results."""
        from repro.perf.parallel import ParallelExperimentRunner

        graph = _dense_graph()
        sources = sorted(graph.nodes())[:24]
        serial = rank_many(graph, sources, engine="numpy")
        assert [r.source for r in serial] == sources
        for workers in (1, 2, 8):
            runner = ParallelExperimentRunner(max_workers=workers)
            sharded = rank_many(graph, sources, engine="numpy", runner=runner)
            assert sharded == serial

    def test_numpy_sweep_matches_oracle_sweep(self):
        graph = _dense_graph()
        sources = sorted(graph.nodes())[:8]
        oracle = rank_many(graph, sources, engine="python")
        vectorized = rank_many(graph, sources, engine="numpy")
        for python, numpy_result in zip(oracle, vectorized):
            assert numpy_result.source == python.source
            _assert_rank_parity(python, numpy_result)
            assert numpy_result.iterations == python.iterations

    def test_max_depth_falls_back_to_graph_payload(self):
        """A horizon needs per-source subgraphs; results still agree."""
        graph = _dense_graph()
        sources = sorted(graph.nodes())[:4]
        metric = Appleseed(max_depth=2)
        swept = rank_many(graph, sources, metric=metric, engine="numpy")
        for result in swept:
            direct = Appleseed(max_depth=2, engine="numpy").compute(
                graph, result.source
            )
            assert result == direct

    def test_unknown_source_rejected(self):
        graph = _dense_graph()
        with pytest.raises(KeyError):
            rank_many(graph, ["http://t.example.org/ghost"])
