"""Unit tests for trust neighborhood formation."""

from __future__ import annotations

import pytest

from repro.core.neighborhood import NeighborhoodFormation, normalize_ranks
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph


def graph() -> TrustGraph:
    return TrustGraph.from_edges(
        [
            ("s", "a", 1.0),
            ("s", "b", 0.8),
            ("a", "c", 0.9),
            ("b", "c", 0.7),
            ("c", "d", 0.6),
        ]
    )


class TestNormalizeRanks:
    def test_empty(self):
        assert normalize_ranks({}) == {}

    def test_peak_becomes_one(self):
        normalized = normalize_ranks({"a": 4.0, "b": 2.0, "c": 1.0})
        assert normalized == {"a": 1.0, "b": 0.5, "c": 0.25}

    def test_all_zero(self):
        assert normalize_ranks({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}

    def test_values_in_unit_interval(self):
        normalized = normalize_ranks({"a": 123.4, "b": 0.002})
        assert all(0.0 <= v <= 1.0 for v in normalized.values())


class TestFormation:
    def test_default_formation(self):
        hood = NeighborhoodFormation().form(graph(), "s")
        assert hood.source == "s"
        assert {"a", "b", "c", "d"} == hood.members()
        assert max(hood.normalized.values()) == pytest.approx(1.0)

    def test_threshold_filters(self):
        full = NeighborhoodFormation().form(graph(), "s")
        cutoff = sorted(full.ranks.values())[-2]  # keep only the top peer
        strict = NeighborhoodFormation(threshold=cutoff).form(graph(), "s")
        assert len(strict) == 1

    def test_max_peers_cut(self):
        hood = NeighborhoodFormation(max_peers=2).form(graph(), "s")
        assert len(hood) == 2
        full = NeighborhoodFormation().form(graph(), "s")
        top_two = {agent for agent, _ in full.top(2)}
        assert hood.members() == top_two

    def test_custom_metric(self):
        metric = Appleseed(spreading_factor=0.5)
        hood = NeighborhoodFormation(metric=metric).form(graph(), "s")
        assert hood.metric_result is not None
        assert hood.metric_result.converged

    def test_contains_and_top(self):
        hood = NeighborhoodFormation().form(graph(), "s")
        assert "a" in hood
        assert "ghost" not in hood
        top = hood.top(1)
        assert len(top) == 1
        assert top[0][1] == max(hood.ranks.values())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NeighborhoodFormation(injection=0.0)
        with pytest.raises(ValueError):
            NeighborhoodFormation(threshold=-0.1)
        with pytest.raises(ValueError):
            NeighborhoodFormation(max_peers=0)

    def test_isolated_source_empty_neighborhood(self):
        g = TrustGraph()
        g.add_node("alone")
        hood = NeighborhoodFormation().form(g, "alone")
        assert len(hood) == 0
        assert hood.normalized == {}
