"""scripts/check_bench_regression.py: exit codes and span attribution."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GATE = REPO_ROOT / "scripts" / "check_bench_regression.py"

from repro.evaluation.benchtrack import BENCH_SCHEMA, PHASES  # noqa: E402


def document(scale=1.0, sizes=(100, 400)):
    walls = {"build": 150.0, "query": 300.0, "trust": 40.0}
    dominants = {
        "build": "profiles.pack",
        "query": "bench.query",
        "trust": "appleseed.compute",
    }
    return {
        "schema": BENCH_SCHEMA,
        "smoke": False,
        "seed": 42,
        "queries": 5,
        "trust_sources": 8,
        "sizes": [
            {
                "agents": agents,
                "phases": {
                    phase: {
                        "wall_ms": round(walls[phase] * scale * agents / 100, 3),
                        "dominant_span": dominants[phase],
                        "dominant_self_ms": round(
                            0.7 * walls[phase] * scale * agents / 100, 3
                        ),
                        "spans": 5,
                    }
                    for phase in PHASES
                },
            }
            for agents in sizes
        ],
    }


def run_gate(*args):
    return subprocess.run(
        [sys.executable, str(GATE), *args], capture_output=True, text=True
    )


class TestGate:
    def test_identical_documents_pass(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document()))
        result = run_gate(str(baseline), "--baseline", str(baseline))
        assert result.returncode == 0, result.stderr
        assert "no regressions" in result.stdout

    def test_doctored_phase_fails_with_dominant_span_attribution(self, tmp_path):
        # The acceptance check: inflate one phase 2x and the gate must
        # fail naming the phase's dominant span.
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document()))
        doctored_doc = document()
        build = doctored_doc["sizes"][1]["phases"]["build"]
        build["wall_ms"] *= 2
        build["dominant_self_ms"] *= 2
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(doctored_doc))
        result = run_gate(str(doctored), "--baseline", str(baseline))
        assert result.returncode == 1
        assert "REGRESSION: 400 agents, build" in result.stdout
        assert "dominant span now: profiles.pack" in result.stdout

    def test_noise_below_threshold_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document()))
        noisy = tmp_path / "noisy.json"
        noisy.write_text(json.dumps(document(scale=1.2)))  # +20% < +50% allowance
        result = run_gate(str(noisy), "--baseline", str(baseline))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_schema_only_validates_without_a_baseline(self, tmp_path):
        candidate = tmp_path / "candidate.json"
        candidate.write_text(json.dumps(document()))
        result = run_gate(str(candidate), "--schema-only")
        assert result.returncode == 0
        assert "schema ok" in result.stdout

    def test_invalid_document_exits_2_listing_every_finding(self, tmp_path):
        broken_doc = document()
        broken_doc["schema"] = "wrong"
        broken_doc["seed"] = "nope"
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(broken_doc))
        result = run_gate(str(broken), "--schema-only")
        assert result.returncode == 2
        assert "schema" in result.stderr and "seed" in result.stderr

    def test_disjoint_size_ladders_warn_and_pass(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document(sizes=(100, 400))))
        smoke = tmp_path / "smoke.json"
        smoke.write_text(json.dumps(document(sizes=(60,))))
        result = run_gate(str(smoke), "--baseline", str(baseline))
        assert result.returncode == 0
        assert "nothing to gate" in result.stdout

    def test_committed_baseline_is_schema_valid(self):
        result = run_gate(str(REPO_ROOT / "BENCH_scale.json"), "--schema-only")
        assert result.returncode == 0, result.stderr
