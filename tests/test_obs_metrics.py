"""MetricsRegistry: instruments, exporters, and the runtime bindings."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    Stopwatch,
    TimingStats,
    collecting,
    get_metrics,
    get_tracer,
    measure,
    tracing,
)
from repro.obs.trace import NULL_TRACER, Tracer


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2.5)
        assert registry.counter("hits").value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("workers").set(4)
        registry.gauge("workers").set(2)
        assert registry.gauge("workers").value == 2.0

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative() == [(1.0, 1), (10.0, 2), (math.inf, 3)]
        assert histogram.observations == 3
        assert histogram.total == 55.5
        assert histogram.mean == pytest.approx(18.5)

    def test_histogram_rejects_bad_buckets_and_nan(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h1", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="NaN"):
            registry.histogram("h2").observe(float("nan"))

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_len_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3
        registry.reset()
        assert len(registry) == 0


class TestExporters:
    def test_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("appleseed.sweeps").inc(12)
        registry.gauge("parallel.workers").set(4)
        registry.histogram("trust.neighborhood_size", buckets=(10.0,)).observe(3)
        text = registry.to_prometheus()
        assert "# TYPE appleseed_sweeps counter" in text
        assert "appleseed_sweeps 12" in text
        assert "parallel_workers 4" in text
        assert 'trust_neighborhood_size_bucket{le="10"} 1' in text
        assert 'trust_neighborhood_size_bucket{le="+Inf"} 1' in text
        assert "trust_neighborhood_size_sum 3" in text
        assert "trust_neighborhood_size_count 1" in text
        assert text.endswith("\n")

    def test_summary_lists_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("fetches").inc(7)
        registry.gauge("depth").set(2)
        registry.histogram("sizes").observe(5)
        summary = registry.render_summary()
        assert "counters:" in summary and "fetches" in summary
        assert "gauges:" in summary and "depth" in summary
        assert "histograms:" in summary and "count=1" in summary

    def test_empty_summary(self):
        assert MetricsRegistry().render_summary() == "metrics: none recorded"

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"n": 1.0}
        assert set(snapshot) == {"counters", "gauges", "histograms"}

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRuntimeBindings:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_tracing_binds_and_restores(self):
        tracer = Tracer()
        with tracing(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_tracing_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with tracing():
                assert isinstance(get_tracer(), Tracer)
                raise RuntimeError
        assert get_tracer() is NULL_TRACER

    def test_collecting_scopes_a_fresh_registry(self):
        outer = get_metrics()
        with collecting() as registry:
            assert get_metrics() is registry
            assert registry is not outer
            registry.counter("scoped").inc()
        assert get_metrics() is outer


class TestStopwatch:
    def test_accumulates_across_windows(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first
        assert not watch.running

    def test_elapsed_readable_while_running(self):
        watch = Stopwatch()
        watch.start()
        assert watch.running
        assert watch.elapsed >= 0.0
        watch.stop()

    def test_double_start_and_stray_stop_raise(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()
        with pytest.raises(RuntimeError):
            watch.stop()

    def test_time_call_returns_result_and_seconds(self):
        result, seconds = Stopwatch.time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0

    def test_measure_median(self):
        stats = measure(lambda: None, repeats=3)
        assert len(stats.times) == 3
        assert stats.best <= stats.median <= max(stats.times)
        assert stats.median_ms == pytest.approx(stats.median * 1000.0)

    def test_timing_stats_even_median(self):
        stats = TimingStats(times=(1.0, 3.0))
        assert stats.median == 2.0
        assert stats.total == 4.0

    def test_timing_stats_worst(self):
        stats = TimingStats(times=(0.002, 0.005, 0.001))
        assert stats.worst == 0.005
        assert stats.worst_ms == pytest.approx(5.0)
        assert stats.best <= stats.median <= stats.worst
