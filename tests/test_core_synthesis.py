"""Unit and property tests for the §3.4 rank synthesis strategies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.synthesis import (
    BordaCount,
    LinearBlend,
    Multiplicative,
    TrustFilter,
    strategy_by_name,
)

TRUST = {"a": 1.0, "b": 0.5, "c": 0.2}
SIMILARITY = {"a": 0.1, "b": 0.9, "c": -0.5}


class TestLinearBlend:
    def test_gamma_bounds(self):
        with pytest.raises(ValueError):
            LinearBlend(gamma=-0.1)
        with pytest.raises(ValueError):
            LinearBlend(gamma=1.1)

    def test_gamma_one_is_trust_only(self):
        merged = LinearBlend(gamma=1.0).merge(TRUST, SIMILARITY)
        assert merged == pytest.approx(TRUST)

    def test_gamma_zero_is_similarity_only(self):
        merged = LinearBlend(gamma=0.0).merge(TRUST, SIMILARITY)
        assert merged["b"] == pytest.approx(0.9)
        assert "c" not in merged  # negative similarity clipped to 0 weight

    def test_balanced_blend(self):
        merged = LinearBlend(gamma=0.5).merge(TRUST, SIMILARITY)
        assert merged["a"] == pytest.approx(0.55)
        assert merged["b"] == pytest.approx(0.7)
        assert merged["c"] == pytest.approx(0.1)  # trust carries it

    def test_missing_similarity_treated_as_zero(self):
        merged = LinearBlend(gamma=0.5).merge({"a": 1.0}, {})
        assert merged == {"a": 0.5}


class TestMultiplicative:
    def test_requires_both_signals(self):
        merged = Multiplicative().merge(TRUST, SIMILARITY)
        assert merged["a"] == pytest.approx(0.1)
        assert merged["b"] == pytest.approx(0.45)
        assert "c" not in merged  # negative similarity -> zero weight

    def test_zero_trust_drops_peer(self):
        merged = Multiplicative().merge({"a": 0.0}, {"a": 1.0})
        assert merged == {}


class TestBordaCount:
    def test_empty(self):
        assert BordaCount().merge({}, {}) == {}

    def test_agreement_puts_peer_first(self):
        trust = {"a": 1.0, "b": 0.5}
        similarity = {"a": 0.9, "b": 0.1}
        merged = BordaCount().merge(trust, similarity)
        assert merged["a"] > merged["b"]

    def test_scale_free(self):
        trust = {"a": 1.0, "b": 0.5}
        similarity = {"a": 0.9, "b": 0.1}
        scaled = {k: v * 1000 for k, v in trust.items()}
        assert BordaCount().merge(trust, similarity) == BordaCount().merge(
            scaled, similarity
        )

    def test_weights_in_unit_interval(self):
        merged = BordaCount().merge(TRUST, SIMILARITY)
        assert all(0.0 < v <= 1.0 for v in merged.values())

    def test_disagreement_averages_out(self):
        trust = {"a": 1.0, "b": 0.5}
        similarity = {"a": 0.1, "b": 0.9}
        merged = BordaCount().merge(trust, similarity)
        assert merged["a"] == pytest.approx(merged["b"])


class TestTrustFilter:
    def test_similarity_is_the_weight(self):
        merged = TrustFilter().merge(TRUST, SIMILARITY)
        assert merged == {"a": 0.1, "b": 0.9}

    def test_peer_outside_trust_never_votes(self):
        merged = TrustFilter().merge({"a": 1.0}, {"a": 0.5, "z": 0.99})
        assert "z" not in merged


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["linear", "multiplicative", "borda", "trust_filter"]
    )
    def test_known_names(self, name):
        strategy = strategy_by_name(name)
        assert strategy.name == name

    def test_kwargs_forwarded(self):
        strategy = strategy_by_name("linear", gamma=0.9)
        assert strategy.gamma == 0.9

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            strategy_by_name("bogus")


_WEIGHTS = st.dictionaries(
    st.sampled_from(["p1", "p2", "p3", "p4"]),
    st.floats(min_value=0.0, max_value=1.0),
    max_size=4,
)
_SIMS = st.dictionaries(
    st.sampled_from(["p1", "p2", "p3", "p4"]),
    st.floats(min_value=-1.0, max_value=1.0),
    max_size=4,
)


@given(trust=_WEIGHTS, similarity=_SIMS)
@pytest.mark.parametrize(
    "strategy",
    [LinearBlend(), LinearBlend(0.25), Multiplicative(), BordaCount(), TrustFilter()],
)
def test_property_contract(strategy, trust, similarity):
    """Property: every strategy returns positive weights over a subset of
    the trusted peers only."""
    merged = strategy.merge(trust, similarity)
    assert set(merged) <= set(trust)
    assert all(v > 0.0 for v in merged.values())
