"""repro.obs.profile: self-time math, critical path, tree diff, renders."""

from __future__ import annotations

import pytest

from repro.obs import (
    MEMORY_ATTR,
    Tracer,
    build_tree,
    critical_path,
    diff_traces,
    profile_trace,
    render_critical_path,
    render_diff,
    render_flame,
    render_top,
)
from repro.obs.profile import aggregate_nodes, walk_tree


def span(span_id, name, parent=None, duration_ms=1.0, **attrs):
    return {
        "attrs": attrs,
        "duration_ms": duration_ms,
        "id": span_id,
        "name": name,
        "parent": parent,
    }


#: root(10) -> work(6) -> inner(2); root -> work(3)  [self: root 1, work 7, inner 2]
TRACE = [
    span(1, "root", None, 10.0),
    span(2, "work", 1, 6.0),
    span(3, "inner", 2, 2.0),
    span(4, "work", 1, 3.0),
]


class TestTree:
    def test_build_tree_resolves_the_forest(self):
        roots = build_tree(TRACE)
        assert [root.name for root in roots] == ["root"]
        assert [child.name for child in roots[0].children] == ["work", "work"]
        assert [node.span_id for node in walk_tree(roots)] == [1, 2, 3, 4]

    def test_unknown_parent_raises_with_the_span_named(self):
        with pytest.raises(ValueError, match="span 3 names unknown parent 2"):
            build_tree([span(1, "a"), span(3, "b", parent=2)])

    def test_self_time_subtracts_direct_children_only(self):
        roots = build_tree(TRACE)
        root = roots[0]
        assert root.child_ms == pytest.approx(9.0)
        assert root.self_ms == pytest.approx(1.0)  # 10 - (6 + 3); inner not double-counted
        assert root.children[0].self_ms == pytest.approx(4.0)  # 6 - 2

    def test_self_time_clamps_rounding_underflow(self):
        roots = build_tree([span(1, "p", None, 1.0), span(2, "c", 1, 1.0001)])
        assert roots[0].self_ms == 0.0


class TestAggregation:
    def test_profile_merges_names_and_sorts_by_self_time(self):
        profiles = profile_trace(TRACE)
        assert [(p.name, p.count) for p in profiles] == [
            ("work", 2), ("inner", 1), ("root", 1),
        ]
        work = profiles[0]
        assert work.self_ms == pytest.approx(7.0)
        assert work.cumulative_ms == pytest.approx(9.0)

    def test_self_times_decompose_the_total_root_time(self):
        profiles = profile_trace(TRACE)
        assert sum(p.self_ms for p in profiles) == pytest.approx(10.0)

    def test_timing_stats_carry_min_p50_max_of_per_call_self(self):
        work = profile_trace(TRACE)[0]
        # per-call self: 4.0 and 3.0 ms, in seconds inside TimingStats
        assert work.self_stats.best_ms == pytest.approx(3.0)
        assert work.self_stats.worst_ms == pytest.approx(4.0)
        assert work.self_stats.median_ms == pytest.approx(3.5)

    def test_aggregate_nodes_over_a_subtree_slice(self):
        roots = build_tree(TRACE)
        subtree = walk_tree([roots[0].children[0]])  # work(6) -> inner(2)
        profiles = aggregate_nodes(subtree)
        assert [(p.name, p.self_ms) for p in profiles] == [("work", 4.0), ("inner", 2.0)]

    def test_memory_attr_sums_per_name(self):
        records = [
            span(1, "root", None, 4.0),
            span(2, "leaf", 1, 1.0, **{MEMORY_ATTR: 10.5}),
            span(3, "leaf", 1, 1.0, **{MEMORY_ATTR: -2.5}),
        ]
        by_name = {p.name: p for p in profile_trace(records)}
        assert by_name["leaf"].mem_delta_kb == pytest.approx(8.0)
        assert by_name["root"].mem_delta_kb is None


class TestCriticalPath:
    def test_follows_the_slowest_child(self):
        path = critical_path(TRACE)
        assert [record["name"] for record in path] == ["root", "work", "inner"]

    def test_ties_break_toward_the_earlier_id(self):
        records = [
            span(1, "root", None, 10.0),
            span(2, "left", 1, 4.0),
            span(3, "right", 1, 4.0),
        ]
        assert [r["id"] for r in critical_path(records)] == [1, 2]

    def test_empty_trace_yields_empty_path(self):
        assert critical_path([]) == []


class TestDiff:
    def test_identical_traces_have_no_drift_and_zero_deltas(self):
        diff = diff_traces(TRACE, TRACE)
        assert diff.structural_drift is False
        assert diff.drift_details == ()
        assert all(delta.delta_ms == 0.0 for delta in diff.deltas)

    def test_duration_only_changes_are_not_drift(self):
        slower = [dict(record, duration_ms=record["duration_ms"] * 2) for record in TRACE]
        diff = diff_traces(TRACE, slower)
        assert diff.structural_drift is False
        top = diff.deltas[0]
        assert top.name == "work"
        assert top.delta_ms == pytest.approx(7.0)
        assert top.ratio == pytest.approx(2.0)

    def test_structural_drift_names_counts_and_first_divergence(self):
        extra = TRACE + [span(5, "surprise", 1, 0.5)]
        diff = diff_traces(TRACE, extra)
        assert diff.structural_drift is True
        assert "span count 4 -> 5" in diff.drift_details
        assert "surprise: 0 -> 1 calls" in diff.drift_details

    def test_renamed_span_reports_the_diverging_record(self):
        renamed = [dict(record) for record in TRACE]
        renamed[1]["name"] = "work2"
        diff = diff_traces(TRACE, renamed)
        assert diff.structural_drift is True
        assert any("first divergence at record 2" in d for d in diff.drift_details)
        new_name = next(delta for delta in diff.deltas if delta.name == "work2")
        assert new_name.count_a == 0 and new_name.ratio is None

    def test_memory_attrs_do_not_cause_drift(self):
        tracer = Tracer(memory=True)
        with tracer.span("root"):
            pass
        plain = Tracer()
        with plain.span("root"):
            pass
        diff = diff_traces(plain.records(), tracer.records())
        assert diff.structural_drift is False


class TestRender:
    def test_top_table_lists_names_and_critical_path(self):
        text = render_top(TRACE)
        assert "4 spans, 3 names" in text
        assert "work" in text and "critical path" in text
        assert "mem kb" not in text  # no memory attribution in this trace

    def test_top_grows_a_memory_column_when_present(self):
        records = [span(1, "root", None, 1.0, **{MEMORY_ATTR: 3.0})]
        assert "mem kb" in render_top(records)

    def test_top_limit_truncates_rows(self):
        text = render_top(TRACE, limit=1)
        assert "inner" not in text.split("critical path")[0]

    def test_flame_bars_scale_with_share(self):
        text = render_flame(TRACE, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("flame: 4 spans")
        root_line = next(line for line in lines[1:] if " root " in line)
        assert root_line.startswith("#" * 10)
        inner_line = next(line for line in lines if "inner" in line)
        assert inner_line.strip().startswith("##")

    def test_flame_marks_sub_cell_spans_with_a_dot(self):
        records = [span(1, "root", None, 100.0), span(2, "tiny", 1, 0.1)]
        tiny_line = next(
            line for line in render_flame(records, width=10).splitlines() if "tiny" in line
        )
        assert tiny_line.strip().startswith(".")

    def test_empty_trace_renders(self):
        assert "empty" in render_top([])
        assert "empty" in render_flame([])
        assert "empty" in render_critical_path([])

    def test_diff_render_states_the_verdict(self):
        clean = render_diff(diff_traces(TRACE, TRACE))
        assert "structural drift: none (identical modulo durations)" in clean
        drifted = render_diff(diff_traces(TRACE, TRACE[:3]))
        assert "structural drift: YES" in drifted


class TestRealTracer:
    def test_profile_of_a_live_trace_is_consistent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            for _ in range(3):
                with tracer.span("step"):
                    pass
        profiles = profile_trace(tracer.records())
        by_name = {p.name: p for p in profiles}
        assert by_name["step"].count == 3
        total_self = sum(p.self_ms for p in profiles)
        outer_ms = tracer.records()[0]["duration_ms"]
        assert total_self == pytest.approx(outer_ms, abs=0.01)
