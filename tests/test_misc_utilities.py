"""Tests for smaller utilities: markdown tables, fallback recommender,
stream helpers, and loose ends across modules."""

from __future__ import annotations

import pytest

from repro.core.models import Agent, Dataset, Product, Rating
from repro.core.recommender import (
    FallbackRecommender,
    PopularityRecommender,
    RandomRecommender,
    Recommendation,
    Recommender,
)
from repro.evaluation.protocol import Table


class TestTableMarkdown:
    def test_basic_shape(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row("x", 1)
        text = table.to_markdown()
        lines = text.splitlines()
        assert lines[0] == "**T**"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| x | 1 |"

    def test_pipe_escaping(self):
        table = Table(title="T", headers=["a"])
        table.add_row("x|y")
        assert "x\\|y" in table.to_markdown()

    def test_notes_italicized(self):
        table = Table(title="T", headers=["a"])
        table.add_row("x")
        table.add_note("careful")
        assert "*careful*" in table.to_markdown()


class _FixedRecommender(Recommender):
    def __init__(self, items: list[str]) -> None:
        self.items = items

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        return [Recommendation(product=p, score=1.0) for p in self.items[:limit]]


class TestFallbackRecommender:
    def _dataset(self) -> Dataset:
        dataset = Dataset()
        dataset.add_agent(Agent(uri="u:new"))
        dataset.add_agent(Agent(uri="u:old"))
        for i in range(6):
            dataset.add_product(Product(identifier=f"p:{i}"))
            dataset.add_rating(Rating(agent="u:old", product=f"p:{i}"))
        return dataset

    def test_primary_sufficient_no_fallback(self):
        combo = FallbackRecommender(
            primary=_FixedRecommender(["a", "b", "c"]),
            fallback=_FixedRecommender(["z"]),
        )
        assert [r.product for r in combo.recommend("u", limit=3)] == ["a", "b", "c"]

    def test_fallback_fills_remainder(self):
        combo = FallbackRecommender(
            primary=_FixedRecommender(["a"]),
            fallback=_FixedRecommender(["x", "y", "z"]),
        )
        assert [r.product for r in combo.recommend("u", limit=3)] == ["a", "x", "y"]

    def test_duplicates_skipped(self):
        combo = FallbackRecommender(
            primary=_FixedRecommender(["a", "b"]),
            fallback=_FixedRecommender(["b", "c", "d"]),
        )
        products = [r.product for r in combo.recommend("u", limit=4)]
        assert products == ["a", "b", "c", "d"]

    def test_cold_start_agent_gets_popularity(self):
        dataset = self._dataset()
        combo = FallbackRecommender(
            primary=_FixedRecommender([]),  # trust pipeline found nothing
            fallback=PopularityRecommender(dataset=dataset),
        )
        recs = combo.recommend("u:new", limit=3)
        assert len(recs) == 3

    def test_empty_everywhere(self):
        combo = FallbackRecommender(
            primary=_FixedRecommender([]), fallback=_FixedRecommender([])
        )
        assert combo.recommend("u", limit=5) == []

    def test_with_real_pipeline(self, small_community, figure1):
        """An agent with no trust falls back to popularity seamlessly."""
        from repro.core.recommender import SemanticWebRecommender

        dataset = small_community.dataset
        # Mint a brand-new agent with ratings but no trust statements.
        dataset_copy = Dataset(
            agents=dict(dataset.agents),
            products=dict(dataset.products),
            trust=dict(dataset.trust),
            ratings=dict(dataset.ratings),
        )
        newcomer = "http://agents.example.org/newcomer"
        dataset_copy.add_agent(Agent(uri=newcomer, name="Newcomer"))
        primary = SemanticWebRecommender.from_dataset(
            dataset_copy, small_community.taxonomy
        )
        assert primary.recommend(newcomer, limit=5) == []
        combo = FallbackRecommender(
            primary=primary, fallback=PopularityRecommender(dataset=dataset_copy)
        )
        recs = combo.recommend(newcomer, limit=5)
        assert len(recs) == 5


class TestStreamHelpers:
    def test_load_ntriples_from_lines(self):
        from repro.semweb.serializer import load_ntriples

        lines = [
            "<http://e.org/s> <http://e.org/p> <http://e.org/o> .",
            "# comment",
        ]
        graph = load_ntriples(lines)
        assert len(graph) == 1

    def test_graphs_isomorphic_simple(self):
        from repro.semweb.rdf import Graph, URIRef
        from repro.semweb.serializer import graphs_isomorphic_simple

        t = (URIRef("u:s"), URIRef("u:p"), URIRef("u:o"))
        assert graphs_isomorphic_simple(Graph([t]), Graph([t]))
        assert not graphs_isomorphic_simple(Graph([t]), Graph())

    def test_iter_records(self):
        from repro.datasets.io import iter_records

        lines = ['{"kind": "agent", "uri": "u:1"}', "", '{"kind": "trust"}']
        records = list(iter_records(lines))
        assert len(records) == 2
        assert records[0]["uri"] == "u:1"


class TestRandomRecommenderEdge:
    def test_empty_catalog(self):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="u:1"))
        assert RandomRecommender(dataset=dataset).recommend("u:1", 5) == []
