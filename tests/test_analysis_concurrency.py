"""Tests for lock-set inference and rules RL300–RL303.

Fixture packages are throwaway mini-trees on disk with real ``repro.*``
module names (the ``__init__.py`` chain defines the package path), which
is what lets :data:`DEFAULT_CACHE_REGISTRY`, :data:`CONCURRENT_ROOTS`
and the ``repro.util.sync`` sanitizer recognition bind to fixture
classes.  Each tree carries a stub ``repro/util/sync.py`` so annotations
resolve to the sanctioned primitive qualnames without importing the real
package.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.concurrency import (
    AtomicPublishRule,
    BlockingUnderGuardRule,
    CheckThenActRule,
    SharedStateRaceRule,
    analyze_concurrency,
)
from repro.analysis.engine import lint_project
from repro.analysis.rules import all_rule_codes
from repro.analysis.sarif import findings_to_sarif
from repro.analysis.symbols import ProjectIndex

REPO_ROOT = Path(__file__).resolve().parent.parent

RL3XX = ["RL300", "RL301", "RL302", "RL303"]


def write_project(root: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return paths


def build_index(root: Path, files: dict[str, str]) -> ProjectIndex:
    return ProjectIndex.build(write_project(root, files))


def codes(findings) -> list[str]:
    return [f.code for f in findings]


#: Stub of the sanctioned primitives: enough surface for annotations and
#: method calls to resolve to the ``repro.util.sync.*`` qualnames.
SYNC_STUB = {
    "repro/__init__.py": "",
    "repro/util/__init__.py": "",
    "repro/util/sync.py": """
        class ReentrantGuard:
            def __init__(self, name="guard"):
                self.name = name

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return None

        class GuardedCache:
            def __init__(self, name="cache", guard=None):
                self.name = name

            def get_or_build(self, key, build):
                return build(key)

            def peek(self, key):
                return None

            def store(self, key, value):
                return None

            def invalidate(self, key=None):
                return None

            def held(self):
                return ReentrantGuard(self.name)

        class AtomicSwap:
            def __init__(self, name="slot", guard=None):
                self.name = name

            def get(self):
                return None

            def get_or_build(self, build):
                return build()

            def swap(self, value):
                return None

            def clear(self):
                return None

            def held(self):
                return ReentrantGuard(self.name)
    """,
}


# ---------------------------------------------------------------------------
# RL300 — shared-state race.
# ---------------------------------------------------------------------------

_BARE_STORE = {
    "repro/core/__init__.py": "",
    "repro/core/recommender.py": """
        class ProfileStore:
            def __init__(self):
                self._cache = {}
    """,
    "repro/perf/__init__.py": "",
}


class TestSharedStateRace:
    def test_unguarded_write_on_concurrent_path(self, tmp_path):
        files = dict(SYNC_STUB) | dict(_BARE_STORE)
        files["repro/perf/parallel.py"] = """
            from ..core.recommender import ProfileStore

            class ParallelExperimentRunner:
                def map(self, store: ProfileStore, keys):
                    return [fill(store, key) for key in keys]

            def fill(store: ProfileStore, key):
                store._cache[key] = key
                return key
        """
        findings = lint_project(write_project(tmp_path, files), select=["RL300"])
        assert codes(findings) == ["RL300"]
        message = findings[0].message
        assert "repro.core.recommender.ProfileStore._cache" in message
        # Witness chain: root -> mutator, deterministic.
        assert (
            "repro.perf.parallel.ParallelExperimentRunner.map"
            " -> repro.perf.parallel.fill" in message
        )

    def test_entry_meet_is_intersection_over_paths(self, tmp_path):
        # helper() is reached both guarded and unguarded from the root, so
        # its effective entry lock set is the intersection: empty → race.
        files = dict(SYNC_STUB) | dict(_BARE_STORE)
        files["repro/perf/parallel.py"] = """
            from ..core.recommender import ProfileStore

            POOL_LOCK = object()

            class ParallelExperimentRunner:
                def map(self, store: ProfileStore, keys):
                    helper(store)
                    with POOL_LOCK:
                        helper(store)

            def helper(store: ProfileStore):
                store._cache["k"] = 1
        """
        findings = lint_project(write_project(tmp_path, files), select=["RL300"])
        assert codes(findings) == ["RL300"]

    def test_sync_primitive_write_is_sanctioned(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            from ..util.sync import GuardedCache

            class ProfileStore:
                def __init__(self):
                    self._cache: GuardedCache = GuardedCache("profiles")
        """
        files["repro/perf/__init__.py"] = ""
        files["repro/perf/parallel.py"] = """
            from ..core.recommender import ProfileStore

            class ParallelExperimentRunner:
                def map(self, store: ProfileStore, keys):
                    return [fill(store, key) for key in keys]

            def fill(store: ProfileStore, key):
                store._cache.store(key, key)
                return key
        """
        assert lint_project(write_project(tmp_path, files), select=["RL300"]) == []

    def test_module_level_lock_is_a_guard(self, tmp_path):
        files = dict(SYNC_STUB) | dict(_BARE_STORE)
        files["repro/perf/parallel.py"] = """
            from ..core.recommender import ProfileStore

            FILL_LOCK = object()

            class ParallelExperimentRunner:
                def map(self, store: ProfileStore, keys):
                    return [fill(store, key) for key in keys]

            def fill(store: ProfileStore, key):
                with FILL_LOCK:
                    store._cache[key] = key
                return key
        """
        assert lint_project(write_project(tmp_path, files), select=["RL300"]) == []

    def test_suppression_on_the_write_line(self, tmp_path):
        files = dict(SYNC_STUB) | dict(_BARE_STORE)
        files["repro/perf/parallel.py"] = """
            from ..core.recommender import ProfileStore

            class ParallelExperimentRunner:
                def map(self, store: ProfileStore, keys):
                    return [fill(store, key) for key in keys]

            def fill(store: ProfileStore, key):
                store._cache[key] = key  # reprolint: disable=RL300
                return key
        """
        assert lint_project(write_project(tmp_path, files), select=["RL300"]) == []


# ---------------------------------------------------------------------------
# RL301 — check-then-act.
# ---------------------------------------------------------------------------

#: Replica of the seed's lazy-cache shapes: the exact code RL301 was
#: built to catch (aliased ``.get`` probe, ``is None`` lazy field with an
#: interprocedural fill, ``not in`` membership probe).
RL301_SEED_REPLICA = dict(SYNC_STUB) | {
    "repro/core/__init__.py": "",
    "repro/core/recommender.py": """
        class ProfileStore:
            def __init__(self):
                self._cache = {}
                self._matrix = None

            def profile(self, agent):
                cached = self._cache.get(agent)
                if cached is None:
                    cached = len(agent)
                    self._cache[agent] = cached
                return cached

            def matrix(self):
                if self._matrix is None:
                    self._fill()
                return self._matrix

            def _fill(self):
                self._matrix = object()

            def seed(self, agent):
                if agent not in self._cache:
                    self._cache[agent] = 0
    """,
}


class TestCheckThenAct:
    def test_seed_replica_triggers_all_three_shapes(self, tmp_path):
        findings = lint_project(
            write_project(tmp_path, RL301_SEED_REPLICA), select=["RL301"]
        )
        assert codes(findings) == ["RL301", "RL301", "RL301"]
        messages = "\n".join(f.message for f in findings)
        assert "repro.core.recommender.ProfileStore._cache" in messages
        assert "repro.core.recommender.ProfileStore._matrix" in messages
        assert "GuardedCache.get_or_build" in messages

    def test_interprocedural_fill_witness(self, tmp_path):
        findings = lint_project(
            write_project(tmp_path, RL301_SEED_REPLICA), select=["RL301"]
        )
        matrix = [f for f in findings if "._matrix" in f.message]
        assert len(matrix) == 1
        assert (
            "fill via repro.core.recommender.ProfileStore.matrix"
            " -> repro.core.recommender.ProfileStore._fill" in matrix[0].message
        )

    def test_double_checked_locking_is_sanctioned(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            class ProfileStore:
                def __init__(self):
                    self._lock = object()
                    self._cache = {}

                def profile(self, agent):
                    with self._lock:
                        if agent not in self._cache:
                            self._cache[agent] = len(agent)
                        return self._cache[agent]
        """
        assert lint_project(write_project(tmp_path, files), select=["RL301"]) == []

    def test_converted_fast_path_read_is_clean(self, tmp_path):
        # The post-conversion shape: a lock-free `.get()` probe plus
        # `get_or_build` — `is not None` is not a check-then-act window.
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            from ..util.sync import AtomicSwap

            class ProfileStore:
                def __init__(self):
                    self._matrix: AtomicSwap = AtomicSwap("m")

                def matrix(self):
                    cached = self._matrix.get()
                    if cached is not None:
                        return cached
                    return self._matrix.get_or_build(object)
        """
        assert lint_project(write_project(tmp_path, files), select=["RL301"]) == []

    def test_suppression(self, tmp_path):
        files = dict(RL301_SEED_REPLICA)
        files["repro/core/recommender.py"] = """
            class ProfileStore:
                def __init__(self):
                    self._matrix = None

                def matrix(self):
                    if self._matrix is None:  # reprolint: disable=RL301
                        self._matrix = object()
                    return self._matrix
        """
        assert lint_project(write_project(tmp_path, files), select=["RL301"]) == []


# ---------------------------------------------------------------------------
# RL302 — non-atomic invalidate/rebuild.
# ---------------------------------------------------------------------------


class TestAtomicPublish:
    def test_in_place_mutation_of_swap_published_field(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/perf/__init__.py"] = ""
        files["repro/perf/matrix.py"] = """
            class ProfileMatrix:
                def __init__(self):
                    self._dense_sq = None

                def patch(self, index, value):
                    self._dense_sq[index] = value
        """
        findings = lint_project(write_project(tmp_path, files), select=["RL302"])
        assert codes(findings) == ["RL302"]
        assert "publishes by replacement" in findings[0].message

    def test_inconsistent_lock_sets(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            class ProfileStore:
                def __init__(self):
                    self._fill_lock = object()
                    self._drop_lock = object()
                    self._cache = {}

                def fill(self, key, value):
                    with self._fill_lock:
                        self._cache[key] = value

                def drop(self):
                    with self._drop_lock:
                        self._cache.clear()
        """
        findings = lint_project(write_project(tmp_path, files), select=["RL302"])
        assert codes(findings) == ["RL302"]
        message = findings[0].message
        assert "inconsistent lock sets" in message
        assert "_fill_lock" in message and "_drop_lock" in message

    def test_shared_guard_has_a_common_token(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            class ProfileStore:
                def __init__(self):
                    self._lock = object()
                    self._cache = {}

                def fill(self, key, value):
                    with self._lock:
                        self._cache[key] = value

                def drop(self):
                    with self._lock:
                        self._cache.clear()
        """
        assert lint_project(write_project(tmp_path, files), select=["RL302"]) == []

    def test_constructor_assignment_does_not_poison_the_intersection(
        self, tmp_path
    ):
        # __init__ installs the field unguarded before the object escapes
        # (ownership); the accessors share the primitive's implicit token.
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            from ..util.sync import GuardedCache, ReentrantGuard

            class ProfileStore:
                def __init__(self):
                    self._guard = ReentrantGuard("s")
                    self._cache: GuardedCache = GuardedCache("c", guard=self._guard)

                def profile(self, agent):
                    return self._cache.get_or_build(agent, len)

                def invalidate(self):
                    with self._guard:
                        self._cache.invalidate()
        """
        assert lint_project(write_project(tmp_path, files), select=["RL302"]) == []


# ---------------------------------------------------------------------------
# RL303 — blocking under a guard.
# ---------------------------------------------------------------------------

RL303_TRIGGER = dict(SYNC_STUB) | {
    "repro/core/__init__.py": "",
    "repro/core/work.py": """
        import time

        class Worker:
            def __init__(self):
                self._lock = object()

            def timed(self):
                with self._lock:
                    return time.perf_counter()

            def chained(self):
                with self._lock:
                    return helper()

        def helper():
            return open("path")
    """,
}


class TestBlockingUnderGuard:
    def test_direct_site_anchors_at_the_with_line(self, tmp_path):
        findings = lint_project(write_project(tmp_path, RL303_TRIGGER), select=["RL303"])
        assert codes(findings) == ["RL303", "RL303"]
        direct = [f for f in findings if "'clock'" in f.message]
        assert len(direct) == 1
        source = (tmp_path / "repro/core/work.py").read_text(encoding="utf-8")
        anchored = source.splitlines()[direct[0].line - 1]
        assert anchored.strip().startswith("with ")
        assert "guard:repro.core.work.Worker._lock" in direct[0].message

    def test_inherited_effect_carries_a_witness_chain(self, tmp_path):
        findings = lint_project(write_project(tmp_path, RL303_TRIGGER), select=["RL303"])
        chained = [f for f in findings if "'io'" in f.message]
        assert len(chained) == 1
        assert (
            "repro.core.work.Worker.chained -> repro.core.work.helper"
            in chained[0].message
        )

    def test_obs_instrumentation_is_allowlisted(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/obs/__init__.py"] = ""
        files["repro/obs/metrics.py"] = """
            import time

            def tick():
                return time.perf_counter()
        """
        files["repro/core/__init__.py"] = ""
        files["repro/core/work.py"] = """
            from ..obs.metrics import tick

            class Worker:
                def __init__(self):
                    self._lock = object()

                def guarded(self):
                    with self._lock:
                        return tick()
        """
        assert lint_project(write_project(tmp_path, files), select=["RL303"]) == []

    def test_suppression_inside_a_multiline_with_header(self, tmp_path):
        # The finding anchors at the `with (` line; the comment sits on a
        # later physical line of the same header.  The engine projects
        # header suppressions onto the anchor — the seed engine did not.
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/work.py"] = """
            import time

            class Worker:
                def __init__(self):
                    self._lock = object()

                def timed(self):
                    with (
                        self._lock  # reprolint: disable=RL303
                    ):
                        return time.perf_counter()
        """
        assert lint_project(write_project(tmp_path, files), select=["RL303"]) == []


# ---------------------------------------------------------------------------
# The analysis layer itself.
# ---------------------------------------------------------------------------


class TestLockSetInference:
    def test_acquired_guards_mix_with_blocks_and_implicit_tokens(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            from ..util.sync import GuardedCache, ReentrantGuard

            class ProfileStore:
                def __init__(self):
                    self._guard = ReentrantGuard("s")
                    self._cache: GuardedCache = GuardedCache("c", guard=self._guard)

                def profile(self, agent):
                    return self._cache.get_or_build(agent, len)

                def invalidate(self):
                    with self._guard:
                        self._cache.invalidate()
        """
        analysis = analyze_concurrency(
            ProjectIndex.build(write_project(tmp_path, files))
        )
        guards = analysis.acquired_guards()
        store = "repro.core.recommender.ProfileStore"
        assert guards[f"{store}.profile"] == {f"guard:{store}._cache"}
        assert guards[f"{store}.invalidate"] == {
            f"guard:{store}._guard",
            f"guard:{store}._cache",
        }

    def test_held_context_manager_yields_the_cache_token(self, tmp_path):
        files = dict(SYNC_STUB)
        files["repro/core/__init__.py"] = ""
        files["repro/core/recommender.py"] = """
            from ..util.sync import GuardedCache

            class ProfileStore:
                def __init__(self):
                    self._cache: GuardedCache = GuardedCache("c")

                def compound(self):
                    with self._cache.held():
                        return 1
        """
        analysis = analyze_concurrency(
            ProjectIndex.build(write_project(tmp_path, files))
        )
        store = "repro.core.recommender.ProfileStore"
        assert analysis.acquired_guards()[f"{store}.compound"] == {
            f"guard:{store}._cache"
        }


# ---------------------------------------------------------------------------
# Pipeline integration: SARIF, baseline, selection.
# ---------------------------------------------------------------------------


class TestPipelineIntegration:
    def test_select_codes_are_registered(self):
        assert set(RL3XX) <= set(all_rule_codes())

    def test_default_rule_instances_carry_the_codes(self):
        assert SharedStateRaceRule.code == "RL300"
        assert CheckThenActRule.code == "RL301"
        assert AtomicPublishRule.code == "RL302"
        assert BlockingUnderGuardRule.code == "RL303"

    def test_sarif_snapshot(self, tmp_path):
        findings = lint_project(
            write_project(tmp_path, RL301_SEED_REPLICA), select=["RL301"]
        )
        document = findings_to_sarif(findings)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert [r["ruleId"] for r in run["results"]] == ["RL301"] * 3
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "RL301" in rules

    def test_baseline_add_then_expire(self, tmp_path):
        paths = write_project(tmp_path, RL301_SEED_REPLICA)
        findings = lint_project(paths, select=["RL301"])
        baseline = Baseline.from_findings(findings)
        assert baseline.apply(findings).ok

        # Pay the debt: convert to the sanctioned primitive.
        fixed = next(p for p in paths if p.name == "recommender.py")
        fixed.write_text(
            textwrap.dedent(
                """
                from ..util.sync import GuardedCache

                class ProfileStore:
                    def __init__(self):
                        self._cache: GuardedCache = GuardedCache("c")

                    def profile(self, agent):
                        return self._cache.get_or_build(agent, len)
                """
            ),
            encoding="utf-8",
        )
        result = baseline.apply(lint_project(paths, select=["RL301"]))
        assert not result.ok
        assert result.new == []
        assert {entry.code for entry in result.stale} == {"RL301"}


# ---------------------------------------------------------------------------
# Self-check: the repo holds itself to RL300–RL303 with no baseline debt.
# ---------------------------------------------------------------------------


class TestSelfCheck:
    def test_repo_src_is_concurrency_clean(self):
        findings = lint_project([REPO_ROOT / "src"], select=RL3XX)
        assert findings == [], "concurrency findings:\n" + "\n".join(
            f.render() for f in findings
        )

    def test_baseline_has_zero_concurrency_entries(self):
        payload = json.loads(
            (REPO_ROOT / ".reprolint-baseline.json").read_text(encoding="utf-8")
        )
        assert all(
            not entry["code"].startswith("RL30") for entry in payload["entries"]
        )
