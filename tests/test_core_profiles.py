"""Unit and property tests for taxonomy-based profile generation (Eq. 3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.similarity import isclose
from repro.core.models import Product
from repro.core.profiles import (
    DEFAULT_PROFILE_SCORE,
    TaxonomyProfileBuilder,
    descriptor_score_path,
    flat_category_profile,
    product_profile,
)
from repro.core.taxonomy import Taxonomy, figure1_fragment


class TestExample1:
    """The paper's only worked numeric artifact, reproduced exactly."""

    def test_descriptor_budget(self):
        # s=1000, 4 books, Matrix Analysis has 5 descriptors -> 50 each.
        assert isclose(DEFAULT_PROFILE_SCORE / (4 * 5), 50.0)

    def test_exact_scores(self, figure1):
        scores = descriptor_score_path(figure1, "Algebra", 50.0)
        # Exact closed-form values of Eq. 3 (paper prints 29.087 etc.,
        # rounded; see DESIGN.md §5).
        assert scores["Algebra"] == pytest.approx(50.0 * 96 / 165)  # 29.0909..
        assert scores["Pure"] == pytest.approx(50.0 * 48 / 165)  # 14.5454..
        assert scores["Mathematics"] == pytest.approx(50.0 * 16 / 165)  # 4.8484..
        assert scores["Science"] == pytest.approx(50.0 * 4 / 165)  # 1.2121..
        assert scores["Books"] == pytest.approx(50.0 * 1 / 165)  # 0.30303..

    def test_close_to_paper_printed_values(self, figure1):
        scores = descriptor_score_path(figure1, "Algebra", 50.0)
        paper = {
            "Algebra": 29.087,
            "Pure": 14.543,
            "Mathematics": 4.848,
            "Science": 1.212,
            "Books": 0.303,
        }
        for topic, value in paper.items():
            assert scores[topic] == pytest.approx(value, abs=0.005)

    def test_scores_sum_to_budget(self, figure1):
        scores = descriptor_score_path(figure1, "Algebra", 50.0)
        assert sum(scores.values()) == pytest.approx(50.0)

    def test_eq3_recurrence_holds(self, figure1):
        """sco(p_m) = sco(p_{m+1}) / (sib(p_{m+1}) + 1) along the path."""
        scores = descriptor_score_path(figure1, "Algebra", 50.0)
        path = figure1.path_to_root("Algebra")  # [Algebra, ..., Books]
        for child, parent in zip(path, path[1:]):
            expected = scores[child] / (figure1.sibling_count(child) + 1)
            assert scores[parent] == pytest.approx(expected)


class TestDescriptorScorePath:
    def test_root_descriptor(self, figure1):
        scores = descriptor_score_path(figure1, "Books", 10.0)
        assert scores == {"Books": 10.0}

    def test_attenuation_monotone(self, figure1):
        scores = descriptor_score_path(figure1, "Algebra", 50.0)
        path = figure1.path_to_root("Algebra")
        values = [scores[t] for t in path]
        assert values == sorted(values, reverse=True)

    def test_zero_budget(self, figure1):
        scores = descriptor_score_path(figure1, "Algebra", 0.0)
        assert all(v == 0.0 for v in scores.values())


def _products() -> dict[str, Product]:
    return {
        "isbn:alg": Product(identifier="isbn:alg", descriptors=frozenset({"Algebra"})),
        "isbn:cal": Product(identifier="isbn:cal", descriptors=frozenset({"Calculus"})),
        "isbn:phy": Product(identifier="isbn:phy", descriptors=frozenset({"Physics"})),
        "isbn:two": Product(
            identifier="isbn:two", descriptors=frozenset({"Algebra", "Physics"})
        ),
        "isbn:none": Product(identifier="isbn:none"),
        "isbn:alien": Product(
            identifier="isbn:alien", descriptors=frozenset({"NotInTaxonomy"})
        ),
    }


class TestTaxonomyProfileBuilder:
    @pytest.fixture
    def builder(self, figure1) -> TaxonomyProfileBuilder:
        return TaxonomyProfileBuilder(figure1)

    def test_empty_ratings_empty_profile(self, builder):
        assert builder.build({}, _products()) == {}

    def test_profile_mass_equals_s(self, builder):
        profile = builder.build({"isbn:alg": 1.0, "isbn:phy": 1.0}, _products())
        assert builder.profile_mass(profile) == pytest.approx(DEFAULT_PROFILE_SCORE)

    def test_single_product_all_mass(self, builder, figure1):
        profile = builder.build({"isbn:alg": 1.0}, _products())
        assert sum(profile.values()) == pytest.approx(DEFAULT_PROFILE_SCORE)
        # Support is exactly the path to the root.
        assert set(profile) == set(figure1.path_to_root("Algebra"))

    def test_multi_descriptor_split(self, builder):
        profile = builder.build({"isbn:two": 1.0}, _products())
        # Algebra path gets 500, Physics path gets 500.
        algebra_mass = sum(
            v for k, v in profile.items() if k in ("Algebra", "Pure")
        )
        assert profile["Physics"] > 0
        assert algebra_mass > 0
        assert sum(profile.values()) == pytest.approx(DEFAULT_PROFILE_SCORE)

    def test_unknown_products_skipped(self, builder):
        profile = builder.build({"isbn:ghost": 1.0, "isbn:alg": 1.0}, _products())
        assert builder.profile_mass(profile) == pytest.approx(DEFAULT_PROFILE_SCORE)

    def test_descriptorless_products_skipped(self, builder):
        profile = builder.build({"isbn:none": 1.0}, _products())
        assert profile == {}

    def test_unknown_topics_skipped(self, builder):
        profile = builder.build({"isbn:alien": 1.0}, _products())
        assert profile == {}

    def test_negative_ratings_ignored_by_default(self, builder):
        profile = builder.build({"isbn:alg": -1.0}, _products())
        assert profile == {}

    def test_short_history_higher_impact(self, builder):
        """Paper: ratings from short-history agents weigh more per product."""
        short = builder.build({"isbn:alg": 1.0}, _products())
        long = builder.build(
            {"isbn:alg": 1.0, "isbn:cal": 1.0, "isbn:phy": 1.0}, _products()
        )
        assert short["Algebra"] > long["Algebra"]
        assert short["Algebra"] == pytest.approx(3 * long["Algebra"])

    def test_shared_ancestors_accumulate(self, builder):
        profile = builder.build({"isbn:alg": 1.0, "isbn:cal": 1.0}, _products())
        # Algebra and Calculus are siblings under Pure: Pure receives score
        # from both paths.
        single = builder.build({"isbn:alg": 1.0}, _products())
        assert profile["Pure"] == pytest.approx(single["Pure"])  # 500-normalized each
        assert profile["Books"] == pytest.approx(single["Books"])

    def test_signed_mode_subtracts(self, figure1):
        builder = TaxonomyProfileBuilder(figure1, negative_mode="signed")
        profile = builder.build({"isbn:alg": 1.0, "isbn:cal": -1.0}, _products())
        assert profile["Algebra"] > 0
        assert profile["Calculus"] < 0
        # Shared ancestors cancel exactly (equal magnitudes, equal paths).
        assert profile["Pure"] == pytest.approx(0.0)

    def test_rating_weighted_mode(self, figure1):
        builder = TaxonomyProfileBuilder(figure1, product_weighting="rating")
        profile = builder.build({"isbn:alg": 1.0, "isbn:phy": 0.25}, _products())
        assert profile["Algebra"] > profile["Physics"]

    def test_invalid_config_rejected(self, figure1):
        with pytest.raises(ValueError):
            TaxonomyProfileBuilder(figure1, total_score=0)
        with pytest.raises(ValueError):
            TaxonomyProfileBuilder(figure1, product_weighting="bogus")
        with pytest.raises(ValueError):
            TaxonomyProfileBuilder(figure1, negative_mode="bogus")

@given(
    ratings=st.dictionaries(
        st.sampled_from(["isbn:alg", "isbn:cal", "isbn:phy", "isbn:two"]),
        st.floats(min_value=0.1, max_value=1.0),
        min_size=1,
        max_size=4,
    )
)
def test_property_mass_invariant(ratings):
    """Property: any non-empty positive rating set yields mass == s."""
    builder = TaxonomyProfileBuilder(figure1_fragment())
    profile = builder.build(ratings, _products())
    assert sum(profile.values()) == pytest.approx(DEFAULT_PROFILE_SCORE)
    assert all(v >= 0 for v in profile.values())


class TestBaselineProfiles:
    def test_flat_category_no_propagation(self, figure1):
        profile = flat_category_profile(
            {"isbn:alg": 1.0},
            _products(),
            known_topics=figure1,
        )
        assert set(profile) == {"Algebra"}
        assert profile["Algebra"] == pytest.approx(DEFAULT_PROFILE_SCORE)

    def test_flat_category_split_across_descriptors(self, figure1):
        profile = flat_category_profile(
            {"isbn:two": 1.0}, _products(), known_topics=figure1
        )
        assert profile["Algebra"] == pytest.approx(500.0)
        assert profile["Physics"] == pytest.approx(500.0)

    def test_flat_category_ignores_negatives(self, figure1):
        assert (
            flat_category_profile({"isbn:alg": -1.0}, _products(), known_topics=figure1)
            == {}
        )

    def test_product_profile_is_identity(self):
        ratings = {"isbn:1": 1.0, "isbn:2": -0.5}
        assert product_profile(ratings) == ratings
        assert product_profile(ratings) is not ratings


class TestBuilderInvalidate:
    def test_invalidate_drops_both_memo_caches(self, figure1):
        builder = TaxonomyProfileBuilder(figure1)
        products = {
            "alg": Product(
                identifier="alg", title="alg", descriptors=frozenset({"Algebra"})
            )
        }
        builder.build({"alg": 1.0}, products)
        assert builder._path_cache and builder._descriptor_cache
        builder.invalidate()
        assert not builder._path_cache
        assert not builder._descriptor_cache

    def test_rebuild_after_invalidate_is_identical(self, figure1):
        builder = TaxonomyProfileBuilder(figure1)
        products = {
            "alg": Product(
                identifier="alg", title="alg", descriptors=frozenset({"Algebra"})
            )
        }
        before = builder.build({"alg": 1.0}, products)
        builder.invalidate()
        assert builder.build({"alg": 1.0}, products) == before
