"""Unit tests for stereotype generation (§6)."""

from __future__ import annotations

import pytest

from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore
from repro.core.stereotypes import (
    StereotypeRecommender,
    cluster_profiles,
)

# Two obvious planted clusters in topic space.
MATH_PROFILE = {"Algebra": 10.0, "Pure": 5.0, "Mathematics": 2.0}
LIT_PROFILE = {"Literature": 10.0, "Fiction": 5.0}


def _profiles(n_per_cluster: int = 5) -> dict[str, dict[str, float]]:
    profiles = {}
    for i in range(n_per_cluster):
        profiles[f"math{i}"] = {k: v * (1 + 0.1 * i) for k, v in MATH_PROFILE.items()}
        profiles[f"lit{i}"] = {k: v * (1 + 0.1 * i) for k, v in LIT_PROFILE.items()}
    return profiles


class TestClusterProfiles:
    def test_recovers_planted_clusters(self):
        model = cluster_profiles(_profiles(), k=2, seed=3)
        assert len(model.stereotypes) == 2
        membership = model.membership()
        math_labels = {membership[f"math{i}"] for i in range(5)}
        lit_labels = {membership[f"lit{i}"] for i in range(5)}
        assert len(math_labels) == 1
        assert len(lit_labels) == 1
        assert math_labels != lit_labels

    def test_deterministic(self):
        first = cluster_profiles(_profiles(), k=2, seed=7)
        second = cluster_profiles(_profiles(), k=2, seed=7)
        assert first.membership() == second.membership()

    def test_empty_profiles_excluded(self):
        profiles = _profiles()
        profiles["ghost"] = {}
        model = cluster_profiles(profiles, k=2, seed=1)
        assert "ghost" not in model.membership()

    def test_k_clamped_to_population(self):
        model = cluster_profiles({"a": {"x": 1.0}}, k=10, seed=1)
        assert len(model.stereotypes) == 1

    def test_all_empty(self):
        model = cluster_profiles({"a": {}, "b": {}}, k=2)
        assert model.stereotypes == []
        assert model.converged

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            cluster_profiles(_profiles(), k=0)

    def test_assign_matches_fitting(self):
        model = cluster_profiles(_profiles(), k=2, seed=3)
        membership = model.membership()
        assert model.assign(MATH_PROFILE) == membership["math0"]
        assert model.assign(LIT_PROFILE) == membership["lit0"]

    def test_assign_on_empty_model(self):
        model = cluster_profiles({}, k=2)
        with pytest.raises(ValueError):
            model.assign(MATH_PROFILE)

    def test_top_topics(self):
        model = cluster_profiles(_profiles(), k=2, seed=3)
        index = model.assign(MATH_PROFILE)
        topics = model.stereotypes[index].top_topics(2)
        assert topics[0] == "Algebra"

    def test_every_member_assigned_once(self):
        model = cluster_profiles(_profiles(), k=2, seed=3)
        members = [a for s in model.stereotypes for a in s.members]
        assert len(members) == len(set(members)) == 10


class TestStereotypeRecommender:
    def test_fit_and_recommend(self, small_community):
        dataset = small_community.dataset
        store = ProfileStore(
            dataset, TaxonomyProfileBuilder(small_community.taxonomy)
        )
        recommender = StereotypeRecommender.fit(dataset, store, k=6, seed=2)
        agent = sorted(dataset.agents)[0]
        recs = recommender.recommend(agent, limit=10)
        assert recs
        rated = set(dataset.ratings_of(agent))
        assert not rated & {r.product for r in recs}
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_supporters_are_stereotype_members(self, small_community):
        dataset = small_community.dataset
        store = ProfileStore(
            dataset, TaxonomyProfileBuilder(small_community.taxonomy)
        )
        recommender = StereotypeRecommender.fit(dataset, store, k=6, seed=2)
        agent = sorted(dataset.agents)[0]
        index = recommender.model.assign(store.profile(agent))
        members = set(recommender.model.stereotypes[index].members)
        for rec in recommender.recommend(agent, limit=5):
            assert set(rec.supporters) <= members

    def test_stereotypes_recover_planted_clusters(self, small_community):
        dataset = small_community.dataset
        store = ProfileStore(
            dataset, TaxonomyProfileBuilder(small_community.taxonomy)
        )
        k = small_community.config.n_clusters
        recommender = StereotypeRecommender.fit(dataset, store, k=k, seed=5)
        membership = recommender.model.membership()
        # Purity against the generator's planted clusters beats chance.
        groups: dict[int, list[str]] = {}
        for agent, label in membership.items():
            groups.setdefault(label, []).append(agent)
        correct = 0
        for members in groups.values():
            counts: dict[int, int] = {}
            for agent in members:
                truth = small_community.membership[agent]
                counts[truth] = counts.get(truth, 0) + 1
            correct += max(counts.values())
        purity = correct / len(membership)
        assert purity > 2.0 / k
