"""Unit tests for the §3.1 information model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.similarity import isclose
from repro.core.models import (
    Agent,
    Dataset,
    Product,
    Rating,
    TrustStatement,
    clamp_score,
    descriptor_index,
    implicit_rating,
    top_rated,
    validate_score,
)


class TestValidateScore:
    @pytest.mark.parametrize("value", [-1.0, -0.5, 0.0, 0.5, 1.0])
    def test_accepts_in_range(self, value):
        assert validate_score(value) == value

    @pytest.mark.parametrize("value", [-1.001, 1.001, 2.0, -7.0])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            validate_score(value)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_score(float("nan"))

    def test_converts_int_to_float(self):
        result = validate_score(1)
        assert result == 1.0
        assert isinstance(result, float)

    @given(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    def test_property_full_scale_accepted(self, value):
        assert validate_score(value) == value


class TestClampScore:
    @pytest.mark.parametrize("value", [-1.0, -0.5, 0.0, 0.5, 1.0])
    def test_in_range_unchanged(self, value):
        assert clamp_score(value) == value

    @pytest.mark.parametrize(
        ("value", "expected"),
        [(1.001, 1.0), (7.5, 1.0), (float("inf"), 1.0),
         (-1.001, -1.0), (-7.5, -1.0), (float("-inf"), -1.0)],
    )
    def test_out_of_range_clamped(self, value, expected):
        assert clamp_score(value) == expected

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            clamp_score(float("nan"))

    @given(st.floats(allow_nan=False))
    def test_property_result_always_validates(self, value):
        assert validate_score(clamp_score(value)) == clamp_score(value)


class TestAgent:
    def test_requires_uri(self):
        with pytest.raises(ValueError):
            Agent(uri="")

    def test_str_prefers_name(self):
        assert str(Agent(uri="u:1", name="Alice")) == "Alice"
        assert str(Agent(uri="u:1")) == "u:1"

    def test_frozen(self):
        agent = Agent(uri="u:1")
        with pytest.raises(AttributeError):
            agent.uri = "u:2"


class TestProduct:
    def test_descriptors_frozen(self):
        product = Product(identifier="isbn:1", descriptors={"A", "B"})
        assert isinstance(product.descriptors, frozenset)
        assert product.descriptors == {"A", "B"}

    def test_empty_descriptors_allowed(self):
        assert Product(identifier="isbn:1").descriptors == frozenset()

    def test_requires_identifier(self):
        with pytest.raises(ValueError):
            Product(identifier="")


class TestTrustStatement:
    def test_rejects_self_trust(self):
        with pytest.raises(ValueError):
            TrustStatement(source="a", target="a", value=1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TrustStatement(source="a", target="b", value=1.5)  # reprolint: disable=RL006

    def test_distrust_allowed(self):
        statement = TrustStatement(source="a", target="b", value=-0.7)
        assert isclose(statement.value, -0.7)


class TestRating:
    def test_default_is_implicit_positive(self):
        rating = Rating(agent="a", product="isbn:1")
        assert rating.value == 1.0
        assert rating.is_positive

    def test_negative_not_positive(self):
        assert not Rating(agent="a", product="p", value=-0.5).is_positive

    def test_zero_not_positive(self):
        assert not Rating(agent="a", product="p", value=0.0).is_positive

    def test_implicit_rating_helper(self):
        rating = implicit_rating("a", "isbn:1")
        assert rating.value == 1.0


class TestDataset:
    def test_add_agent_conflict_rejected(self):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="u:1", name="Alice"))
        with pytest.raises(ValueError):
            dataset.add_agent(Agent(uri="u:1", name="Bob"))

    def test_add_agent_idempotent(self):
        dataset = Dataset()
        agent = Agent(uri="u:1", name="Alice")
        dataset.add_agent(agent)
        dataset.add_agent(agent)
        assert len(dataset.agents) == 1

    def test_add_product_conflict_rejected(self):
        dataset = Dataset()
        dataset.add_product(Product(identifier="isbn:1", title="A"))
        with pytest.raises(ValueError):
            dataset.add_product(Product(identifier="isbn:1", title="B"))

    def test_trust_overwrite(self):
        dataset = Dataset()
        dataset.add_trust(TrustStatement(source="a", target="b", value=0.5))
        dataset.add_trust(TrustStatement(source="a", target="b", value=0.9))
        assert dataset.trust[("a", "b")].value == 0.9
        assert len(dataset.trust) == 1

    def test_rating_overwrite(self):
        dataset = Dataset()
        dataset.add_rating(Rating(agent="a", product="p", value=0.5))
        dataset.add_rating(Rating(agent="a", product="p", value=-0.5))
        assert dataset.ratings[("a", "p")].value == -0.5

    def test_trust_of_view(self, tiny_dataset):
        alice = "http://example.org/alice"
        trust = tiny_dataset.trust_of(alice)
        assert trust == {
            "http://example.org/bob": 0.8,
            "http://example.org/carol": 0.5,
        }

    def test_ratings_of_view(self, tiny_dataset):
        alice = "http://example.org/alice"
        assert tiny_dataset.ratings_of(alice) == {"isbn:1": 1.0, "isbn:2": 1.0}

    def test_raters_of_view(self, tiny_dataset):
        raters = tiny_dataset.raters_of("isbn:1")
        assert set(raters) == {
            "http://example.org/alice",
            "http://example.org/bob",
        }

    def test_validate_detects_unknown_trust_source(self):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="u:1"))
        dataset.add_trust(TrustStatement(source="ghost", target="u:1", value=0.5))
        with pytest.raises(ValueError, match="unknown agent"):
            dataset.validate()

    def test_validate_detects_unknown_product(self):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="u:1"))
        dataset.add_rating(Rating(agent="u:1", product="ghost"))
        with pytest.raises(ValueError, match="unknown product"):
            dataset.validate()

    def test_summary(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert summary["agents"] == 5
        assert summary["products"] == 5
        assert summary["trust_statements"] == 5
        assert summary["ratings"] == 8
        assert 0 < summary["trust_density"] < 1

    def test_summary_empty(self):
        summary = Dataset().summary()
        assert summary["trust_density"] == 0.0
        assert summary["rating_density"] == 0.0

    def test_restricted_to_agents(self, tiny_dataset):
        alice = "http://example.org/alice"
        bob = "http://example.org/bob"
        subset = tiny_dataset.restricted_to_agents([alice, bob])
        assert set(subset.agents) == {alice, bob}
        # carol edges dropped, alice->bob kept
        assert set(subset.trust) == {(alice, bob)}
        # products kept wholesale, carol's ratings dropped
        assert len(subset.products) == 5
        assert all(key[0] in {alice, bob} for key in subset.ratings)
        subset.validate()


class TestHelpers:
    def test_descriptor_index(self, tiny_dataset):
        index = descriptor_index(tiny_dataset.products)
        assert index["Algebra"] == {"isbn:1", "isbn:5"}
        assert index["Literature"] == {"isbn:4"}

    def test_top_rated_ordering(self):
        ratings = {"b": 0.5, "a": 1.0, "c": 0.5}
        assert top_rated(ratings) == [("a", 1.0), ("b", 0.5), ("c", 0.5)]

    def test_top_rated_limit(self):
        ratings = {"a": 1.0, "b": 0.9, "c": 0.8}
        assert top_rated(ratings, limit=2) == [("a", 1.0), ("b", 0.9)]
