"""Unit tests for the crawler's document store."""

from __future__ import annotations

import pytest

from repro.core.models import Agent
from repro.semweb.foaf import publish_agent
from repro.semweb.serializer import serialize_ntriples
from repro.web.storage import DocumentStore


def agent_body(name: str, trust=None, ratings=None) -> str:
    agent = Agent(uri=f"http://example.org/{name}", name=name.title())
    return serialize_ntriples(publish_agent(agent, trust or {}, ratings or {}))


class TestReplica:
    def test_put_and_get(self):
        store = DocumentStore()
        store.put("u:1", "body", version=1, fetched_at=1)
        document = store.get("u:1")
        assert document is not None
        assert document.body == "body"
        assert store.kind("u:1") == "agent"

    def test_get_missing(self):
        assert DocumentStore().get("ghost") is None

    def test_put_refresh_overwrites(self):
        store = DocumentStore()
        store.put("u:1", "old", version=1, fetched_at=1)
        store.put("u:1", "new", version=2, fetched_at=2)
        assert store.get("u:1").body == "new"
        assert len(store) == 1

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            DocumentStore().put("u:1", "x", version=1, fetched_at=1, kind="bogus")

    def test_uris_filtered_by_kind(self):
        store = DocumentStore()
        store.put("u:a", "x", version=1, fetched_at=1, kind="agent")
        store.put("u:t", "x", version=1, fetched_at=1, kind="taxonomy")
        assert list(store.uris(kind="taxonomy")) == ["u:t"]
        assert set(store.uris()) == {"u:a", "u:t"}

    def test_staleness(self):
        store = DocumentStore()
        store.put("u:1", "x", version=2, fetched_at=1)
        assert store.staleness("u:1", live_version=2) == 0
        assert store.staleness("u:1", live_version=5) == 3
        assert store.staleness("ghost", live_version=4) == 4


class TestAssembly:
    def test_assemble_agents(self):
        store = DocumentStore()
        store.put(
            "http://example.org/alice",
            agent_body("alice", trust={"http://example.org/bob": 0.8}),
            version=1,
            fetched_at=1,
        )
        store.put("http://example.org/bob", agent_body("bob"), version=1, fetched_at=1)
        dataset, failures = store.assemble_dataset()
        assert failures == []
        assert len(dataset.agents) == 2
        assert dataset.trust_of("http://example.org/alice") == {
            "http://example.org/bob": 0.8
        }

    def test_broken_document_reported_not_fatal(self):
        store = DocumentStore()
        store.put("http://example.org/alice", agent_body("alice"), 1, 1)
        store.put("http://example.org/broken", "!!! not ntriples", 1, 1)
        dataset, failures = store.assemble_dataset()
        assert failures == ["http://example.org/broken"]
        assert len(dataset.agents) == 1

    def test_assemble_taxonomy(self, figure1):
        from repro.semweb.foaf import publish_taxonomy

        store = DocumentStore()
        store.put(
            "u:tax",
            serialize_ntriples(publish_taxonomy(figure1)),
            version=1,
            fetched_at=1,
            kind="taxonomy",
        )
        rebuilt = store.assemble_taxonomy()
        assert rebuilt is not None
        assert set(rebuilt) == set(figure1)

    def test_assemble_taxonomy_missing(self):
        assert DocumentStore().assemble_taxonomy() is None

    def test_assemble_catalog(self, tiny_dataset):
        from repro.semweb.foaf import publish_catalog

        store = DocumentStore()
        store.put(
            "u:cat",
            serialize_ntriples(publish_catalog(tiny_dataset.products)),
            version=1,
            fetched_at=1,
            kind="catalog",
        )
        dataset, failures = store.assemble_dataset()
        assert failures == []
        assert dataset.products == tiny_dataset.products


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = DocumentStore()
        store.put("u:a", "body a", version=3, fetched_at=7, kind="agent")
        store.put("u:t", "body t", version=1, fetched_at=2, kind="taxonomy")
        path = tmp_path / "replica.jsonl"
        store.save(path)
        loaded = DocumentStore.load(path)
        assert len(loaded) == 2
        assert loaded.get("u:a").version == 3
        assert loaded.get("u:a").fetched_at == 7
        assert loaded.kind("u:t") == "taxonomy"

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "replica.jsonl"
        path.write_text(
            '{"uri": "u:1", "body": "x", "version": 1, "fetched_at": 1, "kind": "agent"}\n\n'
        )
        loaded = DocumentStore.load(path)
        assert len(loaded) == 1


class TestLoadHardening:
    GOOD = '{"uri": "u:%d", "body": "x", "version": 1, "fetched_at": 1, "kind": "agent"}'

    def test_corrupt_lines_skipped_and_reported(self, tmp_path):
        path = tmp_path / "replica.jsonl"
        path.write_text(
            "\n".join(
                [
                    self.GOOD % 1,
                    "{this is not json",
                    '{"body": "missing uri field"}',
                    self.GOOD % 2,
                    '{"uri": "u:3", "body": "x", "version": "not-an-int", '
                    '"fetched_at": 1, "kind": "agent"}',
                ]
            )
            + "\n"
        )
        loaded = DocumentStore.load(path)
        assert sorted(loaded.uris()) == ["u:1", "u:2"]
        assert [line for line, _ in loaded.load_errors] == [2, 3, 5]

    def test_strict_load_raises_on_first_corrupt_line(self, tmp_path):
        path = tmp_path / "replica.jsonl"
        path.write_text(self.GOOD % 1 + "\n{broken\n")
        with pytest.raises(ValueError):
            DocumentStore.load(path, strict=True)

    def test_clean_load_reports_no_errors(self, tmp_path):
        path = tmp_path / "replica.jsonl"
        path.write_text(self.GOOD % 1 + "\n")
        assert DocumentStore.load(path).load_errors == []


class TestDegradationBookkeeping:
    def test_degraded_flag_round_trips_through_jsonl(self, tmp_path):
        store = DocumentStore()
        store.put("u:a", "body", version=1, fetched_at=1, kind="agent")
        store.mark_degraded("u:a")
        path = tmp_path / "replica.jsonl"
        store.save(path)
        loaded = DocumentStore.load(path)
        assert loaded.get("u:a").degraded
        assert list(loaded.degraded_uris()) == ["u:a"]

    def test_fresh_put_clears_degraded(self):
        store = DocumentStore()
        store.put("u:a", "old", version=1, fetched_at=1, kind="agent")
        store.mark_degraded("u:a")
        store.put("u:a", "new", version=2, fetched_at=2, kind="agent")
        assert not store.get("u:a").degraded
        assert list(store.degraded_uris()) == []

    def test_quarantine_leaves_replica_untouched(self):
        store = DocumentStore()
        store.put("u:a", "good", version=1, fetched_at=1, kind="agent")
        store.quarantine("u:a", "corrupt bytes")
        assert store.get("u:a").body == "good"
        assert list(store.quarantined_uris()) == ["u:a"]

    def test_coverage_summary_counts(self):
        store = DocumentStore()
        store.put("u:a", "x", version=1, fetched_at=1, kind="agent")
        store.put("u:b", "y", version=1, fetched_at=1, kind="agent")
        store.mark_degraded("u:b")
        store.quarantine("u:a", "junk")
        assert store.coverage_summary() == {
            "documents": 2,
            "degraded": 1,
            "quarantined": 1,
        }
