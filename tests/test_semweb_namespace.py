"""Unit tests for namespace helpers."""

from __future__ import annotations

import pytest

from repro.semweb.namespace import FOAF, RDF, RDFS, REPRO, TRUST, Namespace
from repro.semweb.rdf import URIRef


class TestNamespace:
    def test_attribute_access_mints_uriref(self):
        ns = Namespace("http://example.org/ns#")
        term = ns.thing
        assert isinstance(term, URIRef)
        assert term == "http://example.org/ns#thing"

    def test_item_access(self):
        ns = Namespace("http://example.org/ns#")
        assert ns["other"] == "http://example.org/ns#other"

    def test_term_method(self):
        ns = Namespace("http://example.org/ns#")
        # 'title' shadows str.title; term() avoids the collision.
        assert ns.term("title") == "http://example.org/ns#title"

    def test_dunder_access_raises(self):
        ns = Namespace("http://example.org/ns#")
        with pytest.raises(AttributeError):
            ns.__wrapped__


class TestVocabularies:
    def test_rdf_type(self):
        assert RDF.type == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

    def test_rdfs_subclassof(self):
        assert RDFS.subClassOf.endswith("rdf-schema#subClassOf")

    def test_foaf_terms(self):
        assert FOAF.knows == "http://xmlns.com/foaf/0.1/knows"
        assert FOAF.Person == "http://xmlns.com/foaf/0.1/Person"

    def test_project_namespaces_distinct(self):
        assert TRUST != REPRO
        assert TRUST.value != REPRO.value
