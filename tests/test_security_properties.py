"""Security properties of the decentralized document architecture (§2).

§2: "Spoofing and identity forging become facile to achieve."  The
architecture's defense is *document anchoring*: trust statements are
only believed when they appear in the truster's own homepage, fetched
from the truster's own URI.  A malicious publisher can write any triples
into its *own* document, but cannot make the system attribute a trust
statement (or rating) to someone else.  These tests pin that property.
"""

from __future__ import annotations

import pytest

from repro.core.models import Agent
from repro.semweb.foaf import parse_agent_homepage, publish_agent
from repro.semweb.namespace import FOAF, RDF, TRUST
from repro.semweb.rdf import BNode, Literal, URIRef
from repro.semweb.serializer import parse_ntriples, serialize_ntriples
from repro.web.crawler import Crawler
from repro.web.network import SimulatedWeb

ALICE = "http://example.org/alice"
MALLORY = "http://example.org/mallory"


def _forged_homepage() -> str:
    """Mallory's homepage containing forged 'alice trusts mallory' triples."""
    graph = publish_agent(
        Agent(uri=MALLORY, name="Mallory"),
        trust={},
        ratings={},
    )
    statement = BNode("forged")
    graph.add((URIRef(ALICE), TRUST.trusts, statement))
    graph.add((statement, TRUST.target, URIRef(MALLORY)))
    graph.add((statement, TRUST.value, Literal(1.0)))
    # Forged rating attribution too.
    rating = BNode("forgedrating")
    from repro.semweb.namespace import REPRO

    graph.add((URIRef(ALICE), REPRO.rates, rating))
    graph.add((rating, REPRO.product, URIRef("isbn:evil")))
    graph.add((rating, REPRO.value, Literal(1.0)))
    return serialize_ntriples(graph)


class TestForgedStatementsIgnored:
    def test_parser_attributes_nothing_to_third_parties(self):
        """Statements with a non-principal subject never become data."""
        agent, trust, ratings = parse_agent_homepage(
            parse_ntriples(_forged_homepage())
        )
        assert agent.uri == MALLORY
        # The forged alice->mallory statement is NOT returned: statements
        # are read from the document principal only.
        assert all(s.source == MALLORY for s in trust)
        assert trust == []
        assert all(r.agent == MALLORY for r in ratings)
        assert ratings == []

    def test_impersonation_by_typing_victim_rejected(self):
        """Typing the victim as foaf:Person makes the document ambiguous
        and the parser rejects it outright."""
        graph = parse_ntriples(_forged_homepage())
        graph.add((URIRef(ALICE), RDF.type, FOAF.Person))
        with pytest.raises(ValueError, match="exactly one foaf:Person"):
            parse_agent_homepage(graph)

    def test_crawler_assembly_unaffected_by_forgery(self):
        """End to end: alice's real (empty-trust) homepage wins; mallory's
        forged triples never reach the assembled dataset."""
        web = SimulatedWeb()
        alice_graph = publish_agent(Agent(uri=ALICE, name="Alice"), {}, {})
        web.publish(ALICE, serialize_ntriples(alice_graph))
        web.publish(MALLORY, _forged_homepage())

        crawler = Crawler(web=web)
        crawler.crawl([ALICE, MALLORY])
        dataset, failures = crawler.store.assemble_dataset()
        assert failures == []
        assert dataset.trust_of(ALICE) == {}
        assert dataset.ratings_of(ALICE) == {}

    def test_self_serving_statements_remain_self_attributed(self):
        """Mallory CAN say anything about its own trust — that is allowed
        and correctly attributed (subjective statements are by design)."""
        graph = publish_agent(
            Agent(uri=MALLORY, name="Mallory"),
            trust={ALICE: 1.0},
            ratings={"isbn:evil": 1.0},
        )
        _, trust, ratings = parse_agent_homepage(graph)
        assert [(s.source, s.target) for s in trust] == [(MALLORY, ALICE)]
        assert [(r.agent, r.product) for r in ratings] == [(MALLORY, "isbn:evil")]

    def test_forged_incoming_trust_gives_no_appleseed_rank(self):
        """Even if mallory's document is crawled, mallory earns rank only
        through *outgoing* edges of honest documents, which do not exist."""
        from repro.trust.appleseed import Appleseed
        from repro.trust.graph import TrustGraph

        web = SimulatedWeb()
        bob = "http://example.org/bob"
        web.publish(
            ALICE,
            serialize_ntriples(
                publish_agent(Agent(uri=ALICE, name="Alice"), {bob: 0.9}, {})
            ),
        )
        web.publish(
            bob,
            serialize_ntriples(publish_agent(Agent(uri=bob, name="Bob"), {}, {})),
        )
        web.publish(MALLORY, _forged_homepage())
        crawler = Crawler(web=web)
        crawler.crawl([ALICE, MALLORY])
        dataset, _ = crawler.store.assemble_dataset()
        graph = TrustGraph.from_dataset(dataset)
        result = Appleseed().compute(graph, ALICE)
        assert result.ranks.get(MALLORY, 0.0) == 0.0
        assert result.ranks.get(bob, 0.0) > 0.0
