"""Cross-module integration tests: the full decentralized loop.

Scenario mirrors §4: a community publishes FOAF homepages plus the global
taxonomy/catalog documents, a crawler replicates them locally, the
recommender computes from the partial replica, updates propagate
asynchronously, and attacks are repelled by the trust layer.
"""

from __future__ import annotations

import pytest

from repro.core.models import Rating
from repro.core.neighborhood import NeighborhoodFormation
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import (
    ProfileStore,
    PureCFRecommender,
    SemanticWebRecommender,
)
from repro.datasets.io import load_dataset, save_dataset
from repro.evaluation.attacks import inject_profile_copy_attack
from repro.trust.graph import TrustGraph
from repro.web.crawler import Crawler, publish_community
from repro.web.network import SimulatedWeb


@pytest.fixture(scope="module")
def world(small_community):
    web = SimulatedWeb()
    taxonomy_uri, catalog_uri = publish_community(
        web, small_community.dataset, small_community.taxonomy
    )
    return web, taxonomy_uri, catalog_uri, small_community


class TestDecentralizedLoop:
    def test_crawl_covers_trust_component(self, world):
        web, taxonomy_uri, catalog_uri, community = world
        crawler = Crawler(web=web)
        crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        seed = sorted(community.dataset.agents)[0]
        report = crawler.crawl([seed])
        graph = TrustGraph.from_dataset(community.dataset)
        reachable = graph.reachable_from(seed)
        assert report.fetched == len(reachable)

    def test_partial_replica_recommends(self, world):
        web, taxonomy_uri, catalog_uri, community = world
        crawler = Crawler(web=web)
        crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        seed = sorted(community.dataset.agents)[0]
        crawler.crawl([seed])
        partial, failures = crawler.store.assemble_dataset()
        assert not failures
        taxonomy = crawler.store.assemble_taxonomy()
        recommender = SemanticWebRecommender.from_dataset(partial, taxonomy)
        recs = recommender.recommend(seed, limit=10)
        assert recs

    def test_replica_equals_source_data(self, world):
        """Crawled trust/ratings agree exactly with the published truth."""
        web, taxonomy_uri, catalog_uri, community = world
        crawler = Crawler(web=web)
        crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        seed = sorted(community.dataset.agents)[0]
        crawler.crawl([seed])
        partial, _ = crawler.store.assemble_dataset()
        for agent in partial.agents:
            assert partial.trust_of(agent) == community.dataset.trust_of(agent)
            assert partial.ratings_of(agent) == community.dataset.ratings_of(agent)

    def test_asynchronous_update_visible_after_refresh(self, world):
        web, taxonomy_uri, catalog_uri, community = world
        crawler = Crawler(web=web)
        crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        seed = sorted(community.dataset.agents)[0]
        crawler.crawl([seed])

        # The seed agent rates one more product and republishes.
        from repro.semweb.foaf import publish_agent
        from repro.semweb.serializer import serialize_ntriples

        new_product = sorted(community.dataset.products)[0]
        ratings = dict(community.dataset.ratings_of(seed))
        ratings[new_product] = 1.0
        body = serialize_ntriples(
            publish_agent(
                community.dataset.agents[seed],
                community.dataset.trust_of(seed),
                ratings,
            )
        )
        web.stage_update(seed, body)
        web.deliver()

        crawler.refresh()
        partial, _ = crawler.store.assemble_dataset()
        assert new_product in partial.ratings_of(seed)


class TestDatasetPersistenceIntegration:
    def test_save_load_preserves_recommendations(self, small_community, tmp_path):
        dataset = small_community.dataset
        taxonomy = small_community.taxonomy
        path = tmp_path / "snapshot.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        agent = sorted(dataset.agents)[5]
        original = SemanticWebRecommender.from_dataset(dataset, taxonomy)
        restored = SemanticWebRecommender.from_dataset(loaded, taxonomy)
        assert original.recommend(agent, 10) == restored.recommend(agent, 10)


class TestAttackIntegration:
    def test_profile_copy_attack_blocked_by_trust(self, small_community):
        dataset = small_community.dataset
        taxonomy = small_community.taxonomy
        victim = max(
            sorted(dataset.agents),
            key=lambda a: len(dataset.ratings_of(a)),
        )
        attack = inject_profile_copy_attack(
            dataset, victim=victim, n_sybils=30, n_pushed=3, seed=9
        )
        train = attack.dataset
        store = ProfileStore(train, TaxonomyProfileBuilder(taxonomy))

        trusted = SemanticWebRecommender(
            dataset=train,
            graph=TrustGraph.from_dataset(train),
            profiles=store,
            formation=NeighborhoodFormation(),
        )
        blind = PureCFRecommender(dataset=train, profiles=store)

        trusted_recs = {r.product for r in trusted.recommend(victim, 10)}
        blind_recs = {r.product for r in blind.recommend(victim, 10)}
        assert not trusted_recs & attack.pushed_products
        assert blind_recs & attack.pushed_products

    def test_sybils_dominate_blind_neighborhood(self, small_community):
        """Sanity check of the attack mechanics: without trust filtering,
        the most similar peers are the sybil copies themselves."""
        dataset = small_community.dataset
        taxonomy = small_community.taxonomy
        victim = max(
            sorted(dataset.agents), key=lambda a: len(dataset.ratings_of(a))
        )
        attack = inject_profile_copy_attack(
            dataset, victim=victim, n_sybils=30, n_pushed=3, seed=9
        )
        store = ProfileStore(attack.dataset, TaxonomyProfileBuilder(taxonomy))
        blind = PureCFRecommender(dataset=attack.dataset, profiles=store)
        weights = blind.peer_weights(victim)
        sybil_share = len(set(weights) & attack.sybils) / len(weights)
        assert sybil_share > 0.5
