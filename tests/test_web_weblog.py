"""Unit tests for weblog mining (§4)."""

from __future__ import annotations

import pytest

from repro.core.models import Agent, Dataset, Product, Rating
from repro.web.network import SimulatedWeb
from repro.web.weblog import (
    LinkMiner,
    WeblogPost,
    product_page_url,
    publish_weblogs,
    render_weblog,
    weblog_uri,
)


class TestRendering:
    def test_links_embedded(self):
        post = WeblogPost(
            title="Books",
            links=("https://www.amazon.com/dp/9780000000001",),
        )
        html = render_weblog("Alice", [post])
        assert '<a href="https://www.amazon.com/dp/9780000000001">' in html
        assert "<h2>Books</h2>" in html

    def test_explicit_annotations_embedded(self):
        post = WeblogPost(title="Rated", explicit={"isbn:123": -0.5})
        html = render_weblog("Alice", [post])
        assert 'data-isbn="isbn:123"' in html
        assert 'data-value="-0.5"' in html

    def test_product_page_url_roundtrips(self):
        miner = LinkMiner()
        url = product_page_url("isbn:9780000000042")
        assert miner.map_to_identifier(url) == "isbn:9780000000042"


class TestLinkMiner:
    def test_extract_links(self):
        html = '<p><a href="http://x.org/a">a</a> and <a href="http://y.org/b">b</a></p>'
        assert LinkMiner().extract_links(html) == ["http://x.org/a", "http://y.org/b"]

    @pytest.mark.parametrize(
        "url",
        [
            "https://www.amazon.com/dp/9780000000001",
            "http://www.amazon.com/exec/obidos/ASIN/9780000000001",
            "https://shop.example.org/book/9780000000001",
        ],
    )
    def test_recognized_shop_urls(self, url):
        assert LinkMiner().map_to_identifier(url) == "isbn:9780000000001"

    @pytest.mark.parametrize(
        "url",
        [
            "https://www.amazon.com/gp/help",
            "http://blog.example.org/post/1",
            "https://www.amazon.com/dp/notanisbn",
        ],
    )
    def test_unrecognized_urls(self, url):
        assert LinkMiner().map_to_identifier(url) is None

    def test_mine_implicit_votes(self):
        html = render_weblog(
            "A",
            [WeblogPost(title="t", links=(product_page_url("isbn:9780000000007"),))],
        )
        ratings = LinkMiner().mine("agent:a", html)
        assert ratings == [Rating(agent="agent:a", product="isbn:9780000000007", value=1.0)]

    def test_duplicate_links_collapse(self):
        url = product_page_url("isbn:9780000000007")
        html = render_weblog("A", [WeblogPost(title="t", links=(url, url, url))])
        assert len(LinkMiner().mine("agent:a", html)) == 1

    def test_explicit_overrides_implicit(self):
        identifier = "isbn:9780000000007"
        html = render_weblog(
            "A",
            [
                WeblogPost(
                    title="t",
                    links=(product_page_url(identifier),),
                    explicit={identifier: 0.25},
                )
            ],
        )
        ratings = LinkMiner().mine("agent:a", html)
        assert ratings[0].value == 0.25

    def test_out_of_range_explicit_skipped(self):
        html = '<span class="blam-rating" data-isbn="isbn:1" data-value="3.5"></span>'
        assert LinkMiner().mine("agent:a", html) == []

    def test_negative_out_of_range_explicit_skipped(self):
        html = '<span class="blam-rating" data-isbn="isbn:1" data-value="-2.0"></span>'
        assert LinkMiner().mine("agent:a", html) == []

    def test_nan_explicit_never_mined(self):
        # The annotation regex only matches decimal literals, and the
        # shared validate_score gate rejects NaN besides — either way a
        # "nan" value must not become a rating.
        html = '<span class="blam-rating" data-isbn="isbn:1" data-value="nan"></span>'
        assert LinkMiner().mine("agent:a", html) == []

    def test_boundary_explicit_values_kept(self):
        html = (
            '<span class="blam-rating" data-isbn="isbn:1" data-value="-1.0"></span>'
            '<span class="blam-rating" data-isbn="isbn:2" data-value="1.0"></span>'
        )
        mined = LinkMiner().mine("agent:a", html)
        assert [(r.product, r.value) for r in mined] == [
            ("isbn:1", -1.0),
            ("isbn:2", 1.0),
        ]

    def test_unknown_products_recorded_unmapped(self):
        miner = LinkMiner(known_products=frozenset({"isbn:known"}))
        html = render_weblog(
            "A",
            [WeblogPost(title="t", links=(product_page_url("isbn:9780000000099"),))],
        )
        assert miner.mine("agent:a", html) == []
        assert miner.unmapped == ["isbn:9780000000099"]

    def test_mine_empty_document(self):
        assert LinkMiner().mine("agent:a", "") == []


class TestPublishWeblogs:
    def _dataset(self) -> Dataset:
        dataset = Dataset()
        dataset.add_agent(Agent(uri="http://example.org/alice", name="Alice"))
        for i in range(4):
            identifier = f"isbn:978000000000{i}"
            dataset.add_product(Product(identifier=identifier, title=f"B{i}"))
            dataset.add_rating(
                Rating(agent="http://example.org/alice", product=identifier)
            )
        # One explicit (non-unit) rating.
        dataset.add_product(Product(identifier="isbn:9780000000009"))
        dataset.add_rating(
            Rating(
                agent="http://example.org/alice",
                product="isbn:9780000000009",
                value=0.5,
            )
        )
        return dataset

    def test_roundtrip_through_web(self):
        dataset = self._dataset()
        web = SimulatedWeb()
        uris = publish_weblogs(web, dataset)
        assert uris == [weblog_uri("http://example.org/alice")]
        miner = LinkMiner(known_products=frozenset(dataset.products))
        document = web.fetch(uris[0]).body
        mined = miner.mine("http://example.org/alice", document)
        assert {(r.product, r.value) for r in mined} == {
            (p, v)
            for p, v in dataset.ratings_of("http://example.org/alice").items()
        }

    def test_agent_without_ratings_gets_placeholder(self):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="http://example.org/bob"))
        web = SimulatedWeb()
        uris = publish_weblogs(web, dataset)
        body = web.fetch(uris[0]).body
        assert "Hello world" in body
        assert LinkMiner().mine("http://example.org/bob", body) == []

    def test_community_roundtrip(self, small_community):
        dataset = small_community.dataset
        web = SimulatedWeb()
        publish_weblogs(web, dataset)
        miner = LinkMiner(known_products=frozenset(dataset.products))
        for agent_uri in sorted(dataset.agents)[:20]:
            document = web.fetch(weblog_uri(agent_uri)).body
            mined = miner.mine(agent_uri, document)
            assert {(r.product, r.value) for r in mined} == {
                (p, v) for p, v in dataset.ratings_of(agent_uri).items()
            }
        assert miner.unmapped == []
