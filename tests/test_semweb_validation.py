"""Unit tests for homepage shape validation."""

from __future__ import annotations

from repro.core.models import Agent
from repro.semweb.foaf import publish_agent
from repro.semweb.namespace import FOAF, RDF, REPRO, TRUST
from repro.semweb.rdf import BNode, Graph, Literal, URIRef
from repro.semweb.validation import validate_homepage

ALICE = "http://example.org/alice"
BOB = "http://example.org/bob"


def clean_homepage() -> Graph:
    return publish_agent(
        Agent(uri=ALICE, name="Alice"), {BOB: 0.8}, {"isbn:1": 1.0}
    )


def codes(graph: Graph) -> list[str]:
    return [issue.code for issue in validate_homepage(graph)]


class TestCleanDocument:
    def test_no_issues(self):
        assert codes(clean_homepage()) == []


class TestPrincipalIssues:
    def test_no_person(self):
        assert codes(Graph()) == ["no-person"]

    def test_multiple_persons(self):
        graph = clean_homepage()
        graph.add((URIRef(BOB), RDF.type, FOAF.Person))
        assert codes(graph) == ["multiple-persons"]

    def test_missing_name(self):
        graph = publish_agent(Agent(uri=ALICE), {}, {})
        assert "missing-name" in codes(graph)


class TestTrustIssues:
    def test_missing_target(self):
        graph = clean_homepage()
        dangling = BNode("dangling")
        graph.add((URIRef(ALICE), TRUST.trusts, dangling))
        graph.add((dangling, TRUST.value, Literal(0.5)))
        assert "trust-missing-target" in codes(graph)

    def test_missing_value(self):
        graph = clean_homepage()
        dangling = BNode("dangling")
        graph.add((URIRef(ALICE), TRUST.trusts, dangling))
        graph.add((dangling, TRUST.target, URIRef(BOB)))
        assert "trust-missing-value" in codes(graph)

    def test_out_of_range(self):
        graph = clean_homepage()
        bad = BNode("bad")
        graph.add((URIRef(ALICE), TRUST.trusts, bad))
        graph.add((bad, TRUST.target, URIRef(BOB)))
        graph.add((bad, TRUST.value, Literal(5.0)))
        assert "trust-out-of-range" in codes(graph)

    def test_non_numeric(self):
        graph = clean_homepage()
        bad = BNode("bad")
        graph.add((URIRef(ALICE), TRUST.trusts, bad))
        graph.add((bad, TRUST.target, URIRef(BOB)))
        graph.add((bad, TRUST.value, Literal("very much")))
        assert "trust-non-numeric" in codes(graph)

    def test_self_trust(self):
        graph = clean_homepage()
        loop = BNode("loop")
        graph.add((URIRef(ALICE), TRUST.trusts, loop))
        graph.add((loop, TRUST.target, URIRef(ALICE)))
        graph.add((loop, TRUST.value, Literal(1.0)))
        assert "trust-self" in codes(graph)


class TestRatingIssues:
    def test_missing_product(self):
        graph = clean_homepage()
        dangling = BNode("norating")
        graph.add((URIRef(ALICE), REPRO.rates, dangling))
        graph.add((dangling, REPRO.value, Literal(1.0)))
        assert "rating-missing-product" in codes(graph)

    def test_missing_value(self):
        graph = clean_homepage()
        dangling = BNode("noval")
        graph.add((URIRef(ALICE), REPRO.rates, dangling))
        graph.add((dangling, REPRO.product, URIRef("isbn:2")))
        assert "rating-missing-value" in codes(graph)

    def test_out_of_range(self):
        graph = clean_homepage()
        bad = BNode("badr")
        graph.add((URIRef(ALICE), REPRO.rates, bad))
        graph.add((bad, REPRO.product, URIRef("isbn:2")))
        graph.add((bad, REPRO.value, Literal(-2.0)))
        assert "rating-out-of-range" in codes(graph)


class TestForgeryDetection:
    def test_foreign_subject_statements_flagged(self):
        graph = clean_homepage()
        forged = BNode("forged")
        graph.add((URIRef(BOB), TRUST.trusts, forged))
        graph.add((forged, TRUST.target, URIRef(ALICE)))
        graph.add((forged, TRUST.value, Literal(1.0)))
        found = codes(graph)
        assert "foreign-subject-statements" in found

    def test_issue_str(self):
        graph = Graph()
        issue = validate_homepage(graph)[0]
        assert str(issue).startswith("no-person:")
