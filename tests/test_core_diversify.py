"""Unit tests for topic diversification."""

from __future__ import annotations

import pytest

from repro.core.diversify import (
    TopicDiversifier,
    intra_list_similarity,
    product_topic_profile,
)
from repro.core.similarity import isclose
from repro.core.models import Product
from repro.core.recommender import Recommendation
from repro.core.taxonomy import figure1_fragment


def _products() -> dict[str, Product]:
    return {
        "alg1": Product(identifier="alg1", descriptors=frozenset({"Algebra"})),
        "alg2": Product(identifier="alg2", descriptors=frozenset({"Calculus"})),
        "alg3": Product(identifier="alg3", descriptors=frozenset({"Algebra"})),
        "phys": Product(identifier="phys", descriptors=frozenset({"Physics"})),
        "lit": Product(identifier="lit", descriptors=frozenset({"Literature"})),
        "bare": Product(identifier="bare"),
    }


def _recs(*identifiers: str) -> list[Recommendation]:
    # Descending scores encode the accuracy order.
    return [
        Recommendation(product=identifier, score=float(len(identifiers) - i))
        for i, identifier in enumerate(identifiers)
    ]


class TestProductTopicProfile:
    def test_unit_mass_per_descriptor(self, figure1):
        profile = product_topic_profile(figure1, _products()["alg1"])
        assert sum(profile.values()) == pytest.approx(1.0)
        assert set(profile) == set(figure1.path_to_root("Algebra"))

    def test_descriptorless_product_empty(self, figure1):
        assert product_topic_profile(figure1, _products()["bare"]) == {}

    def test_unknown_descriptors_skipped(self, figure1):
        product = Product(identifier="x", descriptors=frozenset({"NotThere"}))
        assert product_topic_profile(figure1, product) == {}


class TestIntraListSimilarity:
    def test_short_lists(self):
        assert isclose(intra_list_similarity([], {}), 0.0)
        assert isclose(intra_list_similarity(["a"], {"a": {"t": 1.0}}), 0.0)

    def test_identical_items_max(self, figure1):
        profiles = {
            "a": product_topic_profile(figure1, _products()["alg1"]),
            "b": product_topic_profile(figure1, _products()["alg3"]),
        }
        assert intra_list_similarity(["a", "b"], profiles) == pytest.approx(1.0)

    def test_related_more_similar_than_unrelated(self, figure1):
        products = _products()
        profiles = {
            k: product_topic_profile(figure1, v) for k, v in products.items()
        }
        siblings = intra_list_similarity(["alg1", "alg2"], profiles)
        unrelated = intra_list_similarity(["alg1", "lit"], profiles)
        assert siblings > unrelated


class TestTopicDiversifier:
    def test_invalid_theta(self, figure1):
        with pytest.raises(ValueError):
            TopicDiversifier(figure1, _products(), theta=1.5)

    def test_theta_zero_preserves_order(self, figure1):
        diversifier = TopicDiversifier(figure1, _products(), theta=0.0)
        candidates = _recs("alg1", "alg3", "phys", "lit")
        reranked = diversifier.rerank(candidates, limit=3)
        assert [r.product for r in reranked] == ["alg1", "alg3", "phys"]

    def test_high_theta_diversifies(self, figure1):
        diversifier = TopicDiversifier(figure1, _products(), theta=1.0)
        candidates = _recs("alg1", "alg3", "alg2", "lit", "phys")
        reranked = diversifier.rerank(candidates, limit=3)
        picks = [r.product for r in reranked]
        assert picks[0] == "alg1"  # top item always kept
        # The next pick must not be the near-duplicate alg3.
        assert picks[1] in {"lit", "phys"}

    def test_diversification_lowers_ils(self, figure1):
        products = _products()
        candidates = _recs("alg1", "alg3", "alg2", "phys", "lit")
        plain = TopicDiversifier(figure1, products, theta=0.0)
        diverse = TopicDiversifier(figure1, products, theta=0.9)
        assert diverse.ils(diverse.rerank(list(candidates), 3)) < plain.ils(
            plain.rerank(list(candidates), 3)
        )

    def test_empty_candidates(self, figure1):
        diversifier = TopicDiversifier(figure1, _products())
        assert diversifier.rerank([], limit=5) == []

    def test_limit_respected(self, figure1):
        diversifier = TopicDiversifier(figure1, _products())
        reranked = diversifier.rerank(_recs("alg1", "alg2", "phys"), limit=2)
        assert len(reranked) == 2

    def test_invalid_limit(self, figure1):
        diversifier = TopicDiversifier(figure1, _products())
        with pytest.raises(ValueError):
            diversifier.rerank(_recs("alg1"), limit=0)

    def test_rerank_is_permutation_subset(self, figure1):
        diversifier = TopicDiversifier(figure1, _products(), theta=0.6)
        candidates = _recs("alg1", "alg3", "alg2", "phys", "lit", "bare")
        reranked = diversifier.rerank(list(candidates), limit=4)
        assert len(reranked) == 4
        assert len({r.product for r in reranked}) == 4
        assert {r.product for r in reranked} <= {c.product for c in candidates}

    def test_deterministic(self, figure1):
        diversifier = TopicDiversifier(figure1, _products(), theta=0.5)
        candidates = _recs("alg1", "alg3", "alg2", "phys", "lit")
        first = diversifier.rerank(list(candidates), limit=4)
        second = diversifier.rerank(list(candidates), limit=4)
        assert first == second


class TestDiversifierInvalidate:
    def test_invalidate_drops_profile_cache(self, figure1):
        diversifier = TopicDiversifier(taxonomy=figure1, products=_products())
        stale = diversifier.profile("alg1")
        assert diversifier.profile("alg1") is stale
        diversifier.invalidate()
        fresh = diversifier.profile("alg1")
        assert fresh is not stale
        assert fresh == stale  # same taxonomy, same content
