"""Tests for the effect-inference pass and rules RL200–RL203.

Fixture packages are throwaway mini-trees on disk (module names follow
the ``__init__.py`` chain, so a ``tmp/repro/core/...`` tree produces
real ``repro.core.*`` names — which is exactly what lets the default
cache registry and entry-point tables bind to fixture classes).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.effects import (
    DEFAULT_CACHE_REGISTRY,
    EFFECT_TABLE_SCHEMA,
    CacheCoherenceRule,
    CacheSpec,
    LayerPurityRule,
    PurityContractRule,
    SeededRandomnessRule,
    analyze_effects,
    effect_table,
    format_effect_table,
)
from repro.analysis.engine import lint_project
from repro.analysis.symbols import ProjectIndex

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_project(root: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return paths


def build_index(root: Path, files: dict[str, str]) -> ProjectIndex:
    return ProjectIndex.build(write_project(root, files))


def effects_of(index: ProjectIndex, qualname: str) -> frozenset[str]:
    return analyze_effects(index).effects()[qualname]


# ---------------------------------------------------------------------------
# Direct effect extraction.
# ---------------------------------------------------------------------------


class TestDirectEffects:
    def test_self_attribute_write(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": """
                    class Store:
                        def __init__(self):
                            self._cache = {}

                        def fill(self, key, value):
                            self._cache[key] = value

                        def drop(self):
                            self._cache.clear()

                        def rebind(self):
                            self._cache = {}
                """,
            },
        )
        assert effects_of(index, "pkg.m.Store.fill") == {
            "mutates:pkg.m.Store._cache"
        }
        assert effects_of(index, "pkg.m.Store.drop") == {
            "mutates:pkg.m.Store._cache"
        }
        assert effects_of(index, "pkg.m.Store.rebind") == {
            "mutates:pkg.m.Store._cache"
        }

    def test_nested_subscript_mutator(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/g.py": """
                    class Graph:
                        def __init__(self):
                            self._succ = {}

                        def remove(self, a, b):
                            self._succ[a].pop(b, None)

                        def deep_set(self, a, b, w):
                            self._succ[a][b] = w
                """,
            },
        )
        assert effects_of(index, "pkg.g.Graph.remove") == {
            "mutates:pkg.g.Graph._succ"
        }
        assert effects_of(index, "pkg.g.Graph.deep_set") == {
            "mutates:pkg.g.Graph._succ"
        }

    def test_typed_parameter_mutation(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": """
                    class Dataset:
                        def __init__(self):
                            self.ratings = {}

                    def ingest(dataset: Dataset, key, value):
                        dataset.ratings[key] = value

                    def ingest_optional(dataset: "Dataset | None", key):
                        if dataset is not None:
                            dataset.ratings[key] = 1
                """,
            },
        )
        atom = "mutates:pkg.m.Dataset.ratings"
        assert effects_of(index, "pkg.m.ingest") == {atom}
        # union / string annotations unwrap to the class
        assert effects_of(index, "pkg.m.ingest_optional") == {atom}

    def test_local_object_mutation_is_not_an_effect(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": """
                    class Box:
                        def __init__(self):
                            self.items = {}

                    def build():
                        box = Box()
                        box.items["k"] = 1
                        return box
                """,
            },
        )
        assert effects_of(index, "pkg.m.build") == frozenset()

    def test_global_effects(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    REGISTRY = {}
                    COUNT = 0

                    def register(key, value):
                        REGISTRY[key] = value

                    def bump():
                        global COUNT
                        COUNT += 1

                    def shadowed():
                        REGISTRY = {}
                        REGISTRY["k"] = 1
                """,
            },
        )
        assert effects_of(index, "m.register") == {"mutates:global"}
        assert effects_of(index, "m.bump") == {"mutates:global"}
        # a locally rebound name is not the module global
        assert effects_of(index, "m.shadowed") == frozenset()

    def test_external_effects(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    import os
                    import random
                    import time
                    from concurrent.futures import ProcessPoolExecutor

                    def draws():
                        return random.random()

                    def seeded():
                        return random.Random(42)

                    def unseeded():
                        return random.Random()

                    def clocky():
                        return time.perf_counter()

                    def reads():
                        return open("f").read()

                    def harmless():
                        return os.cpu_count()

                    def forks():
                        return ProcessPoolExecutor(2)
                """,
            },
        )
        assert effects_of(index, "m.draws") == {"rng"}
        assert effects_of(index, "m.seeded") == frozenset()
        assert effects_of(index, "m.unseeded") == {"rng"}
        assert effects_of(index, "m.clocky") == {"clock"}
        assert effects_of(index, "m.reads") == {"io"}
        assert effects_of(index, "m.harmless") == frozenset()
        assert effects_of(index, "m.forks") == {"spawns"}


# ---------------------------------------------------------------------------
# Propagation.
# ---------------------------------------------------------------------------


class TestPropagation:
    def test_effects_flow_through_calls(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    import random

                    def _jitter():
                        return random.random()

                    def outer():
                        return _jitter()

                    def outermost():
                        return outer()
                """,
            },
        )
        assert effects_of(index, "m.outer") == {"rng"}
        assert effects_of(index, "m.outermost") == {"rng"}

    def test_partial_and_dispatch_workers(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    import functools

                    def worker(x):
                        return open(x).read()

                    def via_partial(runner):
                        return runner(functools.partial(worker, "f"))

                    def via_map(pool):
                        return pool.map(worker, ["a", "b"])
                """,
            },
        )
        assert "io" in effects_of(index, "m.via_partial")
        via_map = effects_of(index, "m.via_map")
        assert "io" in via_map
        assert "spawns" in via_map

    def test_constructor_does_not_import_init_effects(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    class Store:
                        def __init__(self):
                            self._cache = {}

                    def fresh():
                        return Store()
                """,
            },
        )
        assert effects_of(index, "m.fresh") == frozenset()

    def test_local_receiver_masks_self_mutation_but_not_io(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    class Builder:
                        def __init__(self):
                            self.parts = []

                        def add(self, part):
                            self.parts.append(part)
                            print(part)

                    def assemble():
                        builder = Builder()
                        builder.add("x")
                        return builder

                    def mutate_shared(builder: Builder):
                        builder.add("y")
                """,
            },
        )
        # assemble builds fresh state: the self-mutation is invisible to
        # its callers, the io side effect is not.
        assert effects_of(index, "m.assemble") == {"io"}
        # the same method on a *parameter* mutates caller-visible state
        assert effects_of(index, "m.mutate_shared") == {
            "io",
            "mutates:m.Builder.parts",
        }

    def test_mutual_recursion_converges(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    def even(n):
                        if n == 0:
                            return True
                        print(n)
                        return odd(n - 1)

                    def odd(n):
                        if n == 0:
                            return False
                        return even(n - 1)
                """,
            },
        )
        assert effects_of(index, "m.even") == {"io"}
        assert effects_of(index, "m.odd") == {"io"}

    def test_nested_function_bodies_count(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "m.py": """
                    def outer(items):
                        def key(item):
                            return open(item).read()
                        return sorted(items, key=key)
                """,
            },
        )
        assert "io" in effects_of(index, "m.outer")


# ---------------------------------------------------------------------------
# The serialized table.
# ---------------------------------------------------------------------------


class TestEffectTable:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/m.py": """
            import threading
            import time

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}

                def fill(self, key):
                    self._cache[key] = time.perf_counter()

                def locked_fill(self, key, value):
                    with self._lock:
                        self._cache[key] = value

            def pure(x):
                return x + 1
        """,
    }

    def test_golden(self, tmp_path):
        table = effect_table(build_index(tmp_path, self.FILES))
        assert table["schema"] == EFFECT_TABLE_SCHEMA
        assert table["functions"] == {
            # __init__'s own writes are recorded; they simply never
            # propagate into constructors (fresh-object init is not a
            # caller-visible mutation)
            "pkg.m.Store.__init__": {
                "effects": [
                    "mutates:pkg.m.Store._cache",
                    "mutates:pkg.m.Store._lock",
                ],
                "guards": [],
            },
            "pkg.m.Store.fill": {
                "effects": ["clock", "mutates:pkg.m.Store._cache"],
                "guards": [],
            },
            "pkg.m.Store.locked_fill": {
                "effects": ["mutates:pkg.m.Store._cache"],
                "guards": ["guard:pkg.m.Store._lock"],
            },
            "pkg.m.pure": {"effects": [], "guards": []},
        }

    def test_serialization_is_deterministic(self, tmp_path):
        first = format_effect_table(build_index(tmp_path / "a", self.FILES))
        second = format_effect_table(build_index(tmp_path / "b", self.FILES))
        assert first == second
        assert json.loads(first)["schema"] == EFFECT_TABLE_SCHEMA

    def test_cli_effects_file(self, tmp_path):
        write_project(tmp_path / "proj", self.FILES)
        out = tmp_path / "effects.json"
        rc = main([str(tmp_path / "proj"), "--effects", str(out)])
        assert rc == 0
        table = json.loads(out.read_text(encoding="utf-8"))
        assert table["schema"] == EFFECT_TABLE_SCHEMA
        assert "pkg.m.Store.fill" in table["functions"]

    def test_cli_effects_stdout(self, tmp_path, capsys):
        write_project(tmp_path / "proj", self.FILES)
        rc = main([str(tmp_path / "proj"), "--effects", "-"])
        assert rc == 0
        payload = capsys.readouterr().out
        # the lint report follows the table on stdout
        table_text = payload[: payload.rfind("}") + 1]
        assert json.loads(table_text)["schema"] == EFFECT_TABLE_SCHEMA


# ---------------------------------------------------------------------------
# RL200 — cache coherence.
# ---------------------------------------------------------------------------

_RL200_BASE = {
    "repro/__init__.py": "",
    "repro/core/__init__.py": "",
    "repro/core/models.py": """
        class Dataset:
            def __init__(self):
                self.ratings = {}

            def add_rating(self, key, value):
                self.ratings[key] = value
    """,
    "repro/core/recommender.py": """
        class ProfileStore:
            def __init__(self):
                self._cache = {}
                self._matrix = None

            def invalidate(self):
                self._cache.clear()
                self._matrix = None
    """,
}


class TestCacheCoherenceRule:
    def run(self, tmp_path, files):
        index = build_index(tmp_path, {**_RL200_BASE, **files})
        return list(CacheCoherenceRule().check_project(index))

    def test_backing_mutation_without_invalidate_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/service.py": """
                    from .models import Dataset
                    from .recommender import ProfileStore

                    class Service:
                        def __init__(self, dataset: Dataset, store: ProfileStore):
                            self.dataset = dataset
                            self.store = store

                        def ingest(self, key, value):
                            self.dataset.add_rating(key, value)
                """,
            },
        )
        assert [f.code for f in findings] == ["RL200"]
        assert "ingest" in findings[0].message
        assert "_cache" in findings[0].message

    def test_coherent_ingest_is_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/service.py": """
                    from .models import Dataset
                    from .recommender import ProfileStore

                    class Service:
                        def __init__(self, dataset: Dataset, store: ProfileStore):
                            self.dataset = dataset
                            self.store = store

                        def ingest(self, key, value):
                            self.dataset.add_rating(key, value)
                            self.store.invalidate()
                """,
            },
        )
        assert findings == []

    def test_partial_invalidator_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/service.py": """
                    from .recommender import ProfileStore

                    class Service:
                        def __init__(self, store: ProfileStore):
                            self.store = store

                        def invalidate_cache(self):
                            self.store._matrix = None
                """,
            },
        )
        assert [f.code for f in findings] == ["RL200"]
        assert "part of the profile-caches" in findings[0].message

    def test_mutation_without_visible_owner_is_clean(self, tmp_path):
        # Dataset.add_rating itself has no cache owner in scope.
        findings = self.run(tmp_path, {})
        assert findings == []

    def test_suppression_comment_honored(self, tmp_path):
        paths = write_project(
            tmp_path,
            {
                **_RL200_BASE,
                "repro/core/service.py": """
                    from .models import Dataset
                    from .recommender import ProfileStore

                    class Service:
                        def __init__(self, dataset: Dataset, store: ProfileStore):
                            self.dataset = dataset
                            self.store = store

                        def ingest(self, key, value):  # reprolint: disable=RL200
                            self.dataset.add_rating(key, value)
                """,
            },
        )
        findings = lint_project(paths, select=["RL200"])
        assert findings == []

    def test_custom_registry(self, tmp_path):
        spec = CacheSpec(
            name="toy",
            backing=("pkg.m.Source.data",),
            caches=(("pkg.m.View", ("_snapshot",)),),
            invalidate_hint="View.refresh()",
        )
        index = build_index(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": """
                    class Source:
                        def __init__(self):
                            self.data = {}

                    class View:
                        def __init__(self, source: Source):
                            self.source = source
                            self._snapshot = {}

                        def poke(self, key):
                            self.source.data[key] = 1
                """,
            },
        )
        findings = list(CacheCoherenceRule(registry=(spec,)).check_project(index))
        assert [f.code for f in findings] == ["RL200"]
        assert "poke" in findings[0].message


# ---------------------------------------------------------------------------
# RL201 — purity contract.
# ---------------------------------------------------------------------------


class TestPurityContractRule:
    def run(self, tmp_path, files):
        index = build_index(tmp_path, {**_RL200_BASE, **files})
        return list(PurityContractRule().check_project(index))

    def test_mutating_entry_point_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/similarity.py": """
                    from .models import Dataset

                    def top_similar(dataset: Dataset, agent):
                        dataset.ratings[agent] = 1
                        return []
                """,
            },
        )
        assert [f.code for f in findings] == ["RL201"]
        assert "top_similar" in findings[0].message
        assert "Dataset.ratings" in findings[0].message

    def test_declared_cache_fill_is_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/similarity.py": """
                    from .recommender import ProfileStore

                    def top_similar(store: ProfileStore, agent):
                        store._cache[agent] = ()
                        return []
                """,
            },
        )
        assert findings == []

    def test_non_entry_point_not_covered(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/similarity.py": """
                    from .models import Dataset

                    def helper(dataset: Dataset, agent):
                        dataset.ratings[agent] = 1
                """,
            },
        )
        assert findings == []

    def test_obs_instrumentation_allowlisted(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/obs/__init__.py": "",
                "repro/obs/metrics.py": """
                    class Counter:
                        def __init__(self):
                            self.value = 0

                        def inc(self):
                            self.value += 1

                    COUNTER = Counter()

                    def bump():
                        COUNTER.inc()
                """,
                "repro/core/similarity.py": """
                    from ..obs.metrics import bump

                    def top_similar(profiles, agent):
                        bump()
                        return []
                """,
            },
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RL202 — interprocedural seeded randomness.
# ---------------------------------------------------------------------------


class TestSeededRandomnessRule:
    def run(self, tmp_path, files):
        index = build_index(
            tmp_path, {"repro/__init__.py": "", "repro/core/__init__.py": "", **files}
        )
        return list(SeededRandomnessRule().check_project(index))

    def test_hidden_rng_behind_helper_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/similarity.py": """
                    import random

                    def _tie_break():
                        return random.random()

                    def top_similar(profiles, agent):
                        return sorted(profiles, key=lambda _: _tie_break())
                """,
            },
        )
        assert [f.code for f in findings] == ["RL202"]
        # the witness path names the helper that actually draws
        assert "_tie_break" in findings[0].message

    def test_injected_generator_is_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/similarity.py": """
                    def top_similar(profiles, agent, rng):
                        return sorted(profiles, key=lambda _: rng.random())
                """,
            },
        )
        assert findings == []

    def test_experiment_entry_points_covered(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/evaluation/__init__.py": "",
                "repro/evaluation/experiments.py": """
                    import random

                    def run_ex99():
                        return random.random()
                """,
            },
        )
        assert [f.code for f in findings] == ["RL202"]


# ---------------------------------------------------------------------------
# RL203 — layer purity.
# ---------------------------------------------------------------------------


class TestLayerPurityRule:
    def run(self, tmp_path, files):
        index = build_index(
            tmp_path, {"repro/__init__.py": "", "repro/core/__init__.py": "", **files}
        )
        return list(LayerPurityRule().check_project(index))

    def test_clock_in_core_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/engine.py": """
                    import time

                    def timed(func):
                        start = time.perf_counter()
                        func()
                        return time.perf_counter() - start
                """,
            },
        )
        assert [f.code for f in findings] == ["RL203"]
        assert "'clock'" in findings[0].message
        assert "Stopwatch" in findings[0].message

    def test_io_in_core_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/loader.py": """
                    def load(path):
                        return open(path).read()
                """,
            },
        )
        assert [f.code for f in findings] == ["RL203"]

    def test_only_the_introducer_is_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/core/loader.py": """
                    def load(path):
                        return open(path).read()

                    def load_all(paths):
                        return [load(p) for p in paths]
                """,
            },
        )
        assert len(findings) == 1
        assert "load " in findings[0].message or "loader.load " in findings[0].message

    def test_obs_stopwatch_allowlisted(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/obs/__init__.py": "",
                "repro/obs/stopwatch.py": """
                    import time

                    class Stopwatch:
                        def elapsed(self):
                            return time.perf_counter()
                """,
                "repro/core/engine.py": """
                    from ..obs.stopwatch import Stopwatch

                    def timed(stopwatch: Stopwatch):
                        return stopwatch.elapsed()
                """,
            },
        )
        assert [f.code for f in findings] == []

    def test_outside_layers_not_covered(self, tmp_path):
        findings = self.run(
            tmp_path,
            {
                "repro/datasets/__init__.py": "",
                "repro/datasets/loader.py": """
                    def load(path):
                        return open(path).read()
                """,
            },
        )
        assert findings == []


# ---------------------------------------------------------------------------
# The real repository.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def repo_index() -> ProjectIndex:
    return ProjectIndex.build(sorted((REPO_ROOT / "src").rglob("*.py")))


class TestRepoEffects:
    def test_table_is_deterministic(self, repo_index):
        again = ProjectIndex.build(sorted((REPO_ROOT / "src").rglob("*.py")))
        assert format_effect_table(repo_index) == format_effect_table(again)

    def test_invalidators_cover_the_profile_pairing(self, repo_index):
        effects = analyze_effects(repo_index).effects()
        spec = next(
            s for s in DEFAULT_CACHE_REGISTRY if s.name == "profile-caches"
        )
        invalidate = effects[
            "repro.core.recommender.PureCFRecommender.invalidate_cache"
        ]
        # the seed bug: taxonomy-mode caches in the shared store survived
        assert spec.cache_atoms("repro.core.recommender.ProfileStore") <= invalidate
        assert (
            spec.cache_atoms("repro.core.recommender.PureCFRecommender")
            <= invalidate
        )

    def test_trust_graph_mutators_maintain_pos_succ(self, repo_index):
        effects = analyze_effects(repo_index).effects()
        for mutator in ("add_edge", "remove_edge", "add_node"):
            atoms = effects[f"repro.trust.graph.TrustGraph.{mutator}"]
            assert "mutates:repro.trust.graph.TrustGraph._pos_succ" in atoms

    def test_appleseed_compute_does_not_mutate_the_graph(self, repo_index):
        effects = analyze_effects(repo_index).effects()
        atoms = effects["repro.trust.appleseed.Appleseed.compute"]
        assert not any(
            atom.startswith("mutates:repro.trust.graph.TrustGraph.")
            for atom in atoms
        )

    def test_query_paths_carry_no_rng(self, repo_index):
        effects = analyze_effects(repo_index).effects()
        for qualname in (
            "repro.core.recommender.SemanticWebRecommender.recommend",
            "repro.core.similarity.top_similar",
            "repro.trust.appleseed.Appleseed.compute",
        ):
            assert "rng" not in effects[qualname]
