"""Unit and property tests for similarity measures."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.similarity import (
    cosine,
    isclose,
    overlap_keys,
    pearson,
    profile_overlap,
    top_similar,
)

_VECTORS = st.dictionaries(
    st.sampled_from([f"k{i}" for i in range(8)]),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    max_size=8,
)


class TestPearson:
    def test_identical_vectors(self):
        v = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert pearson(v, v) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0}
        right = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert pearson(left, right) == pytest.approx(-1.0)

    def test_scale_invariance(self):
        left = {"a": 1.0, "b": 2.0, "c": 4.0}
        right = {k: 10 * v + 3 for k, v in left.items()}
        assert pearson(left, right) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert isclose(pearson({}, {}), 0.0)
        assert isclose(pearson({"a": 1.0}, {}), 0.0)

    def test_constant_vector_degenerate(self):
        left = {"a": 1.0, "b": 1.0}
        right = {"a": 0.5, "b": 0.7}
        assert isclose(pearson(left, right), 0.0)

    def test_union_includes_missing_as_zero(self):
        left = {"a": 1.0, "b": 1.0}
        right = {"c": 1.0, "d": 1.0}
        # Disjoint supports anticorrelate over the union domain.
        assert pearson(left, right, domain="union") == pytest.approx(-1.0)

    def test_intersection_requires_two_shared(self):
        left = {"a": 1.0, "b": 2.0}
        right = {"a": 1.0, "c": 5.0}
        assert isclose(pearson(left, right, domain="intersection"), 0.0)

    def test_intersection_computes_over_shared_only(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0, "x": 99.0}
        right = {"a": 2.0, "b": 4.0, "c": 6.0, "y": -99.0}
        assert pearson(left, right, domain="intersection") == pytest.approx(1.0)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            pearson({}, {}, domain="bogus")

    @given(_VECTORS, _VECTORS)
    def test_property_bounded_and_symmetric(self, left, right):
        value = pearson(left, right)
        assert -1.0 <= value <= 1.0
        assert value == pytest.approx(pearson(right, left))


class TestCosine:
    def test_identical_direction(self):
        left = {"a": 1.0, "b": 2.0}
        right = {"a": 2.0, "b": 4.0}
        assert cosine(left, right) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert isclose(cosine({"a": 1.0}, {"b": 1.0}), 0.0)

    def test_opposite(self):
        assert cosine({"a": 1.0}, {"a": -1.0}) == pytest.approx(-1.0)

    def test_empty(self):
        assert isclose(cosine({}, {"a": 1.0}), 0.0)

    def test_zero_norm(self):
        assert isclose(cosine({"a": 0.0}, {"a": 1.0}), 0.0)

    def test_known_value(self):
        left = {"a": 1.0, "b": 1.0}
        right = {"a": 1.0}
        assert cosine(left, right) == pytest.approx(1.0 / math.sqrt(2))

    def test_intersection_domain(self):
        left = {"a": 1.0, "b": 1.0, "x": 100.0}
        right = {"a": 1.0, "b": 1.0, "y": -3.0}
        assert cosine(left, right, domain="intersection") == pytest.approx(1.0)

    @given(_VECTORS, _VECTORS)
    def test_property_bounded_and_symmetric(self, left, right):
        value = cosine(left, right)
        assert -1.0 <= value <= 1.0
        assert value == pytest.approx(cosine(right, left))

    @given(_VECTORS)
    def test_property_self_similarity(self, vector):
        # Exclude magnitudes whose square underflows to 0.0.
        nonzero = {k: v for k, v in vector.items() if abs(v) >= 1e-6}
        if nonzero:
            assert cosine(nonzero, nonzero) == pytest.approx(1.0)


class TestOverlap:
    def test_overlap_keys(self):
        assert overlap_keys({"a": 1, "b": 2}, {"b": 3, "c": 4}) == {"b"}

    def test_profile_overlap_jaccard(self):
        left = {"a": 1.0, "b": 1.0}
        right = {"b": 1.0, "c": 1.0}
        assert profile_overlap(left, right) == pytest.approx(1 / 3)

    def test_profile_overlap_empty(self):
        assert isclose(profile_overlap({}, {}), 0.0)
        assert isclose(profile_overlap({"a": 1.0}, {}), 0.0)

    def test_profile_overlap_identical(self):
        v = {"a": 1.0, "b": 2.0}
        assert isclose(profile_overlap(v, v), 1.0)


class TestTopSimilar:
    def test_ranks_by_similarity(self):
        target = {"a": 1.0, "b": 2.0, "c": 3.0}
        candidates = {
            "same": {"a": 1.0, "b": 2.0, "c": 3.0},
            "anti": {"a": 3.0, "b": 2.0, "c": 1.0},
            "flat": {"a": 1.0, "b": 1.0, "c": 1.0},
        }
        ranked = top_similar(target, candidates)
        assert ranked[0][0] == "same"
        assert ranked[-1][0] == "anti"

    def test_limit(self):
        target = {"a": 1.0}
        candidates = {f"c{i}": {"a": 1.0} for i in range(10)}
        assert len(top_similar(target, candidates, limit=3)) == 3

    def test_deterministic_tie_break(self):
        target = {"a": 1.0, "b": 1.0}
        candidates = {"z": dict(target), "y": dict(target)}
        ranked = top_similar(target, candidates, measure="cosine")
        assert [name for name, _ in ranked] == ["y", "z"]

    def test_cosine_measure(self):
        target = {"a": 1.0}
        ranked = top_similar(target, {"x": {"a": 5.0}}, measure="cosine")
        assert ranked[0][1] == pytest.approx(1.0)

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            top_similar({}, {}, measure="bogus")
