"""Unit tests for dataset and taxonomy snapshot IO."""

from __future__ import annotations

import json

import pytest

from repro.datasets.generators import CommunityConfig, generate_community
from repro.datasets.io import load_dataset, load_taxonomy, save_dataset, save_taxonomy


class TestDatasetIO:
    def test_roundtrip_tiny(self, tiny_dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset(path)
        assert loaded.agents == tiny_dataset.agents
        assert loaded.products == tiny_dataset.products
        assert loaded.trust == tiny_dataset.trust
        assert loaded.ratings == tiny_dataset.ratings

    def test_roundtrip_generated(self, tmp_path):
        community = generate_community(
            CommunityConfig(n_agents=30, n_products=50, n_clusters=3, seed=8)
        )
        path = tmp_path / "data.jsonl"
        save_dataset(community.dataset, path)
        loaded = load_dataset(path)
        assert loaded.trust == community.dataset.trust
        assert loaded.ratings == community.dataset.ratings

    def test_deterministic_bytes(self, tiny_dataset, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        save_dataset(tiny_dataset, first)
        save_dataset(tiny_dataset, second)
        assert first.read_bytes() == second.read_bytes()

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            load_dataset(path)

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "agent", "uri": "u:1"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_dataset(path)

    def test_validation_toggle(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        record = {"kind": "rating", "agent": "ghost", "product": "p", "value": 1.0}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError):
            load_dataset(path)
        loaded = load_dataset(path, validate=False)
        assert len(loaded.ratings) == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"kind": "agent", "uri": "u:1", "name": ""}\n\n')
        assert len(load_dataset(path).agents) == 1


class TestTaxonomyIO:
    def test_roundtrip(self, figure1, tmp_path):
        path = tmp_path / "taxonomy.jsonl"
        save_taxonomy(figure1, path)
        loaded = load_taxonomy(path)
        assert set(loaded) == set(figure1)
        for topic in figure1:
            assert loaded.parent(topic) == figure1.parent(topic)
            assert loaded.label(topic) == figure1.label(topic)
            assert loaded.sibling_count(topic) == figure1.sibling_count(topic)

    def test_preserves_child_order(self, figure1, tmp_path):
        path = tmp_path / "taxonomy.jsonl"
        save_taxonomy(figure1, path)
        loaded = load_taxonomy(path)
        for topic in figure1:
            assert loaded.children(topic) == figure1.children(topic)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no topic records"):
            load_taxonomy(path)

    def test_child_before_root_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "topic", "id": "A", "parent": "R", "label": "A"}\n'
            '{"kind": "topic", "id": "R", "parent": null, "label": "R"}\n'
        )
        with pytest.raises(ValueError, match="before the root"):
            load_taxonomy(path)

    def test_second_root_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "topic", "id": "R", "parent": null, "label": "R"}\n'
            '{"kind": "topic", "id": "S", "parent": null, "label": "S"}\n'
        )
        with pytest.raises(ValueError, match="second root"):
            load_taxonomy(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "agent", "uri": "u:1"}\n')
        with pytest.raises(ValueError, match="expected topic record"):
            load_taxonomy(path)
