"""Unit tests for the end-to-end recommenders."""

from __future__ import annotations

import pytest

from repro.core.models import Agent, Dataset, Product, Rating, TrustStatement
from repro.core.neighborhood import NeighborhoodFormation
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import (
    ContentBasedExplorer,
    PopularityRecommender,
    ProfileStore,
    PureCFRecommender,
    RandomRecommender,
    SemanticWebRecommender,
    TrustOnlyRecommender,
)
from repro.core.synthesis import LinearBlend
from repro.core.taxonomy import figure1_fragment
from repro.trust.graph import TrustGraph

ALICE = "http://example.org/alice"
BOB = "http://example.org/bob"
CAROL = "http://example.org/carol"
DAVE = "http://example.org/dave"
EVE = "http://example.org/eve"


class TestProfileStore:
    def test_caches_profiles(self, tiny_dataset, figure1):
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        first = store.profile(ALICE)
        second = store.profile(ALICE)
        assert first is second

    def test_invalidate_single(self, tiny_dataset, figure1):
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        first = store.profile(ALICE)
        store.invalidate(ALICE)
        assert store.profile(ALICE) is not first

    def test_invalidate_all(self, tiny_dataset, figure1):
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        first = store.profile(ALICE)
        store.invalidate()
        assert store.profile(ALICE) is not first

    def test_agent_without_ratings_empty_profile(self, figure1):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="u:1"))
        store = ProfileStore(dataset, TaxonomyProfileBuilder(figure1))
        assert store.profile("u:1") == {}


class TestSemanticWebRecommender:
    @pytest.fixture
    def recommender(self, tiny_dataset, figure1) -> SemanticWebRecommender:
        return SemanticWebRecommender.from_dataset(tiny_dataset, figure1)

    def test_unknown_agent_rejected(self, recommender):
        with pytest.raises(KeyError):
            recommender.recommend("ghost")

    def test_never_recommends_own_rated(self, recommender, tiny_dataset):
        recs = recommender.recommend(ALICE, limit=10)
        own = set(tiny_dataset.ratings_of(ALICE))
        assert not own & {r.product for r in recs}

    def test_scores_descending(self, recommender):
        recs = recommender.recommend(ALICE, limit=10)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_supporters_recorded(self, recommender):
        recs = recommender.recommend(ALICE, limit=10)
        assert recs, "alice's neighborhood rates products she hasn't"
        for rec in recs:
            assert rec.supporters
            assert ALICE not in rec.supporters

    def test_limit_respected(self, recommender):
        assert len(recommender.recommend(ALICE, limit=1)) <= 1

    def test_neighborhood_exposed(self, recommender):
        hood = recommender.neighborhood(ALICE)
        assert BOB in hood
        assert CAROL in hood

    def test_peer_weights_positive(self, recommender):
        weights = recommender.peer_weights(ALICE)
        assert weights
        assert all(v > 0 for v in weights.values())

    def test_deterministic(self, tiny_dataset, figure1):
        first = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        second = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        assert first.recommend(ALICE, 5) == second.recommend(ALICE, 5)

    def test_agent_with_no_trust_gets_no_recs(self, tiny_dataset, figure1):
        recommender = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        # eve states no trust: empty neighborhood, no votes.
        assert recommender.recommend(EVE, limit=5) == []

    def test_custom_formation_and_synthesis(self, tiny_dataset, figure1):
        recommender = SemanticWebRecommender.from_dataset(
            tiny_dataset,
            figure1,
            formation=NeighborhoodFormation(max_peers=1),
            synthesis=LinearBlend(gamma=1.0),
        )
        weights = recommender.peer_weights(ALICE)
        assert len(weights) <= 1


class TestPureCF:
    def test_taxonomy_requires_store(self, tiny_dataset):
        with pytest.raises(ValueError):
            PureCFRecommender(dataset=tiny_dataset, representation="taxonomy")

    def test_unknown_representation(self, tiny_dataset):
        with pytest.raises(ValueError):
            PureCFRecommender(dataset=tiny_dataset, representation="bogus")

    def test_product_mode_defaults_to_cosine(self, tiny_dataset):
        recommender = PureCFRecommender(dataset=tiny_dataset, representation="product")
        assert recommender.similarity_measure == "cosine"

    def test_taxonomy_mode_defaults_to_pearson(self, tiny_dataset, figure1):
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        recommender = PureCFRecommender(dataset=tiny_dataset, profiles=store)
        assert recommender.similarity_measure == "pearson"

    def test_product_mode_finds_co_raters(self, tiny_dataset):
        recommender = PureCFRecommender(dataset=tiny_dataset, representation="product")
        # bob co-rated isbn:1 with alice -> bob's isbn:3 should be votable.
        recs = {r.product for r in recommender.recommend(ALICE, limit=5)}
        assert "isbn:3" in recs

    def test_excludes_own_items(self, tiny_dataset):
        recommender = PureCFRecommender(dataset=tiny_dataset, representation="product")
        recs = {r.product for r in recommender.recommend(ALICE, limit=5)}
        assert not recs & set(tiny_dataset.ratings_of(ALICE))

    def test_neighbors_cap(self, tiny_dataset, figure1):
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        recommender = PureCFRecommender(
            dataset=tiny_dataset, profiles=store, neighbors=1
        )
        assert len(recommender.peer_weights(ALICE)) <= 1

    def test_invalid_neighbors(self, tiny_dataset):
        with pytest.raises(ValueError):
            PureCFRecommender(
                dataset=tiny_dataset, representation="product", neighbors=0
            )


class TestTrustOnly:
    def test_votes_follow_trust(self, tiny_dataset):
        recommender = TrustOnlyRecommender(
            dataset=tiny_dataset, graph=TrustGraph.from_dataset(tiny_dataset)
        )
        recs = recommender.recommend(ALICE, limit=5)
        assert recs
        products = {r.product for r in recs}
        # bob and carol (trusted) rated isbn:3 and isbn:4.
        assert "isbn:3" in products or "isbn:4" in products


class TestContentBasedExplorer:
    def test_only_untouched_categories(self, tiny_dataset, figure1):
        inner = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        explorer = ContentBasedExplorer(inner=inner)
        touched = set(inner.profiles.profile(ALICE))
        for rec in explorer.recommend(ALICE, limit=5):
            product = tiny_dataset.products[rec.product]
            assert product.descriptors.isdisjoint(touched)

    def test_subset_of_votable(self, tiny_dataset, figure1):
        inner = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        explorer = ContentBasedExplorer(inner=inner)
        all_votable = {r.product for r in inner.recommend(ALICE, limit=100)}
        fresh = {r.product for r in explorer.recommend(ALICE, limit=100)}
        assert fresh <= all_votable


class TestNonPersonalized:
    def test_random_is_deterministic_per_seed(self, tiny_dataset):
        first = RandomRecommender(dataset=tiny_dataset, seed=3)
        second = RandomRecommender(dataset=tiny_dataset, seed=3)
        assert first.recommend(ALICE, 3) == second.recommend(ALICE, 3)

    def test_random_differs_across_seeds(self, tiny_dataset):
        lists = {
            tuple(r.product for r in RandomRecommender(tiny_dataset, seed=s).recommend(ALICE, 3))
            for s in range(5)
        }
        assert len(lists) > 1

    def test_random_excludes_rated(self, tiny_dataset):
        recs = RandomRecommender(dataset=tiny_dataset).recommend(ALICE, 10)
        assert not {r.product for r in recs} & set(tiny_dataset.ratings_of(ALICE))

    def test_popularity_order(self, tiny_dataset):
        recs = PopularityRecommender(dataset=tiny_dataset).recommend(DAVE, 10)
        counts = [r.score for r in recs]
        assert counts == sorted(counts, reverse=True)

    def test_popularity_excludes_own(self, tiny_dataset):
        recs = PopularityRecommender(dataset=tiny_dataset).recommend(ALICE, 10)
        assert not {r.product for r in recs} & set(tiny_dataset.ratings_of(ALICE))

    def test_popularity_ignores_own_vote_in_counts(self):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="u:1"))
        dataset.add_agent(Agent(uri="u:2"))
        dataset.add_product(Product(identifier="p:1"))
        dataset.add_product(Product(identifier="p:2"))
        dataset.add_rating(Rating(agent="u:2", product="p:1"))
        recs = PopularityRecommender(dataset=dataset).recommend("u:1", 5)
        assert [r.product for r in recs] == ["p:1"]


class TestPipelineOnGeneratedCommunity:
    def test_end_to_end(self, small_community):
        dataset = small_community.dataset
        recommender = SemanticWebRecommender.from_dataset(
            dataset, small_community.taxonomy
        )
        agent = sorted(dataset.agents)[0]
        recs = recommender.recommend(agent, limit=10)
        assert len(recs) > 0
        assert all(r.product in dataset.products for r in recs)
        assert all(r.score > 0 for r in recs)


class TestCacheInvalidation:
    """RL200 regressions: every invalidator must reach the shared store.

    The paper's long-lived machine agents ingest ratings *while* serving
    recommendations; on the seed, ``PureCFRecommender.invalidate_cache``
    dropped only the product-mode caches and taxonomy-mode queries kept
    serving profiles built before the mutation.
    """

    def test_pure_cf_taxonomy_invalidation_reaches_shared_store(
        self, tiny_dataset, figure1
    ):
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        recommender = PureCFRecommender(dataset=tiny_dataset, profiles=store)
        recommender.recommend(ALICE)  # fill the shared profile cache
        stale = store.profile(ALICE)
        assert "Literature" not in stale

        tiny_dataset.add_rating(Rating(agent=ALICE, product="isbn:4", value=1.0))
        recommender.invalidate_cache()

        fresh = store.profile(ALICE)
        assert fresh is not stale
        assert "Literature" in fresh

    def test_pure_cf_taxonomy_invalidation_drops_packed_matrix(
        self, tiny_dataset, figure1
    ):
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        recommender = PureCFRecommender(dataset=tiny_dataset, profiles=store)
        before = store.matrix()
        recommender.invalidate_cache()
        assert store.matrix() is not before

    def test_pure_cf_product_mode_still_drops_own_caches(self, tiny_dataset):
        recommender = PureCFRecommender(
            dataset=tiny_dataset, representation="product"
        )
        recommender.recommend(ALICE)
        assert recommender._product_profiles
        recommender.invalidate_cache()
        assert not recommender._product_profiles
        assert recommender._product_matrix.get() is None

    def test_semantic_web_recommender_invalidate_all(self, tiny_dataset, figure1):
        recommender = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        recommender.peer_weights(ALICE)
        stale = recommender.profiles.profile(ALICE)

        tiny_dataset.add_rating(Rating(agent=ALICE, product="isbn:4", value=1.0))
        recommender.invalidate_cache()

        fresh = recommender.profiles.profile(ALICE)
        assert fresh is not stale
        assert "Literature" in fresh

    def test_semantic_web_recommender_invalidate_single_agent(
        self, tiny_dataset, figure1
    ):
        recommender = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        recommender.peer_weights(ALICE)
        alice_before = recommender.profiles.profile(ALICE)
        bob_before = recommender.profiles.profile(BOB)

        recommender.invalidate_cache(ALICE)

        assert recommender.profiles.profile(ALICE) is not alice_before
        assert recommender.profiles.profile(BOB) is bob_before
