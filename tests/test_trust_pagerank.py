"""Unit tests for personalized PageRank."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph
from repro.trust.pagerank import PersonalizedPageRank


def chain_graph() -> TrustGraph:
    return TrustGraph.from_edges(
        [("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)]
    )


class TestParameters:
    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            PersonalizedPageRank(alpha=alpha)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            PersonalizedPageRank(tolerance=0.0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            PersonalizedPageRank(max_iterations=0)

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            PersonalizedPageRank().compute(chain_graph(), "ghost")


class TestBasics:
    def test_converges(self):
        result = PersonalizedPageRank().compute(chain_graph(), "a")
        assert result.converged

    def test_all_reachable_ranked(self):
        result = PersonalizedPageRank().compute(chain_graph(), "a")
        assert set(result.ranks) == {"b", "c", "d"}

    def test_source_excluded(self):
        result = PersonalizedPageRank().compute(chain_graph(), "a")
        assert "a" not in result.ranks

    def test_proximity_ordering_on_chain(self):
        ranks = PersonalizedPageRank().compute(chain_graph(), "a").ranks
        assert ranks["b"] > ranks["c"] > ranks["d"] > 0

    def test_unreachable_nodes_absent(self):
        graph = chain_graph()
        graph.add_edge("x", "y", 1.0)
        result = PersonalizedPageRank().compute(graph, "a")
        assert "x" not in result.ranks
        assert "y" not in result.ranks

    def test_isolated_source(self):
        graph = TrustGraph()
        graph.add_node("alone")
        result = PersonalizedPageRank().compute(graph, "alone")
        assert result.ranks == {}
        assert result.converged

    def test_distrust_not_walked(self):
        graph = TrustGraph.from_edges([("a", "b", 1.0), ("a", "m", -0.9)])
        result = PersonalizedPageRank().compute(graph, "a")
        assert "m" not in result.ranks

    def test_stronger_edge_more_rank(self):
        graph = TrustGraph.from_edges([("s", "big", 0.9), ("s", "small", 0.1)])
        ranks = PersonalizedPageRank().compute(graph, "s").ranks
        assert ranks["big"] > ranks["small"]

    def test_top_helper(self):
        result = PersonalizedPageRank().compute(chain_graph(), "a")
        top = result.top(2)
        assert [name for name, _ in top] == ["b", "c"]

    def test_agrees_with_appleseed_ordering_on_chain(self):
        """Both metrics order a chain by proximity — the family trait."""
        graph = chain_graph()
        ppr = PersonalizedPageRank().compute(graph, "a").top()
        apple = Appleseed().compute(graph, "a").top()
        assert [n for n, _ in ppr] == [n for n, _ in apple]


@settings(deadline=None, max_examples=30)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 6),
            st.integers(0, 6),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_property_rank_mass_bounded(edges):
    """Property: excluded-source rank mass lies in [0, 1], all ranks
    positive, and the computation converges."""
    graph = TrustGraph()
    graph.add_node("n0")
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(f"n{source}", f"n{target}", weight)
    result = PersonalizedPageRank().compute(graph, "n0")
    assert result.converged
    total = sum(result.ranks.values())
    assert 0.0 <= total <= 1.0 + 1e-9
    assert all(v > 0 for v in result.ranks.values())
