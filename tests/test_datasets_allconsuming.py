"""Unit tests for the All Consuming-scale preset."""

from __future__ import annotations

import pytest

from repro.datasets.allconsuming import (
    ALLCONSUMING_AGENTS,
    ALLCONSUMING_BOOKS,
    allconsuming_config,
    generate_allconsuming,
)


class TestConfig:
    def test_full_scale_matches_paper_numbers(self):
        config = allconsuming_config(scale=1.0)
        assert config.n_agents == ALLCONSUMING_AGENTS == 9_100
        assert config.n_products == ALLCONSUMING_BOOKS == 9_953
        assert not config.explicit_ratings  # weblog votes are implicit

    def test_scaling(self):
        config = allconsuming_config(scale=0.1)
        assert config.n_agents == 910
        assert config.n_products == 995

    def test_taxonomy_scales_sublinearly(self):
        small = allconsuming_config(scale=0.25)
        full = allconsuming_config(scale=1.0)
        assert small.taxonomy.target_topics == 10_000
        assert full.taxonomy.target_topics == 20_000

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            allconsuming_config(scale=0.0)
        with pytest.raises(ValueError):
            allconsuming_config(scale=5.0)

    def test_minimum_floors(self):
        config = allconsuming_config(scale=0.0005)
        assert config.n_agents >= 10
        assert config.n_products >= 20
        assert config.taxonomy.target_topics >= 200


class TestGeneration:
    def test_small_scale_generates(self):
        community = generate_allconsuming(scale=0.01, seed=1)
        assert len(community.dataset.agents) == 91
        assert len(community.dataset.products) == 100
        community.dataset.validate()

    def test_deterministic(self):
        first = generate_allconsuming(scale=0.01, seed=2)
        second = generate_allconsuming(scale=0.01, seed=2)
        assert first.dataset.trust == second.dataset.trust
