"""Integration tests for the LocalAgent facade."""

from __future__ import annotations

import pytest

from repro.agent import LocalAgent
from repro.web.crawler import publish_community
from repro.web.network import SimulatedWeb
from repro.web.replicator import publish_split_community


@pytest.fixture
def merged_world(small_community):
    web = SimulatedWeb()
    publish_community(web, small_community.dataset, small_community.taxonomy)
    return web, small_community


@pytest.fixture
def split_world(small_community):
    web = SimulatedWeb()
    publish_split_community(web, small_community.dataset, small_community.taxonomy)
    return web, small_community


def _seed_uri(community) -> str:
    return sorted(community.dataset.agents)[0]


class TestLifecycle:
    def test_queries_before_sync_rejected(self, merged_world):
        web, community = merged_world
        agent = LocalAgent(uri=_seed_uri(community), web=web)
        with pytest.raises(RuntimeError):
            agent.recommendations()
        with pytest.raises(RuntimeError):
            agent.replica
        with pytest.raises(RuntimeError):
            agent.taxonomy

    def test_sync_builds_replica(self, merged_world):
        web, community = merged_world
        agent = LocalAgent(uri=_seed_uri(community), web=web)
        stats = agent.sync()
        assert stats["agents_replicated"] > 1
        assert stats["fetched"] > 2
        assert len(agent.taxonomy) == len(community.taxonomy)

    def test_second_sync_is_incremental(self, merged_world):
        web, community = merged_world
        agent = LocalAgent(uri=_seed_uri(community), web=web)
        first = agent.sync()
        second = agent.sync()
        # Globals are version-bumped never, homepages unchanged: only the
        # two global docs are refetched unconditionally.
        assert second["fetched"] <= 2
        assert second["agents_replicated"] == first["agents_replicated"]

    def test_sync_picks_up_updates(self, merged_world):
        web, community = merged_world
        seed = _seed_uri(community)
        agent = LocalAgent(uri=seed, web=web)
        agent.sync()
        before = {r.product for r in agent.recommendations(limit=5)}

        # A trusted peer republishes with new ratings.
        from repro.semweb.foaf import publish_agent
        from repro.semweb.serializer import serialize_ntriples

        dataset = community.dataset
        peer = next(iter(dataset.trust_of(seed)))
        ratings = dict(dataset.ratings_of(peer))
        for product in sorted(dataset.products)[:8]:
            ratings.setdefault(product, 1.0)
        web.publish(
            peer,
            serialize_ntriples(
                publish_agent(dataset.agents[peer], dataset.trust_of(peer), ratings)
            ),
        )
        stats = agent.sync()
        assert stats["fetched"] >= 3  # two globals + the updated peer
        after = {r.product for r in agent.recommendations(limit=5)}
        assert isinstance(before, set) and isinstance(after, set)


class TestQueries:
    def test_recommendations(self, merged_world):
        web, community = merged_world
        agent = LocalAgent(uri=_seed_uri(community), web=web)
        agent.sync()
        recs = agent.recommendations(limit=5)
        assert recs
        assert all(r.product in agent.replica.products for r in recs)

    def test_trusted_peers(self, merged_world):
        web, community = merged_world
        seed = _seed_uri(community)
        agent = LocalAgent(uri=seed, web=web)
        agent.sync()
        peers = agent.trusted_peers(limit=5)
        assert peers
        assert all(rank > 0 for _, rank in peers)
        assert seed not in {peer for peer, _ in peers}

    def test_predict_rating(self, merged_world):
        web, community = merged_world
        agent = LocalAgent(uri=_seed_uri(community), web=web)
        agent.sync()
        recs = agent.recommendations(limit=1)
        value = agent.predict_rating(recs[0].product)
        assert value is None or -1.0 <= value <= 1.0

    def test_explain(self, merged_world):
        web, community = merged_world
        agent = LocalAgent(uri=_seed_uri(community), web=web)
        agent.sync()
        recs = agent.recommendations(limit=1)
        text = agent.explain(recs[0])
        assert recs[0].product in text or "Book" in text
        assert "trust neighborhood" in text


class TestSplitChannel:
    def test_sync_mines_weblogs(self, split_world):
        web, community = split_world
        agent = LocalAgent(uri=_seed_uri(community), web=web)
        stats = agent.sync()
        assert stats["mined_weblog_ratings"] > 0
        # Ratings are recoverable despite rating-free homepages.
        assert len(agent.replica.ratings) > 0
        assert agent.recommendations(limit=5)

    def test_weblog_mining_can_be_disabled(self, split_world):
        web, community = split_world
        agent = LocalAgent(uri=_seed_uri(community), web=web, mine_weblogs=False)
        stats = agent.sync()
        assert stats["mined_weblog_ratings"] == 0
        assert len(agent.replica.ratings) == 0
