"""Unit tests for rating prediction."""

from __future__ import annotations

import pytest

from repro.core.models import Agent, Dataset, Product, Rating
from repro.core.prediction import RatingPredictor, predict_rating


def _dataset() -> Dataset:
    dataset = Dataset()
    for name in ("me", "p1", "p2", "p3"):
        dataset.add_agent(Agent(uri=name))
    for identifier in ("b1", "b2", "b3"):
        dataset.add_product(Product(identifier=identifier))
    ratings = [
        ("me", "b1", 0.5),
        ("p1", "b1", 0.6), ("p1", "b2", 0.8),
        ("p2", "b1", 0.4), ("p2", "b2", 0.2),
        ("p3", "b3", -0.5),
    ]
    for agent, product, value in ratings:
        dataset.add_rating(Rating(agent=agent, product=product, value=value))
    return dataset


class TestPredictRating:
    def test_no_evidence_returns_none(self):
        dataset = _dataset()
        assert predict_rating(dataset, "me", "b3", {"p1": 1.0}) is None

    def test_unweighted_peers_ignored(self):
        dataset = _dataset()
        # p3 rated b3 but has weight 0.
        assert predict_rating(dataset, "me", "b3", {"p3": 0.0}) is None

    def test_plain_weighted_mean(self):
        dataset = _dataset()
        value = predict_rating(
            dataset, "me", "b2", {"p1": 3.0, "p2": 1.0}, mean_centered=False
        )
        assert value == pytest.approx((3.0 * 0.8 + 1.0 * 0.2) / 4.0)

    def test_mean_centered_resnick(self):
        dataset = _dataset()
        # own mean = 0.5; p1 mean = 0.7, p2 mean = 0.3.
        value = predict_rating(dataset, "me", "b2", {"p1": 1.0, "p2": 1.0})
        expected = 0.5 + ((0.8 - 0.7) + (0.2 - 0.3)) / 2.0
        assert value == pytest.approx(expected)

    def test_own_rating_never_used(self):
        dataset = _dataset()
        # "me" rated b1; prediction for b1 must come from peers only.
        value = predict_rating(
            dataset, "me", "b1", {"me": 5.0, "p1": 1.0}, mean_centered=False
        )
        assert value == pytest.approx(0.6)

    def test_clamped_to_scale(self):
        dataset = Dataset()
        dataset.add_agent(Agent(uri="me"))
        dataset.add_agent(Agent(uri="p"))
        dataset.add_product(Product(identifier="b"))
        dataset.add_product(Product(identifier="c"))
        dataset.add_rating(Rating(agent="me", product="c", value=1.0))
        dataset.add_rating(Rating(agent="p", product="b", value=1.0))
        dataset.add_rating(Rating(agent="p", product="c", value=-1.0))
        # own mean 1.0, deviation (1.0 - 0.0) = +1 -> raw 2.0 -> clamp 1.0
        value = predict_rating(dataset, "me", "b", {"p": 1.0})
        assert value == 1.0


class TestRatingPredictor:
    def test_caches_weights(self):
        dataset = _dataset()
        calls = []

        def provider(agent):
            calls.append(agent)
            return {"p1": 1.0, "p2": 1.0}

        predictor = RatingPredictor(dataset, provider)
        predictor.predict("me", "b2")
        predictor.predict("me", "b1")
        assert calls == ["me"]

    def test_predict_many_drops_bottoms(self):
        dataset = _dataset()
        predictor = RatingPredictor(dataset, lambda agent: {"p1": 1.0})
        out = predictor.predict_many("me", ["b2", "b3"])
        assert set(out) == {"b2"}

    def test_integration_with_recommender_weights(self, small_community):
        from repro.core.profiles import TaxonomyProfileBuilder
        from repro.core.recommender import ProfileStore, SemanticWebRecommender
        from repro.trust.graph import TrustGraph

        dataset = small_community.dataset
        recommender = SemanticWebRecommender(
            dataset=dataset,
            graph=TrustGraph.from_dataset(dataset),
            profiles=ProfileStore(
                dataset, TaxonomyProfileBuilder(small_community.taxonomy)
            ),
        )
        predictor = RatingPredictor(dataset, recommender.peer_weights)
        agent = sorted(dataset.agents)[0]
        products = sorted(dataset.products)[:30]
        predictions = predictor.predict_many(agent, products)
        assert all(-1.0 <= v <= 1.0 for v in predictions.values())
