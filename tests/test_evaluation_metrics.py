"""Unit and property tests for the evaluation metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.similarity import isclose
from repro.evaluation.metrics import (
    catalog_coverage,
    f1_score,
    hit_rate,
    kendall_tau,
    mean,
    mean_absolute_error,
    precision_at,
    recall_at,
    spearman_rho,
    standard_error,
    stdev,
)


class TestTopNMetrics:
    def test_precision(self):
        assert isclose(precision_at(["a", "b", "c", "d"], {"a", "c"}), 0.5)

    def test_precision_empty_recs(self):
        assert isclose(precision_at([], {"a"}), 0.0)

    def test_recall(self):
        assert isclose(recall_at(["a", "b"], {"a", "c", "d", "e"}), 0.25)

    def test_recall_empty_relevant(self):
        assert isclose(recall_at(["a"], set()), 0.0)

    def test_perfect_scores(self):
        assert isclose(precision_at(["a", "b"], {"a", "b"}), 1.0)
        assert isclose(recall_at(["a", "b"], {"a", "b"}), 1.0)

    def test_f1(self):
        assert isclose(f1_score(0.5, 0.5), 0.5)
        assert isclose(f1_score(1.0, 0.0), 0.0)
        assert isclose(f1_score(0.0, 0.0), 0.0)
        assert f1_score(0.25, 0.75) == pytest.approx(0.375)

    def test_hit_rate(self):
        assert hit_rate(["a", "b"], {"b"}) == 1.0
        assert hit_rate(["a", "b"], {"z"}) == 0.0
        assert hit_rate([], {"z"}) == 0.0

    @given(
        recommended=st.lists(st.sampled_from("abcdefgh"), max_size=10, unique=True),
        relevant=st.sets(st.sampled_from("abcdefgh"), max_size=8),
    )
    def test_property_bounds_and_consistency(self, recommended, relevant):
        p = precision_at(recommended, relevant)
        r = recall_at(recommended, relevant)
        f = f1_score(p, r)
        assert 0.0 <= p <= 1.0
        assert 0.0 <= r <= 1.0
        assert min(p, r) - 1e-12 <= f <= max(p, r) + 1e-12
        if recommended and relevant:
            hits = len(set(recommended) & relevant)
            assert p == hits / len(recommended)
            assert r == hits / len(relevant)


class TestErrorMetrics:
    def test_mae(self):
        predicted = {"a": 1.0, "b": 0.0, "c": 5.0}
        actual = {"a": 0.5, "b": 1.0, "z": 9.0}
        assert mean_absolute_error(predicted, actual) == pytest.approx(0.75)

    def test_mae_disjoint(self):
        assert mean_absolute_error({"a": 1.0}, {"b": 1.0}) == 0.0


class TestCoverage:
    def test_catalog_coverage(self):
        lists = [["a", "b"], ["b", "c"]]
        assert catalog_coverage(lists, catalog_size=6) == pytest.approx(0.5)

    def test_empty_catalog(self):
        assert catalog_coverage([["a"]], catalog_size=0) == 0.0


class TestRankCorrelation:
    def test_kendall_perfect(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_kendall_reversed(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_kendall_known_value(self):
        # One discordant pair of three: (3 choose 2)=3 pairs, 2 - 1 = 1/3.
        assert kendall_tau([1, 2, 3], [1, 3, 2]) == pytest.approx(1 / 3)

    def test_kendall_short_input(self):
        assert kendall_tau([1], [2]) == 0.0

    def test_kendall_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1])

    def test_spearman_perfect(self):
        assert spearman_rho([1, 2, 3], [4, 9, 11]) == pytest.approx(1.0)

    def test_spearman_reversed(self):
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_spearman_with_ties(self):
        value = spearman_rho([1.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert -1.0 <= value <= 1.0

    def test_spearman_constant_degenerate(self):
        assert spearman_rho([1, 1, 1], [1, 2, 3]) == 0.0

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    def test_property_self_correlation(self, values):
        # tau-a counts tied pairs as neither concordant nor discordant, so
        # perfect self-correlation only holds for tie-free sequences.
        if len(set(values)) == len(values) and len(values) > 1:
            assert kendall_tau(values, values) == pytest.approx(1.0)
        if len(set(values)) > 1:
            assert spearman_rho(values, values) == pytest.approx(1.0)

    @given(
        left=st.lists(st.integers(0, 50), min_size=2, max_size=15),
        right=st.lists(st.integers(0, 50), min_size=2, max_size=15),
    )
    def test_property_bounded_symmetric(self, left, right):
        n = min(len(left), len(right))
        left, right = left[:n], right[:n]
        for func in (kendall_tau, spearman_rho):
            value = func(left, right)
            assert -1.0 <= value <= 1.0
            assert value == pytest.approx(func(right, left))


class TestStatistics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.13809, abs=1e-4
        )
        assert stdev([1.0]) == 0.0

    def test_standard_error(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert standard_error(values) == pytest.approx(stdev(values) / 2.0)
        assert standard_error([1.0]) == 0.0
