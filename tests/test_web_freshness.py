"""Unit tests for the recrawl freshness policies."""

from __future__ import annotations

import pytest

from repro.web.freshness import FreshnessPolicy, plan_refresh
from repro.web.network import SimulatedWeb
from repro.web.storage import DocumentStore


def _world() -> tuple[DocumentStore, SimulatedWeb]:
    web = SimulatedWeb()
    store = DocumentStore()
    # Three agent docs fetched at different times; one taxonomy doc.
    for i, (uri, fetched_at) in enumerate(
        [("u:a", 3), ("u:b", 1), ("u:c", 2)], start=1
    ):
        web.publish(uri, f"body {i}")
        store.put(uri, f"body {i}", version=1, fetched_at=fetched_at)
    web.publish("u:tax", "tax")
    store.put("u:tax", "tax", version=1, fetched_at=0, kind="taxonomy")
    return store, web


class TestOldestFirst:
    def test_orders_by_age(self):
        store, web = _world()
        order = FreshnessPolicy("oldest_first").order(store, web)
        assert order == ["u:b", "u:c", "u:a"]

    def test_kind_filter(self):
        store, web = _world()
        order = FreshnessPolicy("oldest_first").order(store, web, kind=None)
        assert order[0] == "u:tax"  # fetched_at 0, oldest overall

    def test_empty_store(self):
        assert FreshnessPolicy().order(DocumentStore(), SimulatedWeb()) == []


class TestRoundRobin:
    def test_rotation_by_pass_number(self):
        store, web = _world()
        policy = FreshnessPolicy("round_robin")
        first = policy.order(store, web, pass_number=0)
        second = policy.order(store, web, pass_number=1)
        assert sorted(first) == sorted(second)
        assert second == first[1:] + first[:1]

    def test_full_cycle_covers_everything(self):
        store, web = _world()
        policy = FreshnessPolicy("round_robin")
        covered = set()
        for pass_number in range(3):
            covered.update(
                plan_refresh(store, web, budget=1, policy=policy,
                             pass_number=pass_number)
            )
        assert covered == {"u:a", "u:b", "u:c"}


class TestStaleFirst:
    def test_fresh_replica_nothing_to_do(self):
        store, web = _world()
        assert FreshnessPolicy("stale_first").order(store, web) == []

    def test_only_stale_documents_selected(self):
        store, web = _world()
        web.publish("u:b", "new body")  # bump live version
        order = FreshnessPolicy("stale_first").order(store, web)
        assert order == ["u:b"]

    def test_biggest_lag_first(self):
        store, web = _world()
        web.publish("u:b", "v2")
        web.publish("u:c", "v2")
        web.publish("u:c", "v3")  # c lags by 2 versions, b by 1
        order = FreshnessPolicy("stale_first").order(store, web)
        assert order == ["u:c", "u:b"]


class TestPlanRefresh:
    def test_budget_respected(self):
        store, web = _world()
        plan = plan_refresh(store, web, budget=2)
        assert len(plan) == 2
        assert plan == ["u:b", "u:c"]

    def test_zero_budget(self):
        store, web = _world()
        assert plan_refresh(store, web, budget=0) == []

    def test_negative_budget_rejected(self):
        store, web = _world()
        with pytest.raises(ValueError):
            plan_refresh(store, web, budget=-1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            FreshnessPolicy("bogus")


class TestDegradedFirst:
    def test_degraded_replicas_repair_before_stale_ones(self):
        store, web = _world()
        web.publish("u:b", "v2")  # stale but healthy
        store.mark_degraded("u:a")
        store.mark_degraded("u:c")
        order = FreshnessPolicy("degraded_first").order(store, web)
        # Degraded docs first (oldest fetch first), then stale healthy.
        assert order == ["u:c", "u:a", "u:b"]

    def test_without_degradation_matches_stale_first(self):
        store, web = _world()
        web.publish("u:b", "new")
        assert FreshnessPolicy("degraded_first").order(store, web) == (
            FreshnessPolicy("stale_first").order(store, web)
        )
