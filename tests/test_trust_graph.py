"""Unit tests for the trust graph."""

from __future__ import annotations

import pytest

from repro.core.similarity import isclose
from repro.trust.graph import TrustGraph


def simple_graph() -> TrustGraph:
    return TrustGraph.from_edges(
        [
            ("a", "b", 0.9),
            ("a", "c", 0.5),
            ("b", "c", 0.8),
            ("c", "d", 0.7),
            ("d", "e", 0.6),
            ("a", "x", -0.5),  # distrust
        ]
    )


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        graph = TrustGraph()
        graph.add_edge("a", "b", 0.5)
        assert "a" in graph
        assert "b" in graph
        assert len(graph) == 2

    def test_self_trust_rejected(self):
        with pytest.raises(ValueError):
            TrustGraph().add_edge("a", "a", 1.0)

    def test_out_of_range_weight_rejected(self):
        with pytest.raises(ValueError):
            TrustGraph().add_edge("a", "b", 1.5)

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            TrustGraph().add_node("")

    def test_overwrite_edge(self):
        graph = TrustGraph()
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("a", "b", 0.9)
        assert isclose(graph.weight("a", "b"), 0.9)
        assert graph.edge_count() == 1

    def test_remove_edge(self):
        graph = TrustGraph()
        graph.add_edge("a", "b", 0.5)
        graph.remove_edge("a", "b")
        assert graph.weight("a", "b") is None
        with pytest.raises(KeyError):
            graph.remove_edge("a", "b")

    def test_from_dataset(self, tiny_dataset):
        graph = TrustGraph.from_dataset(tiny_dataset)
        assert len(graph) == 5  # every agent, even trust-isolated eve
        assert graph.edge_count() == 5
        alice = "http://example.org/alice"
        bob = "http://example.org/bob"
        assert isclose(graph.weight(alice, bob), 0.8)


class TestAccessors:
    def test_weight_missing_is_none(self):
        assert simple_graph().weight("e", "a") is None

    def test_successors(self):
        graph = simple_graph()
        assert graph.successors("a") == {"b": 0.9, "c": 0.5, "x": -0.5}
        assert graph.successors("unknown") == {}

    def test_positive_successors_exclude_distrust(self):
        graph = simple_graph()
        assert graph.positive_successors("a") == {"b": 0.9, "c": 0.5}

    def test_predecessors(self):
        graph = simple_graph()
        assert graph.predecessors("c") == {"a": 0.5, "b": 0.8}

    def test_degrees(self):
        graph = simple_graph()
        assert graph.out_degree("a") == 3
        assert graph.in_degree("c") == 2
        assert graph.out_degree("e") == 0


class TestTraversal:
    def test_bfs_levels(self):
        levels = simple_graph().bfs_levels("a")
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2, "e": 3}

    def test_bfs_does_not_follow_distrust(self):
        levels = simple_graph().bfs_levels("a")
        assert "x" not in levels

    def test_bfs_unknown_source(self):
        with pytest.raises(KeyError):
            simple_graph().bfs_levels("ghost")

    def test_reachable_from(self):
        assert simple_graph().reachable_from("c") == {"c", "d", "e"}

    def test_within_horizon_limits_depth(self):
        horizon = simple_graph().within_horizon("a", max_depth=1)
        assert set(horizon.nodes()) == {"a", "b", "c"}
        # internal edges between discovered nodes are retained
        assert isclose(horizon.weight("b", "c"), 0.8)
        assert horizon.weight("c", "d") is None

    def test_within_horizon_keeps_internal_distrust(self):
        graph = TrustGraph.from_edges(
            [("a", "b", 0.9), ("a", "c", 0.9), ("b", "c", -0.5)]
        )
        horizon = graph.within_horizon("a", max_depth=1)
        assert isclose(horizon.weight("b", "c"), -0.5)

    def test_within_horizon_zero_depth(self):
        horizon = simple_graph().within_horizon("a", max_depth=0)
        assert set(horizon.nodes()) == {"a"}

    def test_within_horizon_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            simple_graph().within_horizon("a", max_depth=-1)

    def test_within_horizon_unknown_source(self):
        with pytest.raises(KeyError):
            simple_graph().within_horizon("ghost", max_depth=2)


class TestRepr:
    def test_repr(self):
        text = repr(simple_graph())
        assert "nodes=6" in text
        assert "edges=6" in text
