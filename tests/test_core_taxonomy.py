"""Unit and property tests for the taxonomy."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.taxonomy import Taxonomy, TaxonomyError, figure1_fragment


class TestConstruction:
    def test_root_exists(self):
        taxonomy = Taxonomy("Books")
        assert taxonomy.root == "Books"
        assert "Books" in taxonomy
        assert len(taxonomy) == 1

    def test_empty_root_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy("")

    def test_add_topic(self):
        taxonomy = Taxonomy("R")
        taxonomy.add_topic("A", "R")
        assert taxonomy.parent("A") == "R"
        assert taxonomy.children("R") == ("A",)

    def test_duplicate_topic_rejected(self):
        taxonomy = Taxonomy("R")
        taxonomy.add_topic("A", "R")
        with pytest.raises(TaxonomyError):
            taxonomy.add_topic("A", "R")

    def test_unknown_parent_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy("R").add_topic("A", "ghost")

    def test_empty_topic_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy("R").add_topic("", "R")

    def test_from_edges_any_order(self):
        edges = [("A", "B"), ("R", "A"), ("B", "C")]
        taxonomy = Taxonomy.from_edges("R", edges)
        assert taxonomy.path_to_root("C") == ["C", "B", "A", "R"]

    def test_from_edges_multiple_parents_rejected(self):
        with pytest.raises(TaxonomyError, match="multiple parents"):
            Taxonomy.from_edges("R", [("R", "A"), ("R", "B"), ("A", "C"), ("B", "C")])

    def test_from_edges_cycle_rejected(self):
        with pytest.raises(TaxonomyError, match="unreachable"):
            Taxonomy.from_edges("R", [("A", "B"), ("B", "A")])

    def test_from_edges_orphan_rejected(self):
        with pytest.raises(TaxonomyError, match="unreachable"):
            Taxonomy.from_edges("R", [("R", "A"), ("X", "Y")])

    def test_from_edges_labels(self):
        taxonomy = Taxonomy.from_edges("R", [("R", "A")], labels={"A": "Topic A"})
        assert taxonomy.label("A") == "Topic A"


class TestNavigation:
    @pytest.fixture
    def taxonomy(self) -> Taxonomy:
        return figure1_fragment()

    def test_depth(self, taxonomy):
        assert taxonomy.depth("Books") == 0
        assert taxonomy.depth("Science") == 1
        assert taxonomy.depth("Algebra") == 4

    def test_path_from_root(self, taxonomy):
        assert taxonomy.path_from_root("Algebra") == [
            "Books",
            "Science",
            "Mathematics",
            "Pure",
            "Algebra",
        ]

    def test_ancestors(self, taxonomy):
        assert taxonomy.ancestors("Pure") == ["Mathematics", "Science", "Books"]
        assert taxonomy.ancestors("Books") == []

    def test_is_ancestor(self, taxonomy):
        assert taxonomy.is_ancestor("Science", "Algebra")
        assert taxonomy.is_ancestor("Algebra", "Algebra")  # reflexive
        assert not taxonomy.is_ancestor("Physics", "Algebra")

    def test_is_leaf(self, taxonomy):
        assert taxonomy.is_leaf("Algebra")
        assert not taxonomy.is_leaf("Mathematics")

    def test_leaves(self, taxonomy):
        leaves = set(taxonomy.leaves())
        assert "Algebra" in leaves
        assert "Calculus" in leaves
        assert "Books" not in leaves

    def test_descendants(self, taxonomy):
        descendants = taxonomy.descendants("Mathematics")
        assert set(descendants) == {"Pure", "Applied", "Discrete", "Algebra", "Calculus"}

    def test_descendants_of_leaf_empty(self, taxonomy):
        assert taxonomy.descendants("Algebra") == []

    def test_lowest_common_ancestor(self, taxonomy):
        assert taxonomy.lowest_common_ancestor("Algebra", "Calculus") == "Pure"
        assert taxonomy.lowest_common_ancestor("Algebra", "Physics") == "Science"
        assert taxonomy.lowest_common_ancestor("Algebra", "Literature") == "Books"
        assert taxonomy.lowest_common_ancestor("Algebra", "Algebra") == "Algebra"

    def test_unknown_topic_raises(self, taxonomy):
        with pytest.raises(TaxonomyError):
            taxonomy.parent("ghost")
        with pytest.raises(TaxonomyError):
            taxonomy.depth("ghost")


class TestSiblingCounts:
    """Figure 1's sibling counts drive Example 1's arithmetic exactly."""

    @pytest.fixture
    def taxonomy(self) -> Taxonomy:
        return figure1_fragment()

    def test_root_has_no_siblings(self, taxonomy):
        assert taxonomy.sibling_count("Books") == 0

    @pytest.mark.parametrize(
        ("topic", "expected"),
        [("Algebra", 1), ("Pure", 2), ("Mathematics", 3), ("Science", 3)],
    )
    def test_example1_sibling_counts(self, taxonomy, topic, expected):
        assert taxonomy.sibling_count(topic) == expected


class TestStatistics:
    def test_max_depth(self):
        taxonomy = figure1_fragment()
        assert taxonomy.max_depth() == 4

    def test_branching_stats(self):
        stats = figure1_fragment().branching_stats()
        # Books + 4 + 4 + 3 + 2 topics along the Figure 1 fragment.
        assert stats["topics"] == 14
        assert stats["max_depth"] == 4
        assert stats["leaves"] == 10
        assert stats["inner"] == 4
        assert stats["mean_branching"] == pytest.approx((4 + 4 + 3 + 2) / 4)

    def test_single_node_stats(self):
        stats = Taxonomy("R").branching_stats()
        assert stats["topics"] == 1
        assert stats["mean_branching"] == 0.0


@given(st.lists(st.integers(0, 9), min_size=1, max_size=60))
def test_property_paths_always_reach_root(child_choices):
    """Property: after arbitrary valid insertions, every topic's path ends
    at the root and depths are consistent with path lengths."""
    taxonomy = Taxonomy("R")
    names = ["R"]
    for i, choice in enumerate(child_choices):
        parent = names[choice % len(names)]
        name = f"t{i}"
        taxonomy.add_topic(name, parent)
        names.append(name)
    for topic in taxonomy:
        path = taxonomy.path_to_root(topic)
        assert path[-1] == "R"
        assert len(path) == taxonomy.depth(topic) + 1
        # sibling count consistency: every child of my parent shares it
        parent = taxonomy.parent(topic)
        if parent is not None:
            assert topic in taxonomy.children(parent)
            assert taxonomy.sibling_count(topic) == len(taxonomy.children(parent)) - 1


@given(st.lists(st.integers(0, 9), min_size=2, max_size=40))
def test_property_lca_is_common_ancestor(child_choices):
    """Property: the LCA of two topics is an ancestor of both and deeper
    than any other common ancestor."""
    taxonomy = Taxonomy("R")
    names = ["R"]
    for i, choice in enumerate(child_choices):
        parent = names[choice % len(names)]
        name = f"t{i}"
        taxonomy.add_topic(name, parent)
        names.append(name)
    first, second = names[-1], names[len(names) // 2]
    lca = taxonomy.lowest_common_ancestor(first, second)
    assert taxonomy.is_ancestor(lca, first)
    assert taxonomy.is_ancestor(lca, second)
    common = set(taxonomy.path_to_root(first)) & set(taxonomy.path_to_root(second))
    assert taxonomy.depth(lca) == max(taxonomy.depth(t) for t in common)
