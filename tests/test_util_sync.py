"""Tests for the sanctioned concurrency primitives (``repro.util.sync``).

Two layers:

* unit tests pin the single-threaded contract — builders run exactly
  when the bare-dict code they replace ran them, pickling drops OS locks
  but keeps data and guard sharing;
* ``@pytest.mark.concurrency`` stress tests drive the real seed bugs:
  N reader threads racing an invalidating writer against
  :class:`ProfileStore` (whose seed ``matrix()`` could return ``None``
  mid-invalidation) and :class:`TrustGraph` (whose seed
  ``positive_successors`` handed out a live dict that edge mutation
  resized under iterating readers).  Results must stay byte-identical
  to a serial run — the writers only re-state identical data.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore
from repro.trust.graph import TrustGraph
from repro.util.sync import AtomicSwap, GuardedCache, ReentrantGuard

# ---------------------------------------------------------------------------
# ReentrantGuard
# ---------------------------------------------------------------------------


class TestReentrantGuard:
    def test_context_manager_returns_self(self):
        guard = ReentrantGuard("g")
        with guard as held:
            assert held is guard

    def test_reentrant(self):
        guard = ReentrantGuard()
        with guard:
            with guard:  # must not deadlock
                pass

    def test_repr_names_the_guard(self):
        assert "profile-store" in repr(ReentrantGuard("profile-store"))

    def test_pickle_rehydrates_a_fresh_lock(self):
        guard = ReentrantGuard("g")
        with guard:  # pickling while held must not ship a held lock
            clone = pickle.loads(pickle.dumps(guard))
        assert clone.name == "g"
        with clone:  # fresh, unheld, usable
            pass


# ---------------------------------------------------------------------------
# GuardedCache
# ---------------------------------------------------------------------------


class TestGuardedCache:
    def test_get_or_build_builds_once_per_key(self):
        calls: list[str] = []
        cache: GuardedCache[str, str] = GuardedCache()

        def build(key: str) -> str:
            calls.append(key)
            return key.upper()

        assert cache.get_or_build("a", build) == "A"
        assert cache.get_or_build("a", build) == "A"
        assert cache.get_or_build("b", build) == "B"
        assert calls == ["a", "b"]

    def test_falsy_values_are_cached(self):
        calls: list[str] = []
        cache: GuardedCache[str, dict] = GuardedCache()

        def build(key: str) -> dict:
            calls.append(key)
            return {}

        assert cache.get_or_build("x", build) == {}
        assert cache.get_or_build("x", build) == {}
        assert calls == ["x"]

    def test_invalidate_one_key_opens_a_new_epoch(self):
        cache: GuardedCache[str, int] = GuardedCache()
        cache.store("a", 1)
        cache.store("b", 2)
        cache.invalidate("a")
        assert cache.peek("a") is None
        assert cache.peek("b") == 2
        assert cache.get_or_build("a", lambda _k: 10) == 10

    def test_invalidate_all(self):
        cache: GuardedCache[str, int] = GuardedCache()
        cache.store("a", 1)
        cache.store("b", 2)
        cache.invalidate()
        assert len(cache) == 0
        assert "a" not in cache

    def test_snapshot_is_a_copy(self):
        cache: GuardedCache[str, int] = GuardedCache()
        cache.store("a", 1)
        snap = cache.snapshot()
        snap["b"] = 2
        assert "b" not in cache

    def test_reentrant_sibling_fill_through_shared_guard(self):
        guard = ReentrantGuard("shared")
        outer: GuardedCache[str, int] = GuardedCache("outer", guard=guard)
        inner: GuardedCache[str, int] = GuardedCache("inner", guard=guard)

        def build_outer(key: str) -> int:
            # Builder calls back into the sibling cache while the shared
            # guard is held — the ProfileStore.matrix()-via-profile() shape.
            return inner.get_or_build(key, lambda k: len(k)) + 1

        assert outer.get_or_build("abc", build_outer) == 4
        assert inner.peek("abc") == 3

    def test_pickle_keeps_data_and_guard_sharing(self):
        guard = ReentrantGuard("shared")
        left: GuardedCache[str, int] = GuardedCache("left", guard=guard)
        right: GuardedCache[str, int] = GuardedCache("right", guard=guard)
        left.store("k", 1)
        left2, right2 = pickle.loads(pickle.dumps((left, right)))
        assert left2.peek("k") == 1
        assert left2.held() is right2.held()  # sibling tie survives the trip


# ---------------------------------------------------------------------------
# AtomicSwap
# ---------------------------------------------------------------------------


class TestAtomicSwap:
    def test_starts_empty(self):
        assert AtomicSwap[int]().get() is None

    def test_get_or_build_builds_once(self):
        calls: list[int] = []
        slot: AtomicSwap[int] = AtomicSwap()

        def build() -> int:
            calls.append(1)
            return 7

        assert slot.get_or_build(build) == 7
        assert slot.get_or_build(build) == 7
        assert calls == [1]

    def test_swap_returns_previous(self):
        slot: AtomicSwap[int] = AtomicSwap()
        assert slot.swap(1) is None
        assert slot.swap(2) == 1
        assert slot.get() == 2

    def test_clear_empties_the_slot(self):
        slot: AtomicSwap[int] = AtomicSwap()
        slot.swap(5)
        assert slot.clear() == 5
        assert slot.get() is None

    def test_pickle_keeps_value(self):
        slot: AtomicSwap[int] = AtomicSwap("s")
        slot.swap(3)
        clone = pickle.loads(pickle.dumps(slot))
        assert clone.get() == 3
        assert clone.name == "s"


# ---------------------------------------------------------------------------
# Multi-threaded stress — N readers vs. an invalidating writer.
# ---------------------------------------------------------------------------

READERS = 4
ITERATIONS = 400


@pytest.mark.concurrency
class TestConcurrencyStress:
    def test_guarded_cache_racing_readers_build_once(self):
        calls: list[str] = []
        lock = threading.Lock()
        cache: GuardedCache[str, str] = GuardedCache()

        def build(key: str) -> str:
            with lock:
                calls.append(key)
            return key * 2

        keys = [f"k{i}" for i in range(8)]

        def reader(_: int) -> bool:
            return all(
                cache.get_or_build(key, build) == key * 2
                for _ in range(ITERATIONS)
                for key in keys
            )

        with ThreadPoolExecutor(max_workers=READERS) as pool:
            assert all(pool.map(reader, range(READERS)))
        assert sorted(calls) == sorted(keys)  # exactly one build per key

    def test_profile_store_matrix_with_invalidating_writer(
        self, tiny_dataset, figure1
    ):
        """Seed regression: ``matrix()`` returned ``None`` mid-invalidation.

        The writer only re-states the same ratings (invalidate, no data
        change), so every read must be byte-identical to the serial run.
        """
        store = ProfileStore(tiny_dataset, TaxonomyProfileBuilder(figure1))
        serial = store.matrix()
        expected_ids = list(serial.ids)
        expected_dense = serial.dense.copy()
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                store.invalidate()

        def reader(_: int) -> bool:
            for _ in range(ITERATIONS):
                matrix = store.matrix()
                if matrix is None:
                    return False
                if matrix.ids != expected_ids:
                    return False
                if not np.array_equal(matrix.dense, expected_dense):
                    return False
            return True

        with ThreadPoolExecutor(max_workers=READERS + 1) as pool:
            writer_future = pool.submit(writer)
            results = list(pool.map(reader, range(READERS)))
            stop.set()
            writer_future.result()
        assert all(results)

    def test_trust_graph_positive_successors_with_edge_writer(self):
        """Seed regression: readers iterated a live dict the writer resized.

        The writer toggles one edge (retract, re-state the identical
        weight), so every snapshot a reader sees is one of the two valid
        serial states — and iteration must never blow up.
        """
        graph = TrustGraph.from_edges(
            [("a", "b", 0.9), ("a", "c", 0.8), ("b", "c", 0.7)]
        )
        full = {"b": 0.9, "c": 0.8}
        toggled = {"c": 0.8}
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                graph.remove_edge("a", "b")
                graph.add_edge("a", "b", 0.9)

        def reader(_: int) -> bool:
            for _ in range(ITERATIONS):
                snapshot = dict(graph.positive_successors("a"))
                if snapshot not in (full, toggled):
                    return False
                levels = graph.bfs_levels("b")
                if levels != {"b": 0, "c": 1}:
                    return False
            return True

        with ThreadPoolExecutor(max_workers=READERS + 1) as pool:
            writer_future = pool.submit(writer)
            results = list(pool.map(reader, range(READERS)))
            stop.set()
            writer_future.result()
        assert all(results)
