"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.models import Agent, Dataset, Product, Rating, TrustStatement
from repro.core.taxonomy import Taxonomy, figure1_fragment
from repro.datasets.generators import CommunityConfig, generate_community


@pytest.fixture
def figure1() -> Taxonomy:
    """The Figure 1 Amazon-fragment taxonomy."""
    return figure1_fragment()


@pytest.fixture
def tiny_dataset() -> Dataset:
    """A hand-built four-agent community with known structure.

    Trust:  alice -> bob (0.8), alice -> carol (0.5), bob -> carol (0.9),
            carol -> dave (0.7), dave -> alice (0.6), alice -> eve? no (eve
            is isolated in trust but owns ratings).
    """
    dataset = Dataset()
    for name in ("alice", "bob", "carol", "dave", "eve"):
        dataset.add_agent(Agent(uri=f"http://example.org/{name}", name=name.title()))

    def uri(name: str) -> str:
        return f"http://example.org/{name}"

    products = {
        "isbn:1": frozenset({"Algebra"}),
        "isbn:2": frozenset({"Calculus"}),
        "isbn:3": frozenset({"Physics"}),
        "isbn:4": frozenset({"Literature"}),
        "isbn:5": frozenset({"Algebra", "Physics"}),
    }
    for identifier, descriptors in products.items():
        dataset.add_product(
            Product(identifier=identifier, title=identifier, descriptors=descriptors)
        )

    trust_edges = [
        ("alice", "bob", 0.8),
        ("alice", "carol", 0.5),
        ("bob", "carol", 0.9),
        ("carol", "dave", 0.7),
        ("dave", "alice", 0.6),
    ]
    for source, target, value in trust_edges:
        dataset.add_trust(TrustStatement(source=uri(source), target=uri(target), value=value))

    ratings = [
        ("alice", "isbn:1", 1.0),
        ("alice", "isbn:2", 1.0),
        ("bob", "isbn:1", 1.0),
        ("bob", "isbn:3", 1.0),
        ("carol", "isbn:2", 1.0),
        ("carol", "isbn:4", 1.0),
        ("dave", "isbn:5", 1.0),
        ("eve", "isbn:4", 1.0),
    ]
    for agent, product, value in ratings:
        dataset.add_rating(Rating(agent=uri(agent), product=product, value=value))
    dataset.validate()
    return dataset


@pytest.fixture(scope="session")
def small_community():
    """A generated 120-agent community, shared across the session."""
    config = CommunityConfig(n_agents=120, n_products=240, n_clusters=6, seed=11)
    return generate_community(config)
