"""Tests for the reprograph whole-program pass (RL100–RL104).

Fixtures build throwaway mini-packages on disk (the symbol table derives
module names from the ``__init__.py`` chain, so a ``tmp/repro/web/...``
tree produces real ``repro.web.*`` module names) and run either a single
graph rule over the resulting :class:`ProjectIndex` or the full CLI.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.contracts import ArchitectureContractRule, layer_of
from repro.analysis.dataflow import ForkSafetyRule, TaintRule
from repro.analysis.engine import Finding, LintEngine, lint_project
from repro.analysis.graph import DeadModuleRule, ImportCycleRule, ModuleGraph
from repro.analysis.rules import DEFAULT_GRAPH_RULES, DEFAULT_RULES, all_rule_codes
from repro.analysis.sarif import findings_to_sarif, format_findings_sarif
from repro.analysis.symbols import ProjectIndex, module_name_for_path

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_project(root: Path, files: dict[str, str]) -> list[Path]:
    """Write a mini-package tree and return the created file paths."""
    paths = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return paths


def build_index(root: Path, files: dict[str, str]) -> ProjectIndex:
    return ProjectIndex.build(write_project(root, files))


def codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestSymbols:
    def test_module_names_follow_init_chain(self, tmp_path):
        paths = write_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/web/__init__.py": "",
                "repro/web/crawler.py": "",
                "loose_script.py": "",
            },
        )
        names = [module_name_for_path(p) for p in paths]
        assert names == ["repro", "repro.web", "repro.web.crawler", "loose_script"]

    def test_import_scopes_classified(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/a.py": """
                    from typing import TYPE_CHECKING

                    from repro import core

                    if TYPE_CHECKING:
                        import json

                    def lazy():
                        import os
                        return os
                """,
            },
        )
        scopes = {r.target: r.scope for r in index.modules["repro.a"].imports}
        assert scopes["repro.core"] == "module"
        assert scopes["json"] == "type-checking"
        assert scopes["os"] == "lazy"

    def test_from_package_import_submodule_canonicalized(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/core/models.py": "",
                "repro/b.py": "from repro.core import models\n",
            },
        )
        targets = [r.target for r in index.modules["repro.b"].imports]
        assert targets == ["repro.core.models"]


class TestLayerOf:
    @pytest.mark.parametrize(
        ("module", "layer"),
        [
            ("repro.web.crawler", "web"),
            ("repro.core", "core"),
            ("repro.cli", "cli"),
            ("repro", ""),
            ("tests.test_foo", None),
            ("json", None),
        ],
    )
    def test_layers(self, module, layer):
        assert layer_of(module) == layer


class TestArchitectureContract:
    def _findings(self, tmp_path, files):
        index = build_index(tmp_path, files)
        return list(ArchitectureContractRule().check_project(index))

    def test_core_importing_trust_violates(self, tmp_path):
        findings = self._findings(
            tmp_path,
            {
                "repro/__init__.py": "from .core import bad\n",
                "repro/core/__init__.py": "",
                "repro/core/bad.py": "from repro.trust import metric\n",
                "repro/trust/__init__.py": "",
                "repro/trust/metric.py": "",
            },
        )
        assert codes(findings) == ["RL100"]
        assert "layer 'core'" in findings[0].message
        assert findings[0].path.endswith("bad.py")

    def test_allowed_edges_stay_clean(self, tmp_path):
        findings = self._findings(
            tmp_path,
            {
                "repro/__init__.py": "from .web import crawler\n",
                "repro/core/__init__.py": "",
                "repro/core/models.py": "",
                "repro/semweb/__init__.py": "from repro.core import models\n",
                "repro/trust/__init__.py": "from repro.core import models\n",
                "repro/web/__init__.py": "",
                "repro/web/crawler.py": (
                    "from repro.core import models\nfrom repro import semweb\n"
                ),
                "repro/evaluation/__init__.py": (
                    "from repro import core, semweb, trust, web\n"
                ),
            },
        )
        assert findings == []

    def test_lazy_import_across_forbidden_edge_still_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/trust/__init__.py": "",
                "repro/trust/metric.py": """
                    def compute():
                        from repro.web import crawler
                        return crawler
                """,
                "repro/web/__init__.py": "",
                "repro/web/crawler.py": "",
            },
        )
        assert codes(findings) == ["RL100"]
        assert "lazily" in findings[0].message

    def test_documented_lazy_core_to_perf_allowed(self, tmp_path):
        findings = self._findings(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/core/similarity.py": """
                    def engine():
                        from repro.perf import kernels
                        return kernels
                """,
                "repro/perf/__init__.py": "",
                "repro/perf/kernels.py": "",
            },
        )
        assert findings == []

    def test_module_scope_core_to_perf_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/core/similarity.py": "from repro.perf import kernels\n",
                "repro/perf/__init__.py": "",
                "repro/perf/kernels.py": "",
            },
        )
        assert codes(findings) == ["RL100"]

    def test_type_checking_import_always_allowed(self, tmp_path):
        findings = self._findings(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/core/models.py": """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from repro.web import crawler
                """,
                "repro/web/__init__.py": "",
                "repro/web/crawler.py": "",
            },
        )
        assert findings == []


TAINT_SINK = {
    "repro/__init__.py": (
        "from .web import crawler\nfrom .trust import appleseed\n"
    ),
    "repro/trust/__init__.py": "",
    "repro/trust/appleseed.py": """
        def spread(weight):
            return weight
    """,
    "repro/web/__init__.py": "",
}


class TestTaint:
    def _findings(self, tmp_path, crawler_source):
        files = dict(TAINT_SINK)
        files["repro/web/crawler.py"] = crawler_source
        index = build_index(tmp_path, files)
        return list(TaintRule().check_project(index))

    def test_direct_unclamped_flow_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from repro.trust.appleseed import spread

            def consume(document):
                value = float(document)
                return spread(value)
            """,
        )
        assert codes(findings) == ["RL101"]
        assert "repro.trust.appleseed.spread" in findings[0].message

    def test_interprocedural_return_carries_taint(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from repro.trust.appleseed import spread

            def parse(document):
                weights = {}
                weights["x"] = float(document)
                return sorted(weights.items())

            def consume(document):
                return spread(parse(document))
            """,
        )
        assert codes(findings) == ["RL101"]

    def test_clamped_flow_is_clean(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from repro.core.models import clamp_score
            from repro.trust.appleseed import spread

            def consume(document):
                value = clamp_score(float(document))
                return spread(value)
            """,
        )
        assert findings == []

    def test_validated_constructor_is_clean(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from repro.core.models import TrustStatement
            from repro.trust.appleseed import spread

            def consume(document):
                statement = TrustStatement(
                    source="a", target="b", value=float(document)
                )
                return spread(statement)
            """,
        )
        assert findings == []

    def test_manual_minmax_is_not_a_recognized_sanitizer(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from repro.trust.appleseed import spread

            def consume(document):
                value = min(max(float(document), -1.0), 1.0)
                return spread(value)
            """,
        )
        assert codes(findings) == ["RL101"]

    def test_non_source_module_float_not_tainted(self, tmp_path):
        files = dict(TAINT_SINK)
        files["repro/web/crawler.py"] = ""
        files["repro/evaluation/__init__.py"] = """
            from repro.trust.appleseed import spread

            def consume(document):
                return spread(float(document))
        """
        index = build_index(tmp_path, files)
        assert list(TaintRule().check_project(index)) == []


class TestForkSafety:
    def _findings(self, tmp_path, worker_module):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "from .perf import jobs\n",
                "repro/perf/__init__.py": "",
                "repro/perf/jobs.py": worker_module,
            },
        )
        return list(ForkSafetyRule().check_project(index))

    def test_worker_reading_module_cache_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            _CACHE = {}

            def worker(item):
                return _CACHE.get(item)

            def run(runner, items):
                return runner.map(worker, items)
            """,
        )
        assert codes(findings) == ["RL102"]
        assert "_CACHE" in findings[0].message

    def test_worker_reading_module_rng_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            import random

            _RNG = random.Random(7)

            def worker(item):
                return item * _RNG.random()

            def run(runner, items):
                return runner.map_seeded(worker, items)
            """,
        )
        assert codes(findings) == ["RL102"]
        assert "RNG state" in findings[0].message

    def test_partial_wrapped_worker_resolved(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from functools import partial

            _CACHE = {}

            def worker(config, item):
                return _CACHE.get(item), config

            def run(runner, items):
                return runner.submit(partial(worker, "cfg"), items)
            """,
        )
        assert codes(findings) == ["RL102"]

    def test_clean_worker_passes(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            _CACHE = {}

            def lookup(item):
                return _CACHE.get(item)

            def worker(item):
                cache = {}
                return cache.get(item)

            def run(runner, items):
                return runner.map(worker, items)
            """,
        )
        assert findings == []

    def test_local_shadowing_is_not_a_hazard(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            _CACHE = {}

            def worker(item, _CACHE=None):
                return _CACHE

            def run(runner, items):
                return runner.map(worker, items)
            """,
        )
        assert findings == []


class TestImportCycles:
    def test_module_scope_cycle_flagged(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "from . import a\n",
                "repro/a.py": "from repro import b\n",
                "repro/b.py": "from repro import a\n",
            },
        )
        findings = list(ImportCycleRule().check_project(index))
        assert codes(findings) == ["RL104"]
        assert "repro.a -> repro.b -> repro.a" in findings[0].message

    def test_lazy_edge_breaks_cycle(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "from . import a\n",
                "repro/a.py": "from repro import b\n",
                "repro/b.py": """
                    def late():
                        from repro import a
                        return a
                """,
            },
        )
        assert list(ImportCycleRule().check_project(index)) == []


class TestDeadModules:
    def test_orphan_module_flagged(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "from . import used\n",
                "repro/used.py": "",
                "repro/orphan.py": "",
            },
        )
        findings = list(DeadModuleRule().check_project(index))
        assert codes(findings) == ["RL103"]
        assert "repro.orphan" in findings[0].message

    def test_without_package_root_rule_stays_silent(self, tmp_path):
        index = build_index(tmp_path, {"repro/orphan_standalone.py": ""})
        assert list(DeadModuleRule().check_project(index)) == []

    def test_reachability_includes_parent_packages(self, tmp_path):
        index = build_index(
            tmp_path,
            {
                "repro/__init__.py": "from .web import crawler\n",
                "repro/web/__init__.py": "from . import helper\n",
                "repro/web/crawler.py": "",
                "repro/web/helper.py": "",
            },
        )
        graph = ModuleGraph(index)
        live = graph.reachable(("repro",))
        assert {"repro", "repro.web", "repro.web.crawler", "repro.web.helper"} <= live


class TestEngineIntegration:
    def test_one_pass_reports_file_and_graph_findings(self, tmp_path):
        files = write_project(
            tmp_path,
            {
                "repro/__init__.py": "from .core import bad\n",
                "repro/core/__init__.py": "",
                "repro/core/bad.py": (
                    "from repro.trust import metric\n\n"
                    "LEVEL = metric.weight(trust=1.5)\n"
                ),
                "repro/trust/__init__.py": "",
                "repro/trust/metric.py": "",
            },
        )
        engine = LintEngine(DEFAULT_RULES, graph_rules=DEFAULT_GRAPH_RULES)
        found = codes(engine.lint_project([tmp_path]))
        assert "RL100" in found  # graph rule
        assert "RL006" in found  # file rule, same invocation

    def test_suppression_comment_silences_graph_finding(self, tmp_path):
        write_project(
            tmp_path,
            {
                "repro/__init__.py": "from .core import bad\n",
                "repro/core/__init__.py": "",
                "repro/core/bad.py": (
                    "from repro.trust import metric  # reprolint: disable=RL100\n"
                ),
                "repro/trust/__init__.py": "",
                "repro/trust/metric.py": "",
            },
        )
        engine = LintEngine(DEFAULT_RULES, graph_rules=DEFAULT_GRAPH_RULES)
        assert engine.lint_project([tmp_path]) == []

    def test_select_filters_graph_rules(self, tmp_path):
        write_project(
            tmp_path,
            {
                "repro/__init__.py": "from .core import bad\n",
                "repro/core/__init__.py": "",
                "repro/core/bad.py": "from repro.trust import metric\n",
                "repro/trust/__init__.py": "",
                "repro/trust/metric.py": "",
            },
        )
        engine = LintEngine(
            DEFAULT_RULES, select={"RL104"}, graph_rules=DEFAULT_GRAPH_RULES
        )
        assert engine.lint_project([tmp_path]) == []

    def test_all_rule_codes_covers_graph_rules(self):
        registered = all_rule_codes()
        for code in ("RL001", "RL100", "RL101", "RL102", "RL103", "RL104"):
            assert code in registered


GOLDEN_FINDINGS = [
    Finding(
        path="src/repro/core/bad.py",
        line=3,
        column=1,
        code="RL100",
        message="layer 'core' imports 'repro.trust.metric' (layer 'trust')",
        summary="import violates the package layering contract",
    ),
    Finding(
        path="src/repro/web/crawler.py",
        line=12,
        column=9,
        code="RL101",
        message="value parsed from untrusted web content flows into repro.trust.appleseed.spread",
        summary="untrusted parsed value reaches a scoring sink without clamp/validate",
    ),
]


class TestSarif:
    def test_matches_golden_file(self):
        golden = REPO_ROOT / "tests" / "data" / "reprolint_golden.sarif"
        assert format_findings_sarif(GOLDEN_FINDINGS) == golden.read_text(
            encoding="utf-8"
        ).rstrip("\n")

    def test_document_structure(self):
        doc = findings_to_sarif(GOLDEN_FINDINGS)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "RL100",
            "RL101",
        ]
        assert [r["ruleId"] for r in run["results"]] == ["RL100", "RL101"]
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/bad.py"
        assert location["region"] == {"startLine": 3, "startColumn": 1}

    def test_empty_findings_valid_document(self):
        doc = findings_to_sarif([])
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []


VIOLATION_TREE = {
    # __init__ re-exports both subsystems so editing bad.py never turns
    # repro.trust into RL103 dead-module noise.
    "repro/__init__.py": "from .core import bad\nfrom .trust import metric\n",
    "repro/core/__init__.py": "",
    "repro/core/bad.py": "from repro.trust import metric\n",
    "repro/trust/__init__.py": "",
    "repro/trust/metric.py": "",
}


class TestBaselineWorkflow:
    def test_findings_match_then_expire(self, tmp_path):
        files = write_project(tmp_path, VIOLATION_TREE)
        findings = lint_project([tmp_path])
        assert codes(findings) == ["RL100"]

        baseline = Baseline.from_findings(findings)
        result = baseline.apply(findings)
        assert result.ok
        assert codes(result.suppressed) == ["RL100"]

        # Pay the debt: the finding disappears, the entry goes stale.
        bad = files[2]
        assert bad.name == "bad.py"
        bad.write_text("", encoding="utf-8")
        result = baseline.apply(lint_project([tmp_path]))
        assert not result.ok
        assert result.new == []
        assert [e.code for e in result.stale] == ["RL100"]

    def test_baseline_survives_line_drift(self, tmp_path):
        files = write_project(tmp_path, VIOLATION_TREE)
        baseline = Baseline.from_findings(lint_project([tmp_path]))
        bad = files[2]
        bad.write_text(
            '"""Docstring pushing the import down."""\n\n\n'
            + bad.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        result = baseline.apply(lint_project([tmp_path]))
        assert result.ok

    def test_new_finding_not_covered(self, tmp_path):
        files = write_project(tmp_path, VIOLATION_TREE)
        baseline = Baseline.from_findings(lint_project([tmp_path]))
        bad = files[2]
        bad.write_text(
            bad.read_text(encoding="utf-8")
            + "from repro.trust import metric as second\n",
            encoding="utf-8",
        )
        result = baseline.apply(lint_project([tmp_path]))
        assert not result.ok
        assert codes(result.new) == ["RL100"]
        assert codes(result.suppressed) == ["RL100"]  # the original, still covered

    def test_roundtrip_through_file(self, tmp_path):
        write_project(tmp_path, VIOLATION_TREE)
        findings = lint_project([tmp_path])
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).write(path)
        reloaded = Baseline.load(path)
        assert reloaded.apply(findings).ok
        assert json.loads(path.read_text(encoding="utf-8"))["version"] == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == []

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestCli:
    def test_seeded_layering_violation_exits_nonzero(self, tmp_path, capsys):
        write_project(tmp_path, VIOLATION_TREE)
        assert main([str(tmp_path)]) == 1
        assert "RL100" in capsys.readouterr().out

    def test_seeded_taint_path_exits_nonzero(self, tmp_path, capsys):
        files = dict(TAINT_SINK)
        files["repro/web/crawler.py"] = """
            from repro.trust.appleseed import spread

            def consume(document):
                return spread(float(document))
        """
        write_project(tmp_path, files)
        assert main([str(tmp_path)]) == 1
        assert "RL101" in capsys.readouterr().out

    def test_write_then_check_baseline_roundtrip(self, tmp_path, capsys):
        write_project(tmp_path, VIOLATION_TREE)
        baseline_path = tmp_path / "baseline.json"
        assert (
            main([str(tmp_path), "--baseline", str(baseline_path), "--write-baseline"])
            == 0
        )
        assert main([str(tmp_path), "--baseline", str(baseline_path)]) == 0
        out = capsys.readouterr().out
        assert "baselined legacy finding(s) suppressed" in out

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        files = write_project(tmp_path, VIOLATION_TREE)
        baseline_path = tmp_path / "baseline.json"
        main([str(tmp_path), "--baseline", str(baseline_path), "--write-baseline"])
        files[2].write_text("", encoding="utf-8")
        assert main([str(tmp_path), "--baseline", str(baseline_path)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_sarif_file_written(self, tmp_path, capsys):
        write_project(tmp_path, VIOLATION_TREE)
        sarif_path = tmp_path / "out.sarif"
        assert main([str(tmp_path), "--sarif", str(sarif_path)]) == 1
        capsys.readouterr()
        document = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert document["version"] == "2.1.0"
        assert [r["ruleId"] for r in document["runs"][0]["results"]] == ["RL100"]

    def test_sarif_under_baseline_reports_only_new_findings(self, tmp_path, capsys):
        write_project(tmp_path, VIOLATION_TREE)
        baseline_path = tmp_path / "baseline.json"
        sarif_path = tmp_path / "out.sarif"
        main([str(tmp_path), "--baseline", str(baseline_path), "--write-baseline"])
        assert (
            main(
                [
                    str(tmp_path),
                    "--baseline",
                    str(baseline_path),
                    "--sarif",
                    str(sarif_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        document = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert document["runs"][0]["results"] == []

    def test_sarif_stdout_format(self, tmp_path, capsys):
        write_project(tmp_path, VIOLATION_TREE)
        assert main([str(tmp_path), "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"

    def test_write_baseline_requires_baseline_flag(self, tmp_path, capsys):
        write_project(tmp_path, VIOLATION_TREE)
        assert main([str(tmp_path), "--write-baseline"]) == 2
        assert "--write-baseline requires" in capsys.readouterr().err

    def test_list_rules_includes_graph_codes(self, capsys):
        assert main(["--list-rules", "."]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL100", "RL101", "RL102", "RL103", "RL104"):
            assert code in out


class TestSelfCheck:
    """The repo must hold itself to the RL1xx rules (modulo the baseline)."""

    def test_repo_is_clean_under_graph_rules(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        targets = [
            path
            for path in ("src", "tests", "benchmarks", "examples")
            if Path(path).exists()
        ]
        findings = lint_project(targets)
        baseline = Baseline.load(".reprolint-baseline.json")
        result = baseline.apply(findings)
        assert result.new == [], "non-baselined findings:\n" + "\n".join(
            f.render() for f in result.new
        )
        assert result.stale == [], "stale baseline entries: " + ", ".join(
            f"{e.path}:{e.code}" for e in result.stale
        )

    def test_baseline_only_contains_known_legacy_debt(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = Baseline.load(".reprolint-baseline.json")
        # The accepted debt is the core→trust inversion, nothing else.
        assert {e.code for e in baseline.entries} == {"RL100"}
        assert all(e.path.startswith("src/repro/core/") for e in baseline.entries)
