"""Unit tests for significance testing."""

from __future__ import annotations

import random

import pytest

from repro.core.similarity import isclose
from repro.evaluation.significance import (
    bootstrap_confidence_interval,
    compare_epoch_series,
    compare_recommenders,
    holm_bonferroni,
    paired_permutation_test,
)


class TestPermutationTest:
    def test_identical_sequences_not_significant(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert isclose(paired_permutation_test(values, values), 1.0)

    def test_large_consistent_difference_significant(self):
        rng = random.Random(1)
        base = [rng.uniform(0.0, 0.2) for _ in range(30)]
        better = [v + 0.5 for v in base]
        p = paired_permutation_test(better, base, rounds=2000, seed=2)
        assert p < 0.01

    def test_pure_noise_not_significant(self):
        rng = random.Random(3)
        first = [rng.gauss(0.5, 0.1) for _ in range(30)]
        second = [rng.gauss(0.5, 0.1) for _ in range(30)]
        p = paired_permutation_test(first, second, rounds=2000, seed=4)
        assert p > 0.05

    def test_symmetry(self):
        first = [0.9, 0.8, 0.7, 0.95, 0.85]
        second = [0.1, 0.2, 0.15, 0.1, 0.2]
        p_forward = paired_permutation_test(first, second, rounds=1000, seed=5)
        p_backward = paired_permutation_test(second, first, rounds=1000, seed=5)
        assert p_forward == p_backward

    def test_p_never_exactly_zero(self):
        first = [1.0] * 20
        second = [0.0] * 20
        p = paired_permutation_test(first, second, rounds=500, seed=6)
        assert 0.0 < p < 0.01

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0, 2.0])

    def test_empty(self):
        assert isclose(paired_permutation_test([], []), 1.0)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [0.5], rounds=0)


class TestBootstrapCI:
    def test_interval_covers_true_difference(self):
        rng = random.Random(7)
        base = [rng.uniform(0.0, 1.0) for _ in range(50)]
        shifted = [v + 0.3 + rng.gauss(0.0, 0.05) for v in base]
        low, high = bootstrap_confidence_interval(shifted, base, rounds=2000, seed=8)
        assert low <= 0.3 + 0.03  # mean shift inside/near the interval
        assert high >= 0.3 - 0.03
        assert low > 0.0  # clearly positive difference
        assert low < high  # a genuine interval

    def test_zero_difference_interval_straddles_zero(self):
        rng = random.Random(9)
        first = [rng.gauss(0.5, 0.2) for _ in range(40)]
        second = [v + rng.gauss(0.0, 0.2) for v in first]
        low, high = bootstrap_confidence_interval(first, second, rounds=2000, seed=10)
        assert low <= 0.0 <= high or abs(low) < 0.15

    def test_empty(self):
        assert bootstrap_confidence_interval([], []) == (0.0, 0.0)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], [0.5], confidence=1.0)

    def test_deterministic(self):
        first = [0.5, 0.6, 0.7]
        second = [0.4, 0.5, 0.6]
        a = bootstrap_confidence_interval(first, second, rounds=500, seed=11)
        b = bootstrap_confidence_interval(first, second, rounds=500, seed=11)
        assert a == b


class TestCompareRecommenders:
    def test_personalized_vs_random_significant(self, small_community):
        from repro.core.recommender import PopularityRecommender, RandomRecommender
        from repro.evaluation.protocol import holdout_split

        split = holdout_split(
            small_community.dataset, per_user=3, min_ratings=8, max_users=30, seed=12
        )
        result = compare_recommenders(
            PopularityRecommender(dataset=split.train),
            RandomRecommender(dataset=split.train),
            split,
            rounds=1000,
            seed=13,
        )
        assert result.n_users == 30
        assert result.mean_difference >= 0.0
        assert 0.0 < result.p_value <= 1.0

    def test_self_comparison_not_significant(self, small_community):
        from repro.core.recommender import PopularityRecommender
        from repro.evaluation.protocol import holdout_split

        split = holdout_split(
            small_community.dataset, per_user=3, min_ratings=8, max_users=20, seed=14
        )
        method = PopularityRecommender(dataset=split.train)
        result = compare_recommenders(method, method, split, rounds=500, seed=15)
        assert isclose(result.mean_difference, 0.0)
        assert isclose(result.p_value, 1.0)
        assert not result.significant


class TestHolmBonferroni:
    def test_hand_computed_family(self):
        """Holm (1979) step-down on a four-test family, worked by hand.

        Sorted: .005, .01, .03, .04 → multipliers 4, 3, 2, 1 →
        .02, .03, .06, .04 → running max → .02, .03, .06, .06.
        """
        adjusted = holm_bonferroni([0.01, 0.04, 0.03, 0.005])
        assert adjusted == pytest.approx([0.03, 0.06, 0.06, 0.02])

    def test_single_p_unchanged(self):
        assert holm_bonferroni([0.03]) == pytest.approx([0.03])

    def test_ties_share_the_largest_multiplier(self):
        assert holm_bonferroni([0.05, 0.05, 0.05]) == pytest.approx(
            [0.15, 0.15, 0.15]
        )

    def test_capped_at_one(self):
        assert holm_bonferroni([0.6, 0.7]) == pytest.approx([1.0, 1.0])

    def test_adjusted_never_below_raw(self):
        raw = [0.001, 0.2, 0.04, 0.7, 0.03]
        adjusted = holm_bonferroni(raw)
        assert all(a >= r for a, r in zip(adjusted, raw))

    def test_monotone_in_raw_order(self):
        """A smaller raw p never gets a larger adjusted p."""
        raw = [0.01, 0.04, 0.03, 0.005, 0.2]
        adjusted = holm_bonferroni(raw)
        for i, p_i in enumerate(raw):
            for j, p_j in enumerate(raw):
                if p_i < p_j:
                    assert adjusted[i] <= adjusted[j]

    def test_empty_family(self):
        assert holm_bonferroni([]) == []

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            holm_bonferroni([0.5, 1.5])
        with pytest.raises(ValueError):
            holm_bonferroni([-0.1])


class TestCompareEpochSeries:
    def consistent_series(self, n_epochs=3, n_users=16, gap=0.3):
        rng = random.Random(99)
        first, second = [], []
        for _ in range(n_epochs):
            base = [rng.uniform(0.2, 0.4) for _ in range(n_users)]
            first.append([b + gap for b in base])
            second.append(base)
        return first, second

    def test_consistent_gap_is_significant_everywhere(self):
        first, second = self.consistent_series()
        result = compare_epoch_series(first, second, rounds=500, seed=1)
        assert result.pooled.significant
        assert result.pooled.mean_difference == pytest.approx(0.3, abs=1e-9)
        assert result.n_significant == len(result.epochs) == 3

    def test_self_comparison_not_significant(self):
        series = [[0.1, 0.2, 0.3, 0.4]] * 2
        result = compare_epoch_series(series, series, rounds=200, seed=1)
        assert not result.pooled.significant
        assert result.n_significant == 0

    def test_adjusted_at_least_raw(self):
        first, second = self.consistent_series(n_epochs=4, gap=0.05)
        result = compare_epoch_series(first, second, rounds=300, seed=2)
        for epoch, adjusted in zip(result.epochs, result.adjusted_p_values):
            assert adjusted >= epoch.p_value

    def test_pooled_counts_all_users(self):
        first, second = self.consistent_series(n_epochs=3, n_users=10)
        result = compare_epoch_series(first, second, rounds=200, seed=3)
        assert result.pooled.n_users == 30

    def test_deterministic(self):
        first, second = self.consistent_series()
        a = compare_epoch_series(first, second, rounds=300, seed=4)
        b = compare_epoch_series(first, second, rounds=300, seed=4)
        assert a == b

    def test_epoch_count_mismatch(self):
        with pytest.raises(ValueError):
            compare_epoch_series([[0.1]], [[0.1], [0.2]])

    def test_empty_series(self):
        with pytest.raises(ValueError):
            compare_epoch_series([], [])
