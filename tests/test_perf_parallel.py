"""Determinism of the parallel experiment runner.

The whole point of :class:`~repro.perf.parallel.ParallelExperimentRunner`
is that parallelism is a pure scheduling choice: any worker count must
produce results byte-identical to the serial loop.  Process-pool tests
are kept small — spawning workers dominates their runtime.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recommender import PopularityRecommender
from repro.evaluation.experiments import run_ex05_profile_overlap
from repro.evaluation.protocol import evaluate_recommender, holdout_split
from repro.perf.parallel import (
    ParallelExperimentRunner,
    derive_seed,
    split_evenly,
)


def _square(value: int) -> int:
    return value * value


def _seeded_draw(item: int, seed: int) -> tuple[int, float]:
    return item, random.Random(seed).random()


class TestSplitEvenly:
    @settings(max_examples=100, deadline=None)
    @given(
        items=st.lists(st.integers(), max_size=40),
        parts=st.integers(min_value=1, max_value=12),
    )
    def test_partition_properties(self, items, parts):
        chunks = split_evenly(items, parts)
        # Concatenation in chunk order restores the original sequence …
        assert [x for chunk in chunks for x in chunk] == items
        # … no chunk is empty, at most `parts` of them exist …
        assert all(chunks for chunks in chunks)
        assert len(chunks) <= parts
        # … and sizes are balanced within one item.
        if chunks:
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1

    def test_empty_items(self):
        assert split_evenly([], 4) == []


class TestDeriveSeed:
    def test_deterministic_and_index_sensitive(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)
        assert derive_seed(7, 3) != derive_seed(7, 4)
        assert derive_seed(7, 3) != derive_seed(8, 3)


class TestRunner:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ParallelExperimentRunner(mode="threads")
        with pytest.raises(ValueError):
            ParallelExperimentRunner(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExperimentRunner(chunksize=0)

    def test_serial_map_preserves_order(self):
        runner = ParallelExperimentRunner(mode="serial")
        assert runner.map(_square, [3, 1, 2]) == [9, 1, 4]
        assert runner.effective_workers() == 1

    def test_process_map_matches_serial(self):
        items = list(range(7))
        serial = ParallelExperimentRunner(mode="serial").map(_square, items)
        parallel = ParallelExperimentRunner(max_workers=2, mode="process").map(
            _square, items
        )
        assert parallel == serial

    def test_map_seeded_is_schedule_independent(self):
        items = list(range(6))
        serial = ParallelExperimentRunner(mode="serial").map_seeded(
            _seeded_draw, items, seed=42
        )
        parallel = ParallelExperimentRunner(max_workers=3, mode="process").map_seeded(
            _seeded_draw, items, seed=42
        )
        assert parallel == serial
        # Seeds derive from (seed, index): same item at another index draws
        # differently, so results encode position, not worker identity.
        assert len({draw for _, draw in serial}) == len(serial)

    def test_map_chunked_flattens_in_order(self):
        runner = ParallelExperimentRunner(mode="serial")
        result = runner.map_chunked(lambda chunk: [x + 1 for x in chunk], [1, 2, 3, 4])
        assert result == [2, 3, 4, 5]


class TestParallelEvaluation:
    """Experiment outputs must be byte-identical under any worker count."""

    def test_evaluate_recommender_parallel_identical(self, small_community):
        split = holdout_split(
            small_community.dataset, per_user=3, min_ratings=8, max_users=12, seed=3
        )
        recommender = PopularityRecommender(dataset=split.train)
        serial = evaluate_recommender("pop", recommender, split, top_n=10)
        parallel = evaluate_recommender(
            "pop",
            recommender,
            split,
            top_n=10,
            runner=ParallelExperimentRunner(max_workers=2, mode="process"),
        )
        assert parallel == serial

    def test_ex05_parallel_identical(self, small_community):
        serial = run_ex05_profile_overlap(small_community, n_pairs=80)
        parallel = run_ex05_profile_overlap(
            small_community,
            n_pairs=80,
            runner=ParallelExperimentRunner(max_workers=2, mode="process"),
        )
        assert parallel.render() == serial.render()
