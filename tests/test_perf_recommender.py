"""Engine wiring and caching behavior at the recommender layer.

Covers the guarantees the perf subsystem makes to its consumers: engine
choice never changes a recommendation, caches invalidate correctly, and
the two list-assembly fixes (content-based explorer, fallback refetch)
return exactly what the naive implementations would.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.models import Rating
from repro.core.neighborhood import NeighborhoodFormation
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import (
    ContentBasedExplorer,
    FallbackRecommender,
    ProfileStore,
    PureCFRecommender,
    Recommendation,
    Recommender,
    SemanticWebRecommender,
    _rank_votes,
    _vote_scores,
)
from repro.trust.graph import TrustGraph

pytest.importorskip("numpy")


def _rounded(items: list[Recommendation]) -> list[tuple[str, float]]:
    return [(item.product, round(item.score, 9)) for item in items]


@pytest.fixture
def store(small_community) -> ProfileStore:
    return ProfileStore(
        small_community.dataset, TaxonomyProfileBuilder(small_community.taxonomy)
    )


class TestProfileStoreInvalidate:
    def test_profile_is_cached(self, small_community, store):
        agent = sorted(small_community.dataset.agents)[0]
        assert store.profile(agent) is store.profile(agent)

    def test_single_agent_invalidation(self, small_community, store):
        agents = sorted(small_community.dataset.agents)
        first, second = agents[0], agents[1]
        stale_first = store.profile(first)
        stale_second = store.profile(second)
        store.invalidate(first)
        assert store.profile(first) is not stale_first
        assert store.profile(first) == stale_first  # same ratings, same profile
        assert store.profile(second) is stale_second  # untouched agent kept

    def test_full_invalidation(self, small_community, store):
        agents = sorted(small_community.dataset.agents)[:3]
        stale = [store.profile(agent) for agent in agents]
        store.invalidate()
        for agent, old in zip(agents, stale):
            assert store.profile(agent) is not old

    def test_invalidation_reflects_mutated_ratings(self, small_community, store):
        dataset = small_community.dataset
        agent = sorted(dataset.agents)[0]
        product = sorted(dataset.products)[0]
        before = store.profile(agent)
        rating = Rating(agent=agent, product=product, value=1.0)
        dataset.ratings[(agent, product)] = rating
        try:
            assert store.profile(agent) is before  # cache hides the mutation
            store.invalidate(agent)
            assert store.profile(agent) != before
        finally:
            del dataset.ratings[(agent, product)]
            store.invalidate(agent)

    def test_matrix_cached_and_dropped_on_any_invalidation(
        self, small_community, store
    ):
        matrix = store.matrix()
        assert store.matrix() is matrix
        store.invalidate(sorted(small_community.dataset.agents)[0])
        rebuilt = store.matrix()
        assert rebuilt is not matrix
        store.invalidate()
        assert store.matrix() is not rebuilt


class TestEngineEquivalence:
    """engine="numpy" and engine="python" must recommend identically."""

    def _agents(self, small_community, count=4):
        return sorted(small_community.dataset.agents)[:count]

    @pytest.mark.parametrize("representation", ["taxonomy", "product"])
    def test_pure_cf(self, small_community, store, representation):
        dataset = small_community.dataset
        kwargs = {"profiles": store} if representation == "taxonomy" else {}
        python = PureCFRecommender(
            dataset=dataset, representation=representation, engine="python", **kwargs
        )
        numpy_ = PureCFRecommender(
            dataset=dataset, representation=representation, engine="numpy", **kwargs
        )
        for agent in self._agents(small_community):
            py_weights = {
                k: round(v, 9) for k, v in python.peer_weights(agent).items()
            }
            np_weights = {
                k: round(v, 9) for k, v in numpy_.peer_weights(agent).items()
            }
            assert np_weights == py_weights
            assert _rounded(numpy_.recommend(agent)) == _rounded(
                python.recommend(agent)
            )

    def test_semantic_web_similarities(self, small_community, store):
        dataset = small_community.dataset
        graph = TrustGraph.from_dataset(dataset)

        def build(engine: str) -> SemanticWebRecommender:
            return SemanticWebRecommender(
                dataset=dataset,
                graph=graph,
                profiles=store,
                formation=NeighborhoodFormation(),
                engine=engine,
            )

        python, numpy_ = build("python"), build("numpy")
        for agent in self._agents(small_community):
            peers = python.neighborhood(agent).members()
            py = python.similarities(agent, peers)
            nu = numpy_.similarities(agent, peers)
            assert set(py) == set(nu) == peers
            for peer in peers:
                assert nu[peer] == pytest.approx(py[peer], abs=1e-9)
            assert _rounded(numpy_.recommend(agent)) == _rounded(
                python.recommend(agent)
            )

    def test_similarities_fall_back_for_unknown_peers(self, small_community, store):
        """Peers outside the packed matrix route through the python oracle."""
        dataset = small_community.dataset
        recommender = SemanticWebRecommender(
            dataset=dataset,
            graph=TrustGraph.from_dataset(dataset),
            profiles=store,
            engine="numpy",
        )
        agent = sorted(dataset.agents)[0]
        peers = {sorted(dataset.agents)[1], "http://elsewhere.example.org/ghost"}
        values = recommender.similarities(agent, peers)
        assert set(values) == peers
        assert values["http://elsewhere.example.org/ghost"] == 0.0

    def test_pure_cf_invalidate_cache(self, small_community):
        dataset = small_community.dataset
        cf = PureCFRecommender(dataset=dataset, representation="product")
        agent = sorted(dataset.agents)[0]
        cf.peer_weights(agent)
        assert cf._product_profiles and cf._product_matrix.get() is not None
        cf.invalidate_cache()
        assert not cf._product_profiles and cf._product_matrix.get() is None


class TestContentBasedExplorer:
    def test_equals_filter_after_full_ranking(self, small_community, store):
        """The pre-ranking freshness filter must commute with ranking."""
        dataset = small_community.dataset
        hybrid = SemanticWebRecommender(
            dataset=dataset,
            graph=TrustGraph.from_dataset(dataset),
            profiles=store,
            formation=NeighborhoodFormation(),
        )
        explorer = ContentBasedExplorer(inner=hybrid)
        products = dataset.products
        for agent in sorted(dataset.agents)[:6]:
            weights = hybrid.peer_weights(agent)
            exclude = set(dataset.ratings_of(agent))
            touched = set(store.profile(agent))
            scores, supporters = _vote_scores(dataset, weights, exclude)
            full = _rank_votes(scores, supporters, limit=len(scores))
            reference = [
                item
                for item in full
                if (product := products.get(item.product)) is not None
                and product.descriptors
                and product.descriptors.isdisjoint(touched)
            ][:10]
            assert explorer.recommend(agent, limit=10) == reference


@dataclass
class _FixedRecommender(Recommender):
    """Returns a fixed (possibly duplicate-carrying) list, like a merger."""

    items: list[str]

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        return [
            Recommendation(product=p, score=1.0) for p in self.items[:limit]
        ]


class TestFallbackRecommender:
    def test_refetches_when_duplicates_starve_the_first_batch(self):
        """Regression: one fetch of limit+len(have) used to under-fill.

        The fallback emits every product twice; a single batch of 5 yields
        only {A, B, C}, leaving the list one short of limit=4 even though
        the fallback knows a fourth product.
        """
        primary = _FixedRecommender(items=["A"])
        fallback = _FixedRecommender(
            items=["A", "A", "B", "B", "C", "C", "D", "D"]
        )
        combined = FallbackRecommender(primary=primary, fallback=fallback)
        result = [item.product for item in combined.recommend("agent", limit=4)]
        assert result == ["A", "B", "C", "D"]

    def test_stops_when_fallback_is_exhausted(self):
        combined = FallbackRecommender(
            primary=_FixedRecommender(items=[]),
            fallback=_FixedRecommender(items=["A", "B"]),
        )
        result = [item.product for item in combined.recommend("agent", limit=10)]
        assert result == ["A", "B"]

    def test_primary_alone_suffices(self):
        combined = FallbackRecommender(
            primary=_FixedRecommender(items=["A", "B", "C"]),
            fallback=_FixedRecommender(items=["X"]),
        )
        result = [item.product for item in combined.recommend("agent", limit=2)]
        assert result == ["A", "B"]
