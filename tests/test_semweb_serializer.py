"""Unit and property tests for N-Triples serialization and parsing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semweb.rdf import BNode, Graph, Literal, URIRef
from repro.semweb.serializer import (
    ParseError,
    parse_ntriples,
    serialize_ntriples,
    serialize_turtle,
)

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


class TestSerialize:
    def test_empty_graph(self):
        assert serialize_ntriples(Graph()) == ""

    def test_single_triple(self):
        graph = Graph([(uri("s"), uri("p"), uri("o"))])
        text = serialize_ntriples(graph)
        assert text == f"<{EX}s> <{EX}p> <{EX}o> .\n"

    def test_output_is_sorted(self):
        graph = Graph()
        graph.add((uri("z"), uri("p"), uri("o")))
        graph.add((uri("a"), uri("p"), uri("o")))
        lines = serialize_ntriples(graph).splitlines()
        assert lines == sorted(lines)

    def test_literal_with_datatype(self):
        graph = Graph([(uri("s"), uri("p"), Literal(3))])
        text = serialize_ntriples(graph)
        assert '"3"^^<http://www.w3.org/2001/XMLSchema#integer>' in text

    def test_literal_with_language(self):
        graph = Graph([(uri("s"), uri("p"), Literal("Buch", language="de"))])
        assert '"Buch"@de' in serialize_ntriples(graph)

    def test_bnode(self):
        graph = Graph([(BNode("b0"), uri("p"), uri("o"))])
        assert serialize_ntriples(graph).startswith("_:b0 ")


class TestParse:
    def test_empty(self):
        assert len(parse_ntriples("")) == 0

    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\n" f"<{EX}s> <{EX}p> <{EX}o> .\n"
        graph = parse_ntriples(text)
        assert len(graph) == 1

    def test_parse_uri_triple(self):
        graph = parse_ntriples(f"<{EX}s> <{EX}p> <{EX}o> .")
        assert (uri("s"), uri("p"), uri("o")) in graph

    def test_parse_plain_literal(self):
        graph = parse_ntriples(f'<{EX}s> <{EX}p> "hello" .')
        assert (uri("s"), uri("p"), Literal("hello")) in graph

    def test_parse_typed_literal(self):
        text = f'<{EX}s> <{EX}p> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        graph = parse_ntriples(text)
        obj = graph.value(uri("s"), uri("p"))
        assert isinstance(obj, Literal)
        assert obj.to_python() == 2

    def test_parse_language_literal(self):
        graph = parse_ntriples(f'<{EX}s> <{EX}p> "livre"@fr .')
        obj = graph.value(uri("s"), uri("p"))
        assert obj == Literal("livre", language="fr")

    def test_parse_bnode_subject(self):
        graph = parse_ntriples(f"_:b1 <{EX}p> <{EX}o> .")
        assert (BNode("b1"), uri("p"), uri("o")) in graph

    def test_parse_escaped_literal(self):
        graph = parse_ntriples(f'<{EX}s> <{EX}p> "line\\nbreak \\"q\\"" .')
        obj = graph.value(uri("s"), uri("p"))
        assert obj.lexical == 'line\nbreak "q"'

    def test_missing_dot_raises_with_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_ntriples(f"<{EX}s> <{EX}p> <{EX}o>")
        assert excinfo.value.line_number == 1

    def test_error_reports_correct_line(self):
        text = f"<{EX}s> <{EX}p> <{EX}o> .\nbroken line\n"
        with pytest.raises(ParseError) as excinfo:
            parse_ntriples(text)
        assert excinfo.value.line_number == 2

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples(f'"lit" <{EX}p> <{EX}o> .')

    def test_bnode_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples(f"<{EX}s> _:b <{EX}o> .")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples("complete nonsense")


class TestRoundTrip:
    def test_mixed_graph_roundtrip(self):
        graph = Graph()
        graph.add((uri("s"), uri("p"), uri("o")))
        graph.add((uri("s"), uri("name"), Literal("Alice")))
        graph.add((uri("s"), uri("age"), Literal(30)))
        graph.add((uri("s"), uri("score"), Literal(0.75)))
        graph.add((uri("s"), uri("active"), Literal(True)))
        graph.add((BNode("b0"), uri("p"), Literal("x", language="en")))
        assert parse_ntriples(serialize_ntriples(graph)) == graph

    def test_roundtrip_is_fixpoint(self):
        graph = Graph([(uri("s"), uri("p"), Literal('tricky "\\\n\t value'))])
        once = serialize_ntriples(graph)
        twice = serialize_ntriples(parse_ntriples(once))
        assert once == twice


_TERM_TEXT = st.text(
    alphabet=st.characters(
        codec="ascii", categories=("L", "N"), include_characters="_-"
    ),
    min_size=1,
    max_size=10,
)

# Blank-node labels are restricted to [A-Za-z0-9_]+ by construction.
_BNODE_TEXT = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N"), include_characters="_"),
    min_size=1,
    max_size=10,
)

_LITERALS = st.one_of(
    st.text(max_size=30).map(Literal),
    st.integers(-10**6, 10**6).map(Literal),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(Literal),
    st.booleans().map(Literal),
    st.tuples(st.text(max_size=10), st.sampled_from(["en", "de", "fr"])).map(
        lambda pair: Literal(pair[0], language=pair[1])
    ),
)


@given(
    st.lists(
        st.tuples(
            st.one_of(_TERM_TEXT.map(lambda t: uri(t)), _BNODE_TEXT.map(BNode)),
            _TERM_TEXT.map(lambda t: uri(t)),
            st.one_of(_TERM_TEXT.map(lambda t: uri(t)), _LITERALS),
        ),
        max_size=25,
    )
)
def test_ntriples_roundtrip_property(triples):
    """Property: serialize∘parse is the identity on graphs."""
    graph = Graph(triples)
    assert parse_ntriples(serialize_ntriples(graph)) == graph


class TestTurtle:
    def test_prefix_abbreviation(self):
        graph = Graph([(uri("s"), uri("p"), uri("o"))])
        text = serialize_turtle(graph, prefixes={"ex": EX})
        assert "@prefix ex: <http://example.org/> ." in text
        assert "ex:s" in text
        assert "ex:p ex:o ." in text

    def test_groups_by_subject(self):
        graph = Graph()
        graph.add((uri("s"), uri("p"), Literal(1)))
        graph.add((uri("s"), uri("q"), Literal(2)))
        text = serialize_turtle(graph, prefixes={"ex": EX})
        assert text.count("ex:s") == 1

    def test_no_prefixes(self):
        graph = Graph([(uri("s"), uri("p"), uri("o"))])
        text = serialize_turtle(graph)
        assert f"<{EX}s>" in text
