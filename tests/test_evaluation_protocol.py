"""Unit tests for the evaluation protocol and table rendering."""

from __future__ import annotations

import pytest

from repro.core.recommender import PopularityRecommender, RandomRecommender
from repro.evaluation.protocol import (
    Table,
    evaluate_recommender,
    holdout_split,
    kfold_splits,
)


class TestHoldoutSplit:
    def test_withholds_exactly_per_user(self, small_community):
        dataset = small_community.dataset
        split = holdout_split(dataset, per_user=3, min_ratings=8, seed=1)
        assert split.held_out
        for agent, withheld in split.held_out.items():
            assert len(withheld) == 3
            for product in withheld:
                assert (agent, product) not in split.train.ratings
                assert (agent, product) in dataset.ratings

    def test_train_keeps_other_ratings(self, small_community):
        dataset = small_community.dataset
        split = holdout_split(dataset, per_user=3, min_ratings=8, seed=1)
        withheld_total = sum(len(w) for w in split.held_out.values())
        assert len(split.train.ratings) == len(dataset.ratings) - withheld_total

    def test_original_untouched(self, small_community):
        dataset = small_community.dataset
        before = dict(dataset.ratings)
        holdout_split(dataset, per_user=3, min_ratings=8, seed=1)
        assert dataset.ratings == before

    def test_min_ratings_respected(self, small_community):
        dataset = small_community.dataset
        split = holdout_split(dataset, per_user=3, min_ratings=20, seed=1)
        for agent in split.held_out:
            positives = [
                v for v in dataset.ratings_of(agent).values() if v > 0
            ]
            assert len(positives) >= 20

    def test_max_users(self, small_community):
        split = holdout_split(
            small_community.dataset, per_user=3, min_ratings=8, max_users=5, seed=1
        )
        assert len(split.held_out) == 5

    def test_deterministic(self, small_community):
        first = holdout_split(small_community.dataset, per_user=3, min_ratings=8, seed=4)
        second = holdout_split(small_community.dataset, per_user=3, min_ratings=8, seed=4)
        assert first.held_out == second.held_out

    def test_seed_changes_split(self, small_community):
        first = holdout_split(small_community.dataset, per_user=3, min_ratings=8, seed=1)
        second = holdout_split(small_community.dataset, per_user=3, min_ratings=8, seed=2)
        assert first.held_out != second.held_out

    def test_invalid_parameters(self, small_community):
        with pytest.raises(ValueError):
            holdout_split(small_community.dataset, per_user=0)
        with pytest.raises(ValueError):
            holdout_split(small_community.dataset, per_user=5, min_ratings=5)


class TestKFoldSplits:
    def test_fold_count(self, small_community):
        splits = kfold_splits(small_community.dataset, folds=4, min_ratings=8)
        assert len(splits) == 4

    def test_every_positive_withheld_exactly_once(self, small_community):
        dataset = small_community.dataset
        splits = kfold_splits(dataset, folds=4, min_ratings=8, seed=3)
        qualifying = set(splits[0].held_out) | set(splits[-1].held_out)
        withheld_counts: dict[tuple[str, str], int] = {}
        for split in splits:
            for agent, items in split.held_out.items():
                for product in items:
                    key = (agent, product)
                    withheld_counts[key] = withheld_counts.get(key, 0) + 1
        assert all(count == 1 for count in withheld_counts.values())
        # Coverage: every positive rating of a qualifying agent appears.
        for agent in qualifying:
            positives = {
                p for p, v in dataset.ratings_of(agent).items() if v > 0
            }
            withheld = {p for (a, p) in withheld_counts if a == agent}
            assert withheld == positives

    def test_train_disjoint_from_held_out(self, small_community):
        splits = kfold_splits(small_community.dataset, folds=3, min_ratings=8)
        for split in splits:
            for agent, items in split.held_out.items():
                for product in items:
                    assert (agent, product) not in split.train.ratings

    def test_original_untouched(self, small_community):
        before = dict(small_community.dataset.ratings)
        kfold_splits(small_community.dataset, folds=3, min_ratings=8)
        assert small_community.dataset.ratings == before

    def test_deterministic(self, small_community):
        first = kfold_splits(small_community.dataset, folds=3, min_ratings=8, seed=9)
        second = kfold_splits(small_community.dataset, folds=3, min_ratings=8, seed=9)
        assert [s.held_out for s in first] == [s.held_out for s in second]

    def test_invalid_parameters(self, small_community):
        with pytest.raises(ValueError):
            kfold_splits(small_community.dataset, folds=1)
        with pytest.raises(ValueError):
            kfold_splits(small_community.dataset, folds=5, min_ratings=3)

    def test_max_users(self, small_community):
        splits = kfold_splits(
            small_community.dataset, folds=3, min_ratings=8, max_users=4
        )
        assert all(len(s.held_out) <= 4 for s in splits)


class TestEvaluateRecommender:
    def test_popularity_beats_random(self, small_community):
        split = holdout_split(
            small_community.dataset, per_user=3, min_ratings=8, max_users=25, seed=2
        )
        popularity = evaluate_recommender(
            "popularity", PopularityRecommender(dataset=split.train), split
        )
        randomized = evaluate_recommender(
            "random", RandomRecommender(dataset=split.train), split
        )
        assert popularity.users == randomized.users == 25
        assert popularity.recall >= randomized.recall

    def test_report_fields_consistent(self, small_community):
        split = holdout_split(
            small_community.dataset, per_user=3, min_ratings=8, max_users=10, seed=3
        )
        report = evaluate_recommender(
            "popularity", PopularityRecommender(dataset=split.train), split, top_n=5
        )
        assert report.top_n == 5
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert 0.0 <= report.hit_rate <= 1.0
        row = report.as_row()
        assert row[0] == "popularity"
        assert len(row) == len(report.headers())


class TestTable:
    def test_render_alignment(self):
        table = Table(title="T", headers=["name", "value"])
        table.add_row("a", 1)
        table.add_row("long-name", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        # All data lines share the same width.
        assert len(set(len(line.rstrip()) for line in lines[2:3])) == 1
        assert "long-name" in text

    def test_wrong_arity_rejected(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_notes_rendered(self):
        table = Table(title="T", headers=["a"])
        table.add_row("x")
        table.add_note("something important")
        assert "note: something important" in table.render()

    def test_str_is_render(self):
        table = Table(title="T", headers=["a"])
        assert str(table) == table.render()
