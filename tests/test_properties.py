"""Cross-module property-based tests (hypothesis).

Each test states one system-level invariant and checks it over generated
inputs: serialization round trips, order insensitivity, determinism,
monotonicity.  Module-local properties live next to their modules; the
ones here span layer boundaries.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.models import Agent, Dataset, Product, Rating, TrustStatement
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.synthesis import LinearBlend
from repro.core.taxonomy import figure1_fragment
from repro.datasets.io import load_dataset, save_dataset
from repro.semweb.foaf import parse_agent_homepage, publish_agent
from repro.semweb.serializer import parse_ntriples, serialize_ntriples
from repro.web.weblog import LinkMiner, publish_weblogs, weblog_uri

# -- strategies --------------------------------------------------------------

_AGENT_URIS = [f"http://a.example.org/u{i}" for i in range(6)]
_PRODUCT_IDS = [f"isbn:978000000000{i}" for i in range(8)]
_TOPICS = ["Algebra", "Calculus", "Physics", "Literature", "Pure"]

_scores = st.floats(min_value=-1.0, max_value=1.0).map(lambda v: round(v, 4))
_positive_scores = st.floats(min_value=0.05, max_value=1.0).map(lambda v: round(v, 4))


@st.composite
def datasets(draw) -> Dataset:
    """Small random—but always referentially valid—datasets."""
    dataset = Dataset()
    agents = draw(st.lists(st.sampled_from(_AGENT_URIS), min_size=2, unique=True))
    for uri in agents:
        dataset.add_agent(Agent(uri=uri, name=uri.rsplit("/", 1)[-1]))
    products = draw(
        st.lists(st.sampled_from(_PRODUCT_IDS), min_size=1, unique=True)
    )
    for identifier in products:
        descriptors = draw(
            st.frozensets(st.sampled_from(_TOPICS), max_size=3)
        )
        dataset.add_product(
            Product(identifier=identifier, title=identifier, descriptors=descriptors)
        )
    n_trust = draw(st.integers(0, 8))
    for _ in range(n_trust):
        source = draw(st.sampled_from(agents))
        target = draw(st.sampled_from(agents))
        if source != target:
            dataset.add_trust(
                TrustStatement(source=source, target=target, value=draw(_scores))
            )
    n_ratings = draw(st.integers(0, 12))
    for _ in range(n_ratings):
        dataset.add_rating(
            Rating(
                agent=draw(st.sampled_from(agents)),
                product=draw(st.sampled_from(products)),
                value=draw(_scores),
            )
        )
    return dataset


# -- properties ---------------------------------------------------------------


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(datasets())
def test_dataset_jsonl_roundtrip(tmp_path_factory, dataset):
    """save_dataset ∘ load_dataset is the identity."""
    path = tmp_path_factory.mktemp("prop") / "data.jsonl"
    save_dataset(dataset, path)
    loaded = load_dataset(path)
    assert loaded.agents == dataset.agents
    assert loaded.products == dataset.products
    assert loaded.trust == dataset.trust
    assert loaded.ratings == dataset.ratings


@settings(max_examples=40, deadline=None)
@given(
    trust=st.dictionaries(
        st.sampled_from(_AGENT_URIS[1:]), _scores, max_size=5
    ),
    ratings=st.dictionaries(st.sampled_from(_PRODUCT_IDS), _scores, max_size=6),
)
def test_foaf_homepage_roundtrip(trust, ratings):
    """publish → N-Triples → parse recovers agent, trust, and ratings."""
    agent = Agent(uri=_AGENT_URIS[0], name="Prop Agent")
    graph = publish_agent(agent, trust, ratings)
    text = serialize_ntriples(graph)
    parsed_agent, parsed_trust, parsed_ratings = parse_agent_homepage(
        parse_ntriples(text)
    )
    assert parsed_agent == agent
    assert {(s.target, s.value) for s in parsed_trust} == set(trust.items())
    assert {(r.product, r.value) for r in parsed_ratings} == set(ratings.items())


@settings(max_examples=30, deadline=None)
@given(
    ratings=st.dictionaries(
        st.sampled_from(_PRODUCT_IDS), _positive_scores, min_size=1, max_size=6
    )
)
def test_weblog_mining_roundtrip(ratings):
    """publish_weblogs → LinkMiner recovers the exact rating function."""
    from repro.web.network import SimulatedWeb

    dataset = Dataset()
    uri = _AGENT_URIS[0]
    dataset.add_agent(Agent(uri=uri))
    for identifier in ratings:
        dataset.add_product(Product(identifier=identifier))
    for identifier, value in ratings.items():
        dataset.add_rating(Rating(agent=uri, product=identifier, value=value))

    web = SimulatedWeb()
    publish_weblogs(web, dataset)
    miner = LinkMiner(known_products=frozenset(dataset.products))
    mined = miner.mine(uri, web.fetch(weblog_uri(uri)).body)
    assert {(r.product, r.value) for r in mined} == set(ratings.items())


@settings(max_examples=30, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.sampled_from(_PRODUCT_IDS), _positive_scores),
        min_size=1,
        max_size=8,
        unique_by=lambda pair: pair[0],
    )
)
def test_profile_builder_order_insensitive(entries):
    """Profiles do not depend on rating iteration order."""
    taxonomy = figure1_fragment()
    products = {
        identifier: Product(
            identifier=identifier,
            descriptors=frozenset({_TOPICS[i % len(_TOPICS)]}),
        )
        for i, identifier in enumerate(_PRODUCT_IDS)
    }
    builder = TaxonomyProfileBuilder(taxonomy)
    forward = builder.build(dict(entries), products)
    backward = builder.build(dict(reversed(entries)), products)
    assert set(forward) == set(backward)
    for topic, value in forward.items():
        assert backward[topic] == pytest.approx(value)


@settings(max_examples=40, deadline=None)
@given(
    trust=st.dictionaries(
        st.sampled_from(list("abcdef")),
        st.floats(min_value=0.0, max_value=1.0),
        min_size=1,
        max_size=6,
    ),
    similarity=st.dictionaries(
        st.sampled_from(list("abcdef")),
        st.floats(min_value=-1.0, max_value=1.0),
        max_size=6,
    ),
    bump=st.floats(min_value=0.01, max_value=0.5),
    gamma=st.floats(min_value=0.1, max_value=1.0),
)
def test_linear_blend_monotone_in_trust(trust, similarity, bump, gamma):
    """Raising one peer's trust never lowers its merged weight."""
    strategy = LinearBlend(gamma=gamma)
    baseline = strategy.merge(trust, similarity)
    peer = sorted(trust)[0]
    bumped_trust = dict(trust)
    bumped_trust[peer] = min(1.0, bumped_trust[peer] + bump)
    bumped = strategy.merge(bumped_trust, similarity)
    assert bumped.get(peer, 0.0) >= baseline.get(peer, 0.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_community_generation_deterministic(seed):
    """Equal seeds produce byte-identical communities."""
    from repro.datasets.generators import CommunityConfig, generate_community

    config = CommunityConfig(n_agents=20, n_products=30, n_clusters=3, seed=seed)
    first = generate_community(config)
    second = generate_community(config)
    assert first.dataset.trust == second.dataset.trust
    assert first.dataset.ratings == second.dataset.ratings
    assert first.membership == second.membership


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    limit=st.integers(1, 15),
)
def test_recommender_contract(seed, limit):
    """For any community: recommendations are deduplicated, sorted by
    score, exclude the principal's rated products, and are deterministic."""
    from repro.core.recommender import SemanticWebRecommender
    from repro.datasets.generators import CommunityConfig, generate_community

    config = CommunityConfig(n_agents=25, n_products=40, n_clusters=3, seed=seed)
    community = generate_community(config)
    recommender = SemanticWebRecommender.from_dataset(
        community.dataset, community.taxonomy
    )
    agent = sorted(community.dataset.agents)[seed % 25]
    first = recommender.recommend(agent, limit=limit)
    second = recommender.recommend(agent, limit=limit)
    assert first == second
    assert len(first) <= limit
    products = [r.product for r in first]
    assert len(products) == len(set(products))
    scores = [r.score for r in first]
    assert scores == sorted(scores, reverse=True)
    assert not set(products) & set(community.dataset.ratings_of(agent))
