"""Unit tests for taxonomy and product generation."""

from __future__ import annotations

import random

import pytest

from repro.datasets.amazon import (
    TaxonomyConfig,
    assign_descriptors,
    book_taxonomy_config,
    dvd_taxonomy_config,
    generate_products,
    generate_taxonomy,
)


class TestTaxonomyConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            TaxonomyConfig(target_topics=0)
        with pytest.raises(ValueError):
            TaxonomyConfig(max_depth=0)
        with pytest.raises(ValueError):
            TaxonomyConfig(min_children=5, max_children=2)
        with pytest.raises(ValueError):
            TaxonomyConfig(expand_probability=0.0)

    def test_presets_have_documented_shapes(self):
        book = book_taxonomy_config()
        dvd = dvd_taxonomy_config()
        assert book.max_depth > dvd.max_depth
        assert dvd.min_children > book.min_children


class TestGenerateTaxonomy:
    def test_deterministic(self):
        config = book_taxonomy_config(target_topics=300, seed=5)
        first = generate_taxonomy(config)
        second = generate_taxonomy(config)
        assert list(first) == list(second)
        assert all(first.parent(t) == second.parent(t) for t in first)

    def test_respects_target_size(self):
        taxonomy = generate_taxonomy(book_taxonomy_config(target_topics=250))
        assert len(taxonomy) <= 250
        assert len(taxonomy) >= 200  # growth gets close to the target

    def test_respects_max_depth(self):
        config = TaxonomyConfig(target_topics=500, max_depth=3)
        taxonomy = generate_taxonomy(config)
        assert taxonomy.max_depth() <= 3

    def test_book_deeper_than_dvd(self):
        book = generate_taxonomy(book_taxonomy_config(target_topics=800))
        dvd = generate_taxonomy(dvd_taxonomy_config(target_topics=800))
        assert book.max_depth() > dvd.max_depth()
        assert (
            dvd.branching_stats()["mean_branching"]
            > book.branching_stats()["mean_branching"]
        )

    def test_root_label(self):
        taxonomy = generate_taxonomy(dvd_taxonomy_config())
        assert taxonomy.root == "DVD"

    def test_tiny_taxonomy(self):
        taxonomy = generate_taxonomy(TaxonomyConfig(target_topics=1))
        assert len(taxonomy) == 1


class TestAssignDescriptors:
    def test_within_bounds(self):
        taxonomy = generate_taxonomy(book_taxonomy_config(target_topics=200))
        rng = random.Random(0)
        for _ in range(50):
            descriptors = assign_descriptors(taxonomy, rng, 1, 5)
            assert 1 <= len(descriptors) <= 5
            assert all(taxonomy.is_leaf(d) for d in descriptors)

    def test_leafless_taxonomy_uses_root(self):
        from repro.core.taxonomy import Taxonomy

        taxonomy = Taxonomy("R")
        # Root is itself a leaf here, so leaves() is non-empty; force the
        # degenerate branch by checking a single-node taxonomy.
        descriptors = assign_descriptors(taxonomy, random.Random(0), 1, 3)
        assert descriptors == frozenset({"R"})


class TestGenerateProducts:
    def test_count_and_identifiers(self):
        taxonomy = generate_taxonomy(book_taxonomy_config(target_topics=100))
        products = generate_products(taxonomy, 25, seed=1)
        assert len(products) == 25
        assert all(identifier.startswith("isbn:978") for identifier in products)

    def test_deterministic(self):
        taxonomy = generate_taxonomy(book_taxonomy_config(target_topics=100))
        assert generate_products(taxonomy, 10, seed=2) == generate_products(
            taxonomy, 10, seed=2
        )

    def test_every_product_classified(self):
        taxonomy = generate_taxonomy(book_taxonomy_config(target_topics=100))
        products = generate_products(taxonomy, 40, seed=3)
        assert all(p.descriptors for p in products.values())
        for product in products.values():
            assert all(d in taxonomy for d in product.descriptors)

    def test_invalid_count(self):
        taxonomy = generate_taxonomy(book_taxonomy_config(target_topics=50))
        with pytest.raises(ValueError):
            generate_products(taxonomy, 0)
