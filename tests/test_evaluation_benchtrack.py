"""repro bench driver: schema, same-seed determinism, sanctioned writer."""

from __future__ import annotations

import json

import pytest

from repro.evaluation.benchtrack import (
    BENCH_SCHEMA,
    MEASUREMENT_FIELDS,
    PHASES,
    default_sizes,
    run_bench,
    strip_bench_measurements,
    validate_bench,
    write_bench,
)
from repro.obs import strip_durations, validate_trace

pytest.importorskip("numpy")

#: One tiny rung keeps the driver tests fast; python engine below the
#: TRUST_AUTO_THRESHOLD, which is fine — the document shape is the same.
SIZES = (24,)


@pytest.fixture(scope="module")
def bench_run():
    return run_bench(sizes=SIZES, seed=7, queries=2, trust_sources=2, smoke=True)


class TestDriver:
    def test_document_is_schema_valid(self, bench_run):
        document, records = bench_run
        assert validate_bench(document) == []
        assert validate_trace(records, strict_durations=True) == []

    def test_document_covers_every_size_and_phase(self, bench_run):
        document, _ = bench_run
        assert document["schema"] == BENCH_SCHEMA
        assert [entry["agents"] for entry in document["sizes"]] == list(SIZES)
        for entry in document["sizes"]:
            assert sorted(entry["phases"]) == sorted(PHASES)
            for timing in entry["phases"].values():
                assert timing["wall_ms"] >= timing["dominant_self_ms"] >= 0.0
                assert timing["spans"] >= 1

    def test_same_seed_runs_agree_modulo_measurements(self, bench_run):
        document_a, records_a = bench_run
        document_b, records_b = run_bench(
            sizes=SIZES, seed=7, queries=2, trust_sources=2, smoke=True
        )
        assert strip_durations(records_a) == strip_durations(records_b)
        projected_a = strip_bench_measurements(document_a)
        projected_b = strip_bench_measurements(document_b)
        # dominant_span is deterministic in principle but timing-derived;
        # drop it too so this test never flakes on a noisy runner.
        for projected in (projected_a, projected_b):
            for entry in projected["sizes"]:
                for timing in entry["phases"].values():
                    timing.pop("dominant_span")
        assert projected_a == projected_b

    def test_strip_removes_exactly_the_measurement_fields(self, bench_run):
        document, _ = bench_run
        projected = strip_bench_measurements(document)
        timing = projected["sizes"][0]["phases"]["build"]
        assert not set(MEASUREMENT_FIELDS) & set(timing)
        assert {"dominant_span", "spans"} <= set(timing)
        # projection, not mutation
        assert "wall_ms" in document["sizes"][0]["phases"]["build"]

    @pytest.mark.parametrize("sizes", [(), (100, 100), (200, 100)])
    def test_rejects_malformed_size_ladders(self, sizes):
        with pytest.raises(ValueError, match="strictly ascending"):
            run_bench(sizes=sizes)

    def test_default_sizes_honor_the_smoke_env(self, monkeypatch):
        monkeypatch.delenv("BENCH_SMOKE", raising=False)
        full = default_sizes()
        monkeypatch.setenv("BENCH_SMOKE", "1")
        smoke = default_sizes()
        assert smoke == (60, 120)
        assert full == (100, 200, 400)
        assert default_sizes(smoke=False) == full


class TestValidate:
    def _valid(self):
        return {
            "schema": BENCH_SCHEMA,
            "smoke": True,
            "seed": 1,
            "queries": 2,
            "trust_sources": 2,
            "sizes": [
                {
                    "agents": 10,
                    "phases": {
                        phase: {
                            "wall_ms": 1.0,
                            "dominant_span": f"bench.{phase}",
                            "dominant_self_ms": 0.5,
                            "spans": 2,
                        }
                        for phase in PHASES
                    },
                }
            ],
        }

    def test_accepts_a_valid_document(self):
        assert validate_bench(self._valid()) == []

    def test_collects_every_finding(self):
        document = self._valid()
        document["schema"] = "repro-bench/0"
        document["seed"] = "nope"
        document["sizes"][0]["phases"]["build"]["wall_ms"] = -1.0
        document["sizes"][0]["phases"]["trust"]["dominant_span"] = ""
        errors = validate_bench(document)
        assert len(errors) == 4
        assert any("schema" in error for error in errors)
        assert any("seed" in error for error in errors)
        assert any("wall_ms" in error for error in errors)
        assert any("dominant_span" in error for error in errors)

    def test_rejects_out_of_order_and_incomplete_sizes(self):
        document = self._valid()
        document["sizes"].append(json.loads(json.dumps(document["sizes"][0])))
        del document["sizes"][1]["phases"]["query"]
        errors = validate_bench(document)
        assert any("ascending" in error for error in errors)
        assert any("phases" in error for error in errors)

    def test_non_object_document(self):
        assert validate_bench([]) == ["document is not an object"]


class TestWriteBench:
    def test_round_trips_through_disk(self, tmp_path, bench_run):
        document, _ = bench_run
        path = write_bench(document, tmp_path / "BENCH_scale.json")
        assert json.loads(path.read_text(encoding="utf-8")) == document
        assert path.read_text(encoding="utf-8").endswith("\n")

    def test_refuses_an_invalid_document(self, tmp_path):
        target = tmp_path / "BENCH_scale.json"
        with pytest.raises(ValueError, match="refusing to write"):
            write_bench({"schema": "wrong"}, target)
        assert not target.exists()
