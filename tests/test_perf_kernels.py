"""Kernel/oracle agreement: the numpy engine against the dict-based oracle.

The contract of :mod:`repro.perf` is that choosing an engine is a
performance decision, never a semantic one: both engines must produce
the same rankings, and values within 1e-9, on every input.  These tests
enforce that contract with hypothesis-generated profiles, adversarial
degenerate cases, and full generated communities.

Value grids are dyadic (multiples of 0.25) where exactness matters:
sums and means over such values are exact in binary floating point, so
degenerate cutoffs (zero variance) agree bit-for-bit between the
one-pass kernel algebra and the two-pass oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.profiles import TaxonomyProfileBuilder, product_profile
from repro.core.recommender import ProfileStore
from repro.core.similarity import cosine, pearson, top_similar
from repro.perf.engine import community_scores, rank_profiles, resolve_engine
from repro.perf.kernels import similarity_many, top_k, top_k_pairs
from repro.perf.matrix import ProfileMatrix, TopicVocabulary

TOL = 1e-9

_TOPICS = [f"t{i}" for i in range(10)]
_dyadic = st.integers(min_value=-8, max_value=8).map(lambda i: i * 0.25)
_profiles = st.dictionaries(st.sampled_from(_TOPICS), _dyadic, max_size=10)

_COMBOS = [
    ("pearson", "union"),
    ("pearson", "intersection"),
    ("cosine", "union"),
    ("cosine", "intersection"),
]


def _oracle(measure: str):
    return pearson if measure == "pearson" else cosine


def _canonical(ranking):
    """A ranking modulo last-bit score noise.

    Mathematically equal scores can differ in the last bit between
    engines, flipping ``(-score, id)`` tie order; rounding to the 1e-9
    agreement bound and re-sorting makes the comparison well-defined.
    """
    rounded = [(identifier, round(score, 9)) for identifier, score in ranking]
    rounded.sort(key=lambda kv: (-kv[1], kv[0]))
    return rounded


class TestKernelOracleAgreement:
    @pytest.mark.parametrize("measure,domain", _COMBOS)
    @settings(max_examples=60, deadline=None)
    @given(
        target=_profiles,
        candidates=st.lists(_profiles, min_size=1, max_size=8),
    )
    def test_matches_oracle_on_generated_profiles(
        self, measure, domain, target, candidates
    ):
        ids = [f"a{i}" for i in range(len(candidates))]
        matrix = ProfileMatrix.from_profiles(dict(zip(ids, candidates)), ids=ids)
        values = similarity_many(target, matrix, measure=measure, domain=domain)
        oracle = _oracle(measure)
        for identifier, profile, value in zip(ids, candidates, values):
            assert value == pytest.approx(
                oracle(target, profile, domain), abs=TOL
            ), (identifier, target, profile)

    @pytest.mark.parametrize("measure,domain", _COMBOS)
    def test_adversarial_degenerate_profiles_exact(self, measure, domain):
        candidates = {
            "empty": {},
            "singleton": {"t0": 1.0},
            "constant": {"t0": 0.5, "t1": 0.5, "t2": 0.5},
            "zero-scores": {"t0": 0.0, "t1": 0.0},
            "negative": {"t0": -1.0, "t1": 0.75, "t2": -0.25},
            "disjoint": {"t8": 1.0, "t9": 0.25},
        }
        targets = [
            {},
            {"t0": 1.0},
            {"t0": 0.25, "t1": -0.5, "t2": 1.75},
            {"t0": 0.5, "t1": 0.5},  # zero variance on a dyadic grid
            {"t0": 0.0, "t3": 0.0},  # explicit zeros still occupy the domain
        ]
        matrix = ProfileMatrix.from_profiles(candidates)
        oracle = _oracle(measure)
        for target in targets:
            values = similarity_many(target, matrix, measure=measure, domain=domain)
            for identifier, value in zip(matrix.ids, values):
                expected = oracle(target, candidates[identifier], domain)
                assert value == pytest.approx(expected, abs=TOL), (identifier, target)
                if expected == 0.0:
                    # Dyadic grids make every degenerate cutoff (empty
                    # domain, zero variance, zero norm) exact: when the
                    # oracle says 0.0, the kernel must say +0.0 too.
                    assert value == 0.0 and not np.signbit(value), (
                        identifier,
                        target,
                    )

    @pytest.mark.parametrize("measure,domain", _COMBOS)
    def test_out_of_vocabulary_target_topics(self, measure, domain):
        """Target coordinates the matrix never saw still shape the domain."""
        candidates = {"a": {"t0": 1.0, "t1": 0.5}, "b": {"t1": 0.25}}
        matrix = ProfileMatrix.from_profiles(candidates)
        target = {"t0": 0.75, "zz-unseen": 1.5, "zz-other": -0.5}
        values = similarity_many(target, matrix, measure=measure, domain=domain)
        oracle = _oracle(measure)
        for identifier, value in zip(matrix.ids, values):
            assert value == pytest.approx(
                oracle(target, candidates[identifier], domain), abs=TOL
            )

    @pytest.mark.parametrize("measure,domain", _COMBOS)
    def test_signed_negative_profiles_from_builder(self, measure, domain, figure1):
        """Signed-mode taxonomy profiles (negative scores) agree too."""
        from repro.core.models import Product

        products = {
            f"isbn:{i}": Product(
                identifier=f"isbn:{i}", title=f"b{i}", descriptors=frozenset({topic})
            )
            for i, topic in enumerate(["Algebra", "Calculus", "Physics", "Literature"])
        }
        builder = TaxonomyProfileBuilder(figure1, negative_mode="signed")
        ratings = [
            {"isbn:0": 1.0, "isbn:1": -1.0},
            {"isbn:1": -1.0, "isbn:2": -1.0},
            {"isbn:0": 1.0, "isbn:2": 1.0, "isbn:3": -1.0},
            {"isbn:3": 1.0},
        ]
        profiles = {
            f"agent{i}": builder.build(r, products) for i, r in enumerate(ratings)
        }
        assert any(min(p.values(), default=0.0) < 0.0 for p in profiles.values())
        matrix = ProfileMatrix.from_profiles(profiles)
        oracle = _oracle(measure)
        for target in profiles.values():
            values = similarity_many(target, matrix, measure=measure, domain=domain)
            for identifier, value in zip(matrix.ids, values):
                assert value == pytest.approx(
                    oracle(target, profiles[identifier], domain), abs=TOL
                )


class TestCommunityAgreement:
    """Engine agreement over full generated communities, both representations."""

    @pytest.mark.parametrize("measure,domain", _COMBOS)
    def test_taxonomy_profiles(self, small_community, measure, domain):
        store = ProfileStore(
            small_community.dataset, TaxonomyProfileBuilder(small_community.taxonomy)
        )
        agents = sorted(small_community.dataset.agents)
        profiles = {agent: store.profile(agent) for agent in agents}
        matrix = ProfileMatrix.from_profiles(profiles)
        for target_agent in agents[:5]:
            target = profiles[target_agent]
            values = community_scores(target, matrix, measure=measure, domain=domain)
            oracle = _oracle(measure)
            for identifier, value in zip(matrix.ids, values):
                assert value == pytest.approx(
                    oracle(target, profiles[identifier], domain), abs=TOL
                )

    @pytest.mark.parametrize("measure,domain", _COMBOS)
    def test_product_vectors(self, small_community, measure, domain):
        dataset = small_community.dataset
        agents = sorted(dataset.agents)
        profiles = {a: product_profile(dataset.ratings_of(a)) for a in agents}
        matrix = ProfileMatrix.from_profiles(profiles)
        for target_agent in agents[:5]:
            target = profiles[target_agent]
            values = community_scores(target, matrix, measure=measure, domain=domain)
            oracle = _oracle(measure)
            for identifier, value in zip(matrix.ids, values):
                assert value == pytest.approx(
                    oracle(target, profiles[identifier], domain), abs=TOL
                )

    @pytest.mark.parametrize("measure,domain", _COMBOS)
    def test_top_similar_rankings_agree(self, small_community, measure, domain):
        store = ProfileStore(
            small_community.dataset, TaxonomyProfileBuilder(small_community.taxonomy)
        )
        agents = sorted(small_community.dataset.agents)
        profiles = {agent: store.profile(agent) for agent in agents}
        for target_agent in agents[:3]:
            target = profiles[target_agent]
            py = top_similar(
                target, profiles, measure=measure, domain=domain, engine="python"
            )
            nu = top_similar(
                target, profiles, measure=measure, domain=domain, engine="numpy"
            )
            assert _canonical(py) == _canonical(nu)


class TestEngineSelection:
    def test_resolve_engine_values(self):
        assert resolve_engine("python") == "python"
        assert resolve_engine("numpy") == "numpy"
        assert resolve_engine("auto", size=4) == "python"  # below pack threshold
        assert resolve_engine("auto", size=10_000) == "numpy"
        assert resolve_engine("auto") == "numpy"  # cached-matrix callers
        with pytest.raises(ValueError):
            resolve_engine("fortran")

    def test_pruning_matches_unpruned_scores(self, small_community):
        """The inverted-index shortcut may never change a single score."""
        store = ProfileStore(
            small_community.dataset, TaxonomyProfileBuilder(small_community.taxonomy)
        )
        agents = sorted(small_community.dataset.agents)
        profiles = {agent: store.profile(agent) for agent in agents}
        matrix = ProfileMatrix.from_profiles(profiles)
        target = profiles[agents[0]]
        for measure, domain in _COMBOS:
            pruned = community_scores(target, matrix, measure=measure, domain=domain)
            full = similarity_many(target, matrix, measure=measure, domain=domain)
            assert np.array_equal(pruned, full)

    def test_rank_profiles_limits(self):
        candidates = {f"a{i}": {"t0": 1.0, "t1": float(i)} for i in range(6)}
        target = {"t0": 1.0, "t1": 3.0}
        full = rank_profiles(target, candidates, measure="cosine")
        assert len(full) == 6
        top2 = rank_profiles(target, candidates, measure="cosine", limit=2)
        assert top2 == full[:2]
        assert rank_profiles(target, candidates, limit=0) == []


class TestProfileMatrix:
    def test_vocabulary_interning_is_stable(self):
        vocab = TopicVocabulary(["a", "b"])
        assert vocab.intern("a") == 0
        assert vocab.intern("c") == 2
        assert vocab.index_of("b") == 1
        assert vocab.index_of("zz") is None
        assert vocab.topics == ["a", "b", "c"]
        assert "c" in vocab and "zz" not in vocab

    def test_mask_records_presence_not_value(self):
        matrix = ProfileMatrix.from_profiles({"a": {"t0": 0.0, "t1": 2.0}})
        assert matrix.support[0] == 2  # the explicit 0.0 still counts
        assert matrix.row_sum[0] == 2.0
        assert matrix.row_sumsq[0] == 4.0

    def test_rows_follow_sorted_ids_by_default(self):
        matrix = ProfileMatrix.from_profiles({"b": {"x": 1.0}, "a": {"y": 2.0}})
        assert matrix.ids == ["a", "b"]
        assert matrix.row_index("b") == 1
        assert list(matrix.rows_for(["b", "a"])) == [1, 0]
        with pytest.raises(KeyError):
            matrix.row_index("zz")

    def test_shared_vocabulary_aligns_columns(self):
        vocab = TopicVocabulary()
        first = ProfileMatrix.from_profiles({"a": {"x": 1.0}}, vocabulary=vocab)
        second = ProfileMatrix.from_profiles(
            {"b": {"y": 2.0, "x": 3.0}}, vocabulary=vocab
        )
        assert first.width == 1  # built before "y" existed; stays consistent
        assert second.width == 2
        assert second.dense[0, vocab.index_of("x")] == 3.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ProfileMatrix(
                ["a", "a"],
                TopicVocabulary(["t"]),
                np.zeros((2, 1)),
                np.zeros((2, 1)),
            )

    def test_overlapping_rows(self):
        matrix = ProfileMatrix.from_profiles(
            {"a": {"x": 1.0}, "b": {"y": 1.0}, "c": {"x": 1.0, "z": 1.0}}
        )
        rows = matrix.overlapping_rows({"x": 5.0})
        assert sorted(matrix.ids[i] for i in rows) == ["a", "c"]
        assert len(matrix.overlapping_rows({"unseen": 1.0})) == 0


class TestTopK:
    @settings(max_examples=100, deadline=None)
    @given(
        scores=st.lists(_dyadic, min_size=1, max_size=20),
        limit=st.integers(min_value=0, max_value=25),
    )
    def test_equals_full_sort(self, scores, limit):
        ids = [f"a{i}" for i in range(len(scores))]
        expected = sorted(zip(ids, scores), key=lambda kv: (-kv[1], kv[0]))[:limit]
        assert top_k(ids, scores, limit) == expected
        assert top_k_pairs(list(zip(ids, scores)), limit) == expected

    def test_no_limit_returns_everything_sorted(self):
        ids = ["b", "a", "c"]
        scores = [1.0, 1.0, 0.5]
        assert top_k(ids, scores, None) == [("a", 1.0), ("b", 1.0), ("c", 0.5)]

    def test_boundary_ties_break_on_identifier(self):
        ids = ["d", "c", "b", "a"]
        scores = [1.0, 0.5, 0.5, 0.5]
        assert top_k(ids, scores, 2) == [("d", 1.0), ("a", 0.5)]
