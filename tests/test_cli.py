"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def snapshot(tmp_path):
    """A generated dataset + taxonomy snapshot on disk."""
    data = tmp_path / "data.jsonl"
    taxonomy = tmp_path / "taxonomy.jsonl"
    code = main(
        [
            "generate",
            "--agents", "50",
            "--products", "100",
            "--clusters", "4",
            "--topics", "200",
            "--seed", "5",
            "--out", str(data),
            "--taxonomy-out", str(taxonomy),
        ]
    )
    assert code == 0
    return data, taxonomy


class TestGenerate:
    def test_writes_both_files(self, snapshot, capsys):
        data, taxonomy = snapshot
        assert data.exists()
        assert taxonomy.exists()

    def test_deterministic(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            data = tmp_path / f"{name}.jsonl"
            taxonomy = tmp_path / f"{name}-tax.jsonl"
            main(
                [
                    "generate", "--agents", "30", "--products", "50",
                    "--clusters", "3", "--topics", "150", "--seed", "9",
                    "--out", str(data), "--taxonomy-out", str(taxonomy),
                ]
            )
            paths.append((data, taxonomy))
        assert paths[0][0].read_bytes() == paths[1][0].read_bytes()
        assert paths[0][1].read_bytes() == paths[1][1].read_bytes()


class TestInfo:
    def test_prints_summary(self, snapshot, capsys):
        data, _ = snapshot
        assert main(["info", "--data", str(data)]) == 0
        out = capsys.readouterr().out
        assert "agents: 50" in out
        assert "products: 100" in out
        assert "trust_density" in out


class TestRecommend:
    def test_by_index(self, snapshot, capsys):
        data, taxonomy = snapshot
        code = main(
            [
                "recommend",
                "--data", str(data),
                "--taxonomy", str(taxonomy),
                "--agent-index", "0",
                "--limit", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "isbn:" in out

    @pytest.mark.parametrize("method", ["cf", "trust", "popularity", "random"])
    def test_methods(self, snapshot, capsys, method):
        data, taxonomy = snapshot
        code = main(
            [
                "recommend",
                "--data", str(data),
                "--taxonomy", str(taxonomy),
                "--agent-index", "0",
                "--method", method,
                "--limit", "2",
            ]
        )
        assert code == 0

    def test_unknown_agent_errors(self, snapshot):
        data, taxonomy = snapshot
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--data", str(data),
                    "--taxonomy", str(taxonomy),
                    "--agent", "ghost",
                ]
            )

    def test_index_out_of_range(self, snapshot):
        data, taxonomy = snapshot
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--data", str(data),
                    "--taxonomy", str(taxonomy),
                    "--agent-index", "999",
                ]
            )


class TestTrust:
    def test_appleseed(self, snapshot, capsys):
        data, _ = snapshot
        assert main(["trust", "--data", str(data), "--source-index", "0"]) == 0
        out = capsys.readouterr().out
        assert "appleseed:" in out
        assert "converged=True" in out

    def test_advogato(self, snapshot, capsys):
        data, _ = snapshot
        code = main(
            ["trust", "--data", str(data), "--source-index", "0",
             "--metric", "advogato", "--top", "20"]
        )
        assert code == 0
        assert "advogato:" in capsys.readouterr().out


class TestExperiment:
    def test_ex01(self, capsys):
        assert main(["experiment", "EX01"]) == 0
        out = capsys.readouterr().out
        assert "29.091" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "EX99"])


class TestDemo:
    def test_merged_channels(self, capsys):
        code = main(["demo", "--agents", "30", "--products", "60", "--limit", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "published 32 documents (merged channels)" in out
        assert "recommended because" in out

    def test_split_channels(self, capsys):
        code = main(
            ["demo", "--agents", "30", "--products", "60", "--limit", "2",
             "--split-channels"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "split channels" in out
        assert "'mined_weblog_ratings'" in out


class TestParser:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCrawl:
    def test_fault_free_crawl_reports_full_coverage(self, capsys):
        code = main(["crawl", "--agents", "30", "--products", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "merged channels" in out
        assert "resilience: 0 retries" in out
        assert "0 breaker trips" in out

    def test_chaos_flags_inject_and_report_faults(self, capsys):
        code = main(
            ["crawl", "--agents", "30", "--products", "60", "--split-channels",
             "--fault-rate", "0.3", "--fault-seed", "3", "--retries", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "split channels" in out
        assert "faults injected:" in out
        assert "resilience:" in out
        assert "degradation:" in out

    def test_chaos_crawl_is_seeded(self, capsys):
        argv = ["crawl", "--agents", "30", "--products", "60",
                "--fault-rate", "0.4", "--fault-seed", "11"]
        outputs = []
        for _ in range(2):
            assert main(list(argv)) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestDemoUnderFaults:
    def test_demo_survives_faults_and_reports_them(self, capsys):
        code = main(
            ["demo", "--agents", "30", "--products", "60", "--limit", "2",
             "--fault-rate", "0.2", "--fault-seed", "2", "--retries", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected:" in out
        assert "recommended because" in out

    def test_out_of_range_fault_rate_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["crawl", "--fault-rate", "1.5"])
        assert excinfo.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_negative_retries_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["crawl", "--retries", "-1"])
        assert excinfo.value.code == 2
        assert "must be non-negative" in capsys.readouterr().err


class TestObservability:
    def test_experiment_id_is_case_insensitive(self, capsys):
        assert main(["experiment", "ex01"]) == 0
        assert "29.091" in capsys.readouterr().out

    def test_trace_flag_writes_schema_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import load_trace, validate_trace

        trace = tmp_path / "ex01.jsonl"
        assert main(["experiment", "EX01", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace: wrote" in out
        records = load_trace(trace)
        assert validate_trace(records) == []
        assert records[0]["name"] == "experiment.EX01"
        assert records[0]["parent"] is None

    def test_metrics_flag_prints_summary(self, capsys):
        code = main(["crawl", "--agents", "30", "--products", "60", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "crawl.fetched" in out

    def test_recommend_trace_wraps_query(self, snapshot, tmp_path, capsys):
        from repro.obs import load_trace

        data, taxonomy = snapshot
        trace = tmp_path / "rec.jsonl"
        code = main(
            ["recommend", "--data", str(data), "--taxonomy", str(taxonomy),
             "--agent-index", "0", "--trace", str(trace)]
        )
        assert code == 0
        records = load_trace(trace)
        names = [record["name"] for record in records]
        assert "recommend.query" in names

    def test_trace_summarize_renders_table(self, tmp_path, capsys):
        trace = tmp_path / "ex01.jsonl"
        main(["experiment", "EX01", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "experiment.EX01" in out
        assert "spans" in out

    def test_trace_summarize_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"id": 1}\n', encoding="utf-8")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "invalid" in capsys.readouterr().err

    def test_traces_deterministic_modulo_durations(self, tmp_path):
        import json

        from repro.obs import load_trace, strip_durations

        projections = []
        for name in ("a", "b"):
            trace = tmp_path / f"{name}.jsonl"
            assert main(["experiment", "EX01", "--trace", str(trace)]) == 0
            stripped = strip_durations(load_trace(trace))
            projections.append(json.dumps(stripped, sort_keys=True))
        assert projections[0] == projections[1]
