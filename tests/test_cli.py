"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def snapshot(tmp_path):
    """A generated dataset + taxonomy snapshot on disk."""
    data = tmp_path / "data.jsonl"
    taxonomy = tmp_path / "taxonomy.jsonl"
    code = main(
        [
            "generate",
            "--agents", "50",
            "--products", "100",
            "--clusters", "4",
            "--topics", "200",
            "--seed", "5",
            "--out", str(data),
            "--taxonomy-out", str(taxonomy),
        ]
    )
    assert code == 0
    return data, taxonomy


class TestGenerate:
    def test_writes_both_files(self, snapshot, capsys):
        data, taxonomy = snapshot
        assert data.exists()
        assert taxonomy.exists()

    def test_deterministic(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            data = tmp_path / f"{name}.jsonl"
            taxonomy = tmp_path / f"{name}-tax.jsonl"
            main(
                [
                    "generate", "--agents", "30", "--products", "50",
                    "--clusters", "3", "--topics", "150", "--seed", "9",
                    "--out", str(data), "--taxonomy-out", str(taxonomy),
                ]
            )
            paths.append((data, taxonomy))
        assert paths[0][0].read_bytes() == paths[1][0].read_bytes()
        assert paths[0][1].read_bytes() == paths[1][1].read_bytes()


class TestInfo:
    def test_prints_summary(self, snapshot, capsys):
        data, _ = snapshot
        assert main(["info", "--data", str(data)]) == 0
        out = capsys.readouterr().out
        assert "agents: 50" in out
        assert "products: 100" in out
        assert "trust_density" in out


class TestRecommend:
    def test_by_index(self, snapshot, capsys):
        data, taxonomy = snapshot
        code = main(
            [
                "recommend",
                "--data", str(data),
                "--taxonomy", str(taxonomy),
                "--agent-index", "0",
                "--limit", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "isbn:" in out

    @pytest.mark.parametrize("method", ["cf", "trust", "popularity", "random"])
    def test_methods(self, snapshot, capsys, method):
        data, taxonomy = snapshot
        code = main(
            [
                "recommend",
                "--data", str(data),
                "--taxonomy", str(taxonomy),
                "--agent-index", "0",
                "--method", method,
                "--limit", "2",
            ]
        )
        assert code == 0

    def test_unknown_agent_errors(self, snapshot):
        data, taxonomy = snapshot
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--data", str(data),
                    "--taxonomy", str(taxonomy),
                    "--agent", "ghost",
                ]
            )

    def test_index_out_of_range(self, snapshot):
        data, taxonomy = snapshot
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--data", str(data),
                    "--taxonomy", str(taxonomy),
                    "--agent-index", "999",
                ]
            )


class TestTrust:
    def test_appleseed(self, snapshot, capsys):
        data, _ = snapshot
        assert main(["trust", "--data", str(data), "--source-index", "0"]) == 0
        out = capsys.readouterr().out
        assert "appleseed:" in out
        assert "converged=True" in out

    def test_advogato(self, snapshot, capsys):
        data, _ = snapshot
        code = main(
            ["trust", "--data", str(data), "--source-index", "0",
             "--metric", "advogato", "--top", "20"]
        )
        assert code == 0
        assert "advogato:" in capsys.readouterr().out


class TestExperiment:
    def test_ex01(self, capsys):
        assert main(["experiment", "EX01"]) == 0
        out = capsys.readouterr().out
        assert "29.091" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "EX99"])


class TestDemo:
    def test_merged_channels(self, capsys):
        code = main(["demo", "--agents", "30", "--products", "60", "--limit", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "published 32 documents (merged channels)" in out
        assert "recommended because" in out

    def test_split_channels(self, capsys):
        code = main(
            ["demo", "--agents", "30", "--products", "60", "--limit", "2",
             "--split-channels"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "split channels" in out
        assert "'mined_weblog_ratings'" in out


class TestParser:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCrawl:
    def test_fault_free_crawl_reports_full_coverage(self, capsys):
        code = main(["crawl", "--agents", "30", "--products", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "merged channels" in out
        assert "resilience: 0 retries" in out
        assert "0 breaker trips" in out

    def test_chaos_flags_inject_and_report_faults(self, capsys):
        code = main(
            ["crawl", "--agents", "30", "--products", "60", "--split-channels",
             "--fault-rate", "0.3", "--fault-seed", "3", "--retries", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "split channels" in out
        assert "faults injected:" in out
        assert "resilience:" in out
        assert "degradation:" in out

    def test_chaos_crawl_is_seeded(self, capsys):
        argv = ["crawl", "--agents", "30", "--products", "60",
                "--fault-rate", "0.4", "--fault-seed", "11"]
        outputs = []
        for _ in range(2):
            assert main(list(argv)) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestDemoUnderFaults:
    def test_demo_survives_faults_and_reports_them(self, capsys):
        code = main(
            ["demo", "--agents", "30", "--products", "60", "--limit", "2",
             "--fault-rate", "0.2", "--fault-seed", "2", "--retries", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected:" in out
        assert "recommended because" in out

    def test_out_of_range_fault_rate_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["crawl", "--fault-rate", "1.5"])
        assert excinfo.value.code == 2
        assert "must be in [0, 1]" in capsys.readouterr().err

    def test_negative_retries_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["crawl", "--retries", "-1"])
        assert excinfo.value.code == 2
        assert "must be non-negative" in capsys.readouterr().err


class TestObservability:
    def test_experiment_id_is_case_insensitive(self, capsys):
        assert main(["experiment", "ex01"]) == 0
        assert "29.091" in capsys.readouterr().out

    def test_trace_flag_writes_schema_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import load_trace, validate_trace

        trace = tmp_path / "ex01.jsonl"
        assert main(["experiment", "EX01", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace: wrote" in out
        records = load_trace(trace)
        assert validate_trace(records) == []
        assert records[0]["name"] == "experiment.EX01"
        assert records[0]["parent"] is None

    def test_metrics_flag_prints_summary(self, capsys):
        code = main(["crawl", "--agents", "30", "--products", "60", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "crawl.fetched" in out

    def test_recommend_trace_wraps_query(self, snapshot, tmp_path, capsys):
        from repro.obs import load_trace

        data, taxonomy = snapshot
        trace = tmp_path / "rec.jsonl"
        code = main(
            ["recommend", "--data", str(data), "--taxonomy", str(taxonomy),
             "--agent-index", "0", "--trace", str(trace)]
        )
        assert code == 0
        records = load_trace(trace)
        names = [record["name"] for record in records]
        assert "recommend.query" in names

    def test_trace_summarize_renders_table(self, tmp_path, capsys):
        trace = tmp_path / "ex01.jsonl"
        main(["experiment", "EX01", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "experiment.EX01" in out
        assert "spans" in out

    def test_trace_summarize_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"id": 1}\n', encoding="utf-8")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "invalid" in capsys.readouterr().err

    def test_traces_deterministic_modulo_durations(self, tmp_path):
        import json

        from repro.obs import load_trace, strip_durations

        projections = []
        for name in ("a", "b"):
            trace = tmp_path / f"{name}.jsonl"
            assert main(["experiment", "EX01", "--trace", str(trace)]) == 0
            stripped = strip_durations(load_trace(trace))
            projections.append(json.dumps(stripped, sort_keys=True))
        assert projections[0] == projections[1]


class TestTraceProfiling:
    @pytest.fixture()
    def ex01_trace(self, tmp_path):
        trace = tmp_path / "ex01.jsonl"
        assert main(["experiment", "EX01", "--trace", str(trace)]) == 0
        return trace

    def test_trace_top_renders_profile_and_critical_path(self, ex01_trace, capsys):
        capsys.readouterr()
        assert main(["trace", "top", str(ex01_trace), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "total self time" in out
        assert "critical path" in out

    def test_trace_flame_renders_bars(self, ex01_trace, capsys):
        capsys.readouterr()
        assert main(["trace", "flame", str(ex01_trace), "--width", "20"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("flame:")
        assert "#" in out

    def test_trace_diff_of_two_same_seed_ex03_runs_reports_zero_drift(
        self, tmp_path, capsys
    ):
        # The acceptance check: two same-seed EX03 traces differ only in
        # durations, and `repro trace diff` says exactly that.
        traces = []
        for name in ("a", "b"):
            trace = tmp_path / f"ex03-{name}.jsonl"
            assert main(["experiment", "EX03", "--trace", str(trace)]) == 0
            traces.append(trace)
        capsys.readouterr()
        assert main(["trace", "diff", str(traces[0]), str(traces[1])]) == 0
        out = capsys.readouterr().out
        assert "structural drift: none (identical modulo durations)" in out
        assert "self-time movements" in out

    def test_trace_diff_flags_structural_drift(self, ex01_trace, tmp_path, capsys):
        from repro.obs import load_trace, write_records_jsonl

        records = load_trace(ex01_trace)
        mutated = tmp_path / "mutated.jsonl"
        write_records_jsonl(records[:-1], mutated)
        capsys.readouterr()
        assert main(["trace", "diff", str(ex01_trace), str(mutated)]) == 0
        assert "structural drift: YES" in capsys.readouterr().out

    def test_profiling_commands_reject_invalid_traces(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"id": 1}\n', encoding="utf-8")
        for view in ("top", "flame"):
            assert main(["trace", view, str(bad)]) == 2
        assert main(["trace", "diff", str(bad), str(bad)]) == 2

    def test_summarize_strict_durations_rejects_doctored_traces(
        self, ex01_trace, tmp_path, capsys
    ):
        from repro.obs import load_trace, write_records_jsonl

        records = load_trace(ex01_trace)
        capsys.readouterr()
        assert main(["trace", "summarize", str(ex01_trace), "--strict-durations"]) == 0
        doctored = [dict(record) for record in records]
        doctored.append(
            {
                "attrs": {},
                "duration_ms": doctored[0]["duration_ms"] * 10 + 1.0,
                "id": doctored[-1]["id"] + 1,
                "name": "edited.in",
                "parent": doctored[0]["id"],
            }
        )
        bad = tmp_path / "doctored.jsonl"
        write_records_jsonl(doctored, bad)
        capsys.readouterr()
        assert main(["trace", "summarize", str(bad), "--strict-durations"]) == 2
        assert "non-monotonic" in capsys.readouterr().err

    def test_memory_flag_adds_span_attribution(self, tmp_path, capsys):
        from repro.obs import MEMORY_ATTR, load_trace

        trace = tmp_path / "mem.jsonl"
        assert main(["experiment", "EX01", "--trace", str(trace), "--memory"]) == 0
        records = load_trace(trace)
        assert all(MEMORY_ATTR in record["attrs"] for record in records)
        capsys.readouterr()
        assert main(["trace", "top", str(trace)]) == 0
        assert "mem kb" in capsys.readouterr().out


class TestBench:
    def test_bench_writes_a_schema_valid_document_and_trace(self, tmp_path, capsys):
        from repro.evaluation.benchtrack import validate_bench
        from repro.obs import load_trace, validate_trace

        out_path = tmp_path / "BENCH_scale.json"
        trace_path = tmp_path / "bench.jsonl"
        code = main(
            ["bench", "--sizes", "24", "--queries", "2", "--sources", "2",
             "--out", str(out_path), "--trace-out", str(trace_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "24 agents:" in out and "repro-bench/1" in out
        import json as _json

        document = _json.loads(out_path.read_text(encoding="utf-8"))
        assert validate_bench(document) == []
        assert validate_trace(load_trace(trace_path)) == []

    def test_bench_rejects_malformed_sizes(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--sizes", "ten", "--out", str(tmp_path / "b.json")])
