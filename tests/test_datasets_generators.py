"""Unit tests for the synthetic community generator."""

from __future__ import annotations

import pytest

from repro.core.similarity import cosine
from repro.datasets.generators import CommunityConfig, generate_community


class TestConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            CommunityConfig(n_agents=1)
        with pytest.raises(ValueError):
            CommunityConfig(n_products=0)
        with pytest.raises(ValueError):
            CommunityConfig(n_clusters=0)
        with pytest.raises(ValueError):
            CommunityConfig(n_agents=5, n_clusters=6)
        with pytest.raises(ValueError):
            CommunityConfig(interest_fidelity=1.5)
        with pytest.raises(ValueError):
            CommunityConfig(trust_homophily=-0.1)
        with pytest.raises(ValueError):
            CommunityConfig(distrust_fraction=0.9)
        with pytest.raises(ValueError):
            CommunityConfig(trust_min_out=0)
        with pytest.raises(ValueError):
            CommunityConfig(trust_min_out=5, trust_mean_out=2)
        with pytest.raises(ValueError):
            CommunityConfig(ratings_min=0)


class TestGeneration:
    @pytest.fixture(scope="class")
    def community(self):
        return generate_community(
            CommunityConfig(n_agents=100, n_products=200, n_clusters=5, seed=3)
        )

    def test_sizes(self, community):
        assert len(community.dataset.agents) == 100
        assert len(community.dataset.products) == 200

    def test_dataset_valid(self, community):
        community.dataset.validate()

    def test_membership_covers_all_agents(self, community):
        assert set(community.membership) == set(community.dataset.agents)
        assert all(0 <= c < 5 for c in community.membership.values())

    def test_every_agent_rates(self, community):
        for agent in community.dataset.agents:
            assert len(community.dataset.ratings_of(agent)) >= 2

    def test_every_agent_trusts(self, community):
        for agent in community.dataset.agents:
            assert len(community.dataset.trust_of(agent)) >= 1

    def test_implicit_ratings_are_plus_one(self, community):
        assert all(r.value == 1.0 for r in community.dataset.iter_ratings())

    def test_no_distrust_by_default(self, community):
        assert all(s.value > 0 for s in community.dataset.iter_trust())

    def test_deterministic(self):
        config = CommunityConfig(n_agents=40, n_products=60, n_clusters=4, seed=9)
        first = generate_community(config)
        second = generate_community(config)
        assert first.dataset.trust == second.dataset.trust
        assert first.dataset.ratings == second.dataset.ratings
        assert first.membership == second.membership

    def test_different_seeds_differ(self):
        base = CommunityConfig(n_agents=40, n_products=60, n_clusters=4, seed=1)
        other = CommunityConfig(n_agents=40, n_products=60, n_clusters=4, seed=2)
        assert (
            generate_community(base).dataset.trust
            != generate_community(other).dataset.trust
        )

    def test_agents_in_cluster(self, community):
        members = community.agents_in_cluster(0)
        assert members
        assert all(community.membership[a] == 0 for a in members)

    def test_cluster_products_nonempty(self, community):
        assert all(community.cluster_products.values())


class TestPlantedStructure:
    """The generator must actually plant the homophily the paper relies on."""

    def test_interest_homophily(self, small_community):
        from repro.core.profiles import TaxonomyProfileBuilder
        from repro.core.recommender import ProfileStore
        import random

        store = ProfileStore(
            small_community.dataset, TaxonomyProfileBuilder(small_community.taxonomy)
        )
        agents = sorted(small_community.dataset.agents)
        rng = random.Random(4)
        same, cross = [], []
        for _ in range(400):
            a, b = rng.sample(agents, 2)
            value = cosine(store.profile(a), store.profile(b))
            if small_community.membership[a] == small_community.membership[b]:
                same.append(value)
            else:
                cross.append(value)
        assert sum(same) / len(same) > sum(cross) / len(cross)

    def test_trust_homophily(self, small_community):
        dataset = small_community.dataset
        membership = small_community.membership
        same = sum(
            1
            for s in dataset.iter_trust()
            if membership[s.source] == membership[s.target]
        )
        total = len(dataset.trust)
        clusters = small_community.config.n_clusters
        # Homophily 0.75 with 6 clusters: same-cluster share must far
        # exceed the 1/6 chance level.
        assert same / total > 2.0 / clusters

    def test_distrust_fraction_respected(self):
        config = CommunityConfig(
            n_agents=80, n_products=100, n_clusters=4, seed=5, distrust_fraction=0.2
        )
        community = generate_community(config)
        negative = sum(1 for s in community.dataset.iter_trust() if s.value < 0)
        total = len(community.dataset.trust)
        assert 0.1 < negative / total < 0.3

    def test_explicit_ratings_mode(self):
        config = CommunityConfig(
            n_agents=40, n_products=80, n_clusters=4, seed=6, explicit_ratings=True
        )
        community = generate_community(config)
        values = [r.value for r in community.dataset.iter_ratings()]
        assert any(v < 0 for v in values)
        assert any(0 < v < 1 for v in values)
        assert all(-1 <= v <= 1 for v in values)
