"""Unit and integration tests for the FOAF crawler."""

from __future__ import annotations

import pytest

from repro.web.crawler import Crawler, publish_community
from repro.web.network import SimulatedWeb


@pytest.fixture
def published(tiny_dataset, figure1):
    web = SimulatedWeb()
    taxonomy_uri, catalog_uri = publish_community(web, tiny_dataset, figure1)
    return web, taxonomy_uri, catalog_uri


ALICE = "http://example.org/alice"
EVE = "http://example.org/eve"


class TestCrawl:
    def test_discovers_trust_component(self, published, tiny_dataset):
        web, _, _ = published
        crawler = Crawler(web=web)
        report = crawler.crawl([ALICE])
        # alice -> bob, carol; carol -> dave; dave -> alice. eve unreachable.
        assert report.fetched == 4
        assert EVE not in crawler.store
        assert not report.missing
        assert not report.parse_failures

    def test_budget_exhaustion(self, published):
        web, _, _ = published
        crawler = Crawler(web=web)
        report = crawler.crawl([ALICE], budget=2)
        assert report.fetched == 2
        assert report.budget_exhausted
        assert report.frontier_left

    def test_budget_zero_fetches_nothing(self, published):
        web, _, _ = published
        crawler = Crawler(web=web)
        report = crawler.crawl([ALICE], budget=0)
        assert report.fetched == 0
        assert report.budget_exhausted

    def test_max_depth(self, published):
        web, _, _ = published
        crawler = Crawler(web=web)
        report = crawler.crawl([ALICE], max_depth=1)
        # alice + direct neighbors bob, carol; dave is at depth 2.
        assert report.fetched == 3

    def test_missing_documents_reported(self, published):
        web, _, _ = published
        crawler = Crawler(web=web)
        crawler.crawl([ALICE])
        report = crawler.crawl(["http://example.org/ghost"])
        assert "http://example.org/ghost" in report.missing

    def test_recrawl_is_free_when_fresh(self, published):
        web, _, _ = published
        crawler = Crawler(web=web)
        first = crawler.crawl([ALICE])
        second = crawler.crawl([ALICE])
        assert first.fetched == 4
        assert second.fetched == 0  # replica fresh, no fetches spent

    def test_negative_budget_rejected(self, published):
        web, _, _ = published
        with pytest.raises(ValueError):
            Crawler(web=web).crawl([ALICE], budget=-1)

    def test_parse_failure_recorded_and_stored(self, published):
        web, _, _ = published
        web.publish("http://example.org/bad", "not rdf at all")
        crawler = Crawler(web=web)
        report = crawler.crawl(["http://example.org/bad"])
        assert "http://example.org/bad" in report.parse_failures
        assert "http://example.org/bad" in crawler.store

    def test_clock_advances(self, published):
        web, _, _ = published
        crawler = Crawler(web=web)
        crawler.crawl([ALICE])
        crawler.refresh()
        assert crawler.clock == 2


class TestIngestionClamping:
    """Crawled trust weights are untrusted input (§3.2/§4): the crawler
    clamps stated values onto [-1, +1] and drops NaN statements."""

    def _homepage(self, value):
        from repro.semweb.namespace import FOAF, TRUST
        from repro.semweb.rdf import BNode, Graph, Literal, URIRef
        from repro.semweb.serializer import serialize_ntriples

        alice, bob = URIRef(ALICE), URIRef("http://example.org/bob")
        graph = Graph()
        graph.add((alice, FOAF.knows, bob))
        statement = BNode("t0")
        graph.add((alice, TRUST.trusts, statement))
        graph.add((statement, TRUST.target, bob))
        graph.add((statement, TRUST.value, Literal(value)))
        return serialize_ntriples(graph)

    def _weights(self, value):
        crawler = Crawler(web=SimulatedWeb())
        return dict(
            crawler._extract_weighted_links(ALICE, self._homepage(value), [])
        )

    def test_in_range_weight_kept(self):
        assert self._weights(0.8) == {"http://example.org/bob": 0.8}

    def test_overlarge_weight_clamped_to_upper_bound(self):
        assert self._weights(7.5) == {"http://example.org/bob": 1.0}

    def test_negative_weight_clamped_to_lower_bound(self):
        assert self._weights(-3.0) == {"http://example.org/bob": -1.0}

    def test_nan_weight_dropped_to_knows_default(self):
        # The foaf:knows link survives with the implicit 0.0 weight; the
        # NaN trust statement itself is discarded.
        assert self._weights(float("nan")) == {"http://example.org/bob": 0.0}


class TestTrustPrioritizedCrawl:
    def _weighted_web(self):
        """alice trusts bob strongly (0.9) and carol weakly (0.1); both
        lead to further agents."""
        from repro.core.models import Agent, Dataset, Product, Rating, TrustStatement
        from repro.core.taxonomy import figure1_fragment

        dataset = Dataset()
        names = ["alice", "bob", "carol", "bobfriend", "carolfriend"]
        for name in names:
            dataset.add_agent(Agent(uri=f"http://example.org/{name}", name=name))
        dataset.add_product(Product(identifier="isbn:1"))
        for name in names:
            dataset.add_rating(Rating(agent=f"http://example.org/{name}", product="isbn:1"))
        edges = [
            ("alice", "bob", 0.9),
            ("alice", "carol", 0.1),
            ("bob", "bobfriend", 0.9),
            ("carol", "carolfriend", 0.9),
        ]
        for source, target, value in edges:
            dataset.add_trust(
                TrustStatement(
                    source=f"http://example.org/{source}",
                    target=f"http://example.org/{target}",
                    value=value,
                )
            )
        web = SimulatedWeb()
        publish_community(web, dataset, figure1_fragment())
        return web

    def test_high_trust_region_fetched_first(self):
        web = self._weighted_web()
        crawler = Crawler(web=web)
        # Budget 3: alice + 2 more.  Best-first must pick bob (0.9) and
        # then bobfriend (0.81) before carol (0.1).
        report = crawler.crawl(
            ["http://example.org/alice"], budget=3, prioritize_by_trust=True
        )
        assert report.fetched == 3
        assert "http://example.org/bob" in crawler.store
        assert "http://example.org/bobfriend" in crawler.store
        assert "http://example.org/carol" not in crawler.store

    def test_bfs_fetches_by_distance_instead(self):
        web = self._weighted_web()
        crawler = Crawler(web=web)
        report = crawler.crawl(["http://example.org/alice"], budget=3)
        assert report.fetched == 3
        # BFS takes both depth-1 neighbors before any depth-2 agent.
        assert "http://example.org/carol" in crawler.store
        assert "http://example.org/bobfriend" not in crawler.store

    def test_unbudgeted_prioritized_covers_component(self):
        web = self._weighted_web()
        crawler = Crawler(web=web)
        report = crawler.crawl(
            ["http://example.org/alice"], prioritize_by_trust=True
        )
        assert report.fetched == 5
        assert not report.budget_exhausted

    def test_prioritized_equals_bfs_coverage(self, published):
        web, _, _ = published
        bfs = Crawler(web=web)
        bfs_report = bfs.crawl([ALICE])
        prioritized = Crawler(web=web)
        pri_report = prioritized.crawl([ALICE], prioritize_by_trust=True)
        assert set(bfs.store.uris()) == set(prioritized.store.uris())
        assert bfs_report.fetched == pri_report.fetched


class TestGlobalDocuments:
    def test_fetch_taxonomy_and_catalog(self, published, figure1, tiny_dataset):
        web, taxonomy_uri, catalog_uri = published
        crawler = Crawler(web=web)
        report = crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        assert report.fetched == 2
        taxonomy = crawler.store.assemble_taxonomy()
        assert taxonomy is not None
        assert set(taxonomy) == set(figure1)
        dataset, _ = crawler.store.assemble_dataset()
        assert dataset.products == tiny_dataset.products


class TestRefresh:
    def test_refresh_picks_up_new_version(self, published, tiny_dataset, figure1):
        web, _, _ = published
        crawler = Crawler(web=web)
        crawler.crawl([ALICE])
        old_version = crawler.store.get(ALICE).version

        # The agent publishes an updated homepage asynchronously.
        from repro.semweb.foaf import publish_agent
        from repro.semweb.serializer import serialize_ntriples

        agent = tiny_dataset.agents[ALICE]
        new_body = serialize_ntriples(
            publish_agent(agent, {"http://example.org/dave": 0.9}, {"isbn:3": 1.0})
        )
        web.stage_update(ALICE, new_body)

        # Before delivery the refresh sees nothing new.
        assert crawler.refresh().fetched == 0
        web.deliver()
        report = crawler.refresh()
        assert report.fetched == 1
        assert crawler.store.get(ALICE).version == old_version + 1
        dataset, _ = crawler.store.assemble_dataset()
        assert dataset.trust_of(ALICE) == {"http://example.org/dave": 0.9}

    def test_refresh_budget(self, published, tiny_dataset):
        web, _, _ = published
        crawler = Crawler(web=web)
        crawler.crawl([ALICE])
        # Update every crawled homepage.
        for uri in list(crawler.store.uris(kind="agent")):
            web.publish(uri, web.fetch(uri).body + "\n")
        report = crawler.refresh(budget=2)
        assert report.fetched == 2
        assert report.budget_exhausted


class TestEndToEnd:
    def test_crawl_assemble_recommend(self, published, tiny_dataset, figure1):
        from repro.core.recommender import SemanticWebRecommender

        web, taxonomy_uri, catalog_uri = published
        crawler = Crawler(web=web)
        crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        crawler.crawl([ALICE])
        partial, failures = crawler.store.assemble_dataset()
        assert not failures
        taxonomy = crawler.store.assemble_taxonomy()
        recommender = SemanticWebRecommender.from_dataset(partial, taxonomy)
        recs = recommender.recommend(ALICE, limit=5)
        assert recs
        # Identical pipeline over the full dataset agrees on the votable
        # products reachable through alice's trust component.
        reference = SemanticWebRecommender.from_dataset(tiny_dataset, figure1)
        assert {r.product for r in recs} <= {
            r.product for r in reference.recommend(ALICE, limit=100)
        }


class TestCrawlUnderFaults:
    """Satellites for the resilience layer: degradation and quarantine."""

    def test_degraded_fallback_uses_stale_replica(self, published):
        from repro.web.faults import FaultPlan, FaultyWeb, RetryPolicy

        web, _, _ = published
        warm = Crawler(web=web)
        warm.crawl([ALICE])
        old_body = warm.store.get(ALICE).body
        # Every crawled homepage advances, then the Web goes dark.
        for uri in list(warm.store.uris(kind="agent")):
            web.publish(uri, web.fetch(uri).body + "\n")
        dark = Crawler(
            web=FaultyWeb(web, FaultPlan(transient_rate=1.0, seed=1)),
            store=warm.store,
            retry=RetryPolicy(max_retries=1),
        )
        report = dark.crawl([ALICE])
        assert ALICE in report.degraded
        assert set(report.degraded) == set(report.unreachable)
        assert report.retries > 0
        # The stale replica survives, is stamped, and still assembles.
        assert dark.store.get(ALICE).body == old_body
        assert dark.store.get(ALICE).degraded
        dataset, failures = dark.store.assemble_dataset()
        assert not failures
        assert ALICE in dataset.agents

    def test_successful_refetch_clears_degraded_stamp(self, published):
        from repro.web.faults import FaultPlan, FaultyWeb

        web, _, _ = published
        warm = Crawler(web=web)
        warm.crawl([ALICE])
        web.publish(ALICE, web.fetch(ALICE).body + "\n")
        dark = Crawler(
            web=FaultyWeb(web, FaultPlan(transient_rate=1.0, seed=1)),
            store=warm.store,
        )
        dark.crawl([ALICE])
        assert warm.store.get(ALICE).degraded
        warm.crawl([ALICE])  # the Web is reachable again
        assert not warm.store.get(ALICE).degraded
        assert list(warm.store.degraded_uris()) == []

    def test_quarantine_protects_good_replica(self, published):
        from repro.web.faults import FaultPlan, FaultyWeb

        web, _, _ = published
        warm = Crawler(web=web)
        warm.crawl([ALICE])
        old_body = warm.store.get(ALICE).body
        web.publish(ALICE, web.fetch(ALICE).body + "\n")
        corrupting = Crawler(
            web=FaultyWeb(web, FaultPlan(corruption_rate=1.0, seed=3)),
            store=warm.store,
        )
        report = corrupting.crawl([ALICE])
        assert ALICE in report.quarantined
        assert corrupting.store.get(ALICE).body == old_body
        assert ALICE in corrupting.store.quarantined_uris()
        dataset, failures = corrupting.store.assemble_dataset()
        assert not failures

    def test_breaker_trips_surface_in_report(self, published):
        from repro.web.faults import (
            CircuitBreakerRegistry,
            FaultPlan,
            FaultyWeb,
            RetryPolicy,
        )

        web, _, _ = published
        crawler = Crawler(
            web=FaultyWeb(web, FaultPlan(transient_rate=1.0, seed=2)),
            retry=RetryPolicy(max_retries=5),
            breakers=CircuitBreakerRegistry(failure_threshold=2, cooldown_ticks=50),
        )
        report = crawler.crawl([ALICE])
        assert ALICE in report.unreachable
        assert report.breaker_trips >= 1
        assert report.breaker_short_circuits >= 1
        assert report.fetched == 0  # failed attempts never charge budget
