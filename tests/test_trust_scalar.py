"""Unit tests for the scalar trust metric baselines."""

from __future__ import annotations

import pytest

from repro.trust.graph import TrustGraph
from repro.trust.scalar import (
    horizon_average_trust,
    multiplicative_path_trust,
    scalar_neighborhood,
)


def graph() -> TrustGraph:
    return TrustGraph.from_edges(
        [
            ("a", "b", 0.9),
            ("b", "c", 0.8),
            ("a", "c", 0.5),
            ("c", "d", 1.0),
            ("a", "x", -0.9),
        ]
    )


class TestMultiplicativePath:
    def test_direct_edge(self):
        trust = multiplicative_path_trust(graph(), "a")
        assert trust["b"] == pytest.approx(0.9)

    def test_best_path_wins(self):
        trust = multiplicative_path_trust(graph(), "a")
        # a->b->c = 0.72 beats direct a->c = 0.5.
        assert trust["c"] == pytest.approx(0.72)

    def test_attenuation_along_chain(self):
        trust = multiplicative_path_trust(graph(), "a")
        assert trust["d"] == pytest.approx(0.72 * 1.0)
        assert trust["d"] <= trust["c"]

    def test_distrust_not_followed(self):
        trust = multiplicative_path_trust(graph(), "a")
        assert "x" not in trust

    def test_source_not_included(self):
        assert "a" not in multiplicative_path_trust(graph(), "a")

    def test_max_depth(self):
        trust = multiplicative_path_trust(graph(), "a", max_depth=1)
        assert set(trust) == {"b", "c"}
        # Depth 1 only sees the direct (weaker) edge to c.
        assert trust["c"] == pytest.approx(0.5)

    def test_invalid_max_depth(self):
        with pytest.raises(ValueError):
            multiplicative_path_trust(graph(), "a", max_depth=0)

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            multiplicative_path_trust(graph(), "ghost")

    def test_values_within_unit_interval(self):
        trust = multiplicative_path_trust(graph(), "a")
        assert all(0.0 < v <= 1.0 for v in trust.values())

    def test_monotone_under_prefix(self):
        """Trust in a node never exceeds trust in the best predecessor."""
        g = graph()
        trust = multiplicative_path_trust(g, "a")
        for node, value in trust.items():
            predecessors = [
                trust.get(p, 1.0 if p == "a" else 0.0) * w
                for p, w in g.predecessors(node).items()
                if w > 0
            ]
            assert value == pytest.approx(max(predecessors))


class TestHorizonAverage:
    def test_direct_statement_taken_verbatim(self):
        scores = horizon_average_trust(graph(), "a", max_depth=2)
        assert scores["b"] == pytest.approx(0.9)
        assert scores["c"] == pytest.approx(0.5)

    def test_indirect_attenuated_average(self):
        scores = horizon_average_trust(graph(), "a", max_depth=3, attenuation=0.5)
        # d is at BFS level 2 (a->c->d), only incoming statement c->d = 1.0.
        assert scores["d"] == pytest.approx(1.0 * 0.5)

    def test_invalid_attenuation(self):
        with pytest.raises(ValueError):
            horizon_average_trust(graph(), "a", attenuation=0.0)

    def test_horizon_respected(self):
        scores = horizon_average_trust(graph(), "a", max_depth=1)
        assert "d" not in scores


class TestScalarNeighborhood:
    def test_threshold_strict(self):
        scores = {"a": 0.5, "b": 0.2, "c": 0.20001}
        assert scalar_neighborhood(scores, 0.2) == {"a", "c"}

    def test_empty(self):
        assert scalar_neighborhood({}, 0.1) == set()
