"""Unit tests for the simulated Web."""

from __future__ import annotations

import pytest

from repro.web.network import SimulatedWeb, WebError


class TestHosting:
    def test_publish_and_fetch(self):
        web = SimulatedWeb()
        web.publish("u:1", "body")
        result = web.fetch("u:1")
        assert result.body == "body"
        assert result.version == 1

    def test_fetch_missing_raises(self):
        with pytest.raises(WebError):
            SimulatedWeb().fetch("u:missing")

    def test_republish_bumps_version(self):
        web = SimulatedWeb()
        web.publish("u:1", "v1")
        web.publish("u:1", "v2")
        result = web.fetch("u:1")
        assert result.body == "v2"
        assert result.version == 2

    def test_empty_uri_rejected(self):
        with pytest.raises(ValueError):
            SimulatedWeb().publish("", "x")

    def test_exists_and_len(self):
        web = SimulatedWeb()
        assert not web.exists("u:1")
        web.publish("u:1", "x")
        assert web.exists("u:1")
        assert "u:1" in web
        assert len(web) == 1

    def test_version_probe(self):
        web = SimulatedWeb()
        assert web.version("u:1") == 0
        web.publish("u:1", "x")
        assert web.version("u:1") == 1

    def test_fetch_counts_traffic(self):
        web = SimulatedWeb()
        web.publish("u:1", "x")
        web.fetch("u:1")
        web.fetch("u:1")
        assert web.fetch_count == 2

    def test_version_probe_is_free(self):
        web = SimulatedWeb()
        web.publish("u:1", "x")
        web.version("u:1")
        assert web.fetch_count == 0


class TestAsynchronousUpdates:
    def test_staged_update_invisible(self):
        web = SimulatedWeb()
        web.publish("u:1", "old")
        web.stage_update("u:1", "new")
        assert web.fetch("u:1").body == "old"
        assert web.pending_updates() == 1

    def test_deliver_applies(self):
        web = SimulatedWeb()
        web.publish("u:1", "old")
        web.stage_update("u:1", "new")
        assert web.deliver() == 1
        assert web.fetch("u:1").body == "new"
        assert web.fetch("u:1").version == 2
        assert web.pending_updates() == 0

    def test_staging_keeps_only_newest(self):
        web = SimulatedWeb()
        web.publish("u:1", "old")
        web.stage_update("u:1", "mid")
        web.stage_update("u:1", "new")
        web.deliver()
        assert web.fetch("u:1").body == "new"
        assert web.fetch("u:1").version == 2  # one delivery, one bump

    def test_stage_for_unhosted_uri_creates_on_delivery(self):
        web = SimulatedWeb()
        web.stage_update("u:new", "hello")
        assert not web.exists("u:new")
        web.deliver()
        assert web.fetch("u:new").body == "hello"

    def test_deliver_empty(self):
        assert SimulatedWeb().deliver() == 0


class TestTrafficAccounting:
    def test_missing_fetch_counts_as_error_not_fetch(self):
        import pytest

        from repro.web.network import WebError

        web = SimulatedWeb()
        web.publish("u:1", "x")
        web.fetch("u:1")
        with pytest.raises(WebError):
            web.fetch("u:ghost")
        assert web.fetch_count == 1
        assert web.error_count == 1

    def test_version_probes_counted_separately(self):
        web = SimulatedWeb()
        web.publish("u:1", "x")
        web.version("u:1")
        web.version("u:ghost")
        assert web.probe_count == 2
        assert web.fetch_count == 0

    def test_total_traffic_sums_all_interactions(self):
        import pytest

        from repro.web.network import WebError

        web = SimulatedWeb()
        web.publish("u:1", "x")
        web.fetch("u:1")
        web.version("u:1")
        with pytest.raises(WebError):
            web.fetch("u:ghost")
        assert web.total_traffic == 3
