"""Tests for :mod:`repro.analysis` — the reprolint static-analysis pass.

Each rule gets a positive fixture (a snippet that must trigger it), a
negative fixture (idiomatic code that must stay clean), and a
suppression fixture (the same violation silenced by
``# reprolint: disable=RLxxx``).  The JSON output schema and the CLI
contract are pinned, and a self-check asserts the reproduction's own
source tree lints clean — the same gate CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintEngine,
    all_rule_codes,
    format_findings,
    format_findings_json,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import JSON_SCHEMA_KEYS
from repro.analysis.rules import DEFAULT_RULES

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes_of(findings: list[Finding]) -> list[str]:
    return [finding.code for finding in findings]


class TestRuleCatalogue:
    def test_at_least_six_rules(self):
        assert len(DEFAULT_RULES) >= 6

    def test_codes_are_unique_and_stable(self):
        codes = all_rule_codes()
        assert len(codes) == len(set(codes))
        assert set(codes) >= {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        }

    def test_every_rule_has_a_summary(self):
        assert all(rule.summary for rule in DEFAULT_RULES)


class TestRL001UnseededRandom:
    def test_module_level_random_triggers(self):
        findings = lint_source("import random\nx = random.random()\n")
        assert "RL001" in codes_of(findings)

    def test_module_level_shuffle_triggers(self):
        findings = lint_source("import random\nrandom.shuffle(items)\n")
        assert "RL001" in codes_of(findings)

    def test_np_random_triggers(self):
        findings = lint_source("import numpy as np\nx = np.random.rand(3)\n")
        assert "RL001" in codes_of(findings)

    def test_unseeded_generator_construction_triggers(self):
        findings = lint_source("import random\nrng = random.Random()\n")
        assert "RL001" in codes_of(findings)
        findings = lint_source("import numpy as np\nrng = np.random.default_rng()\n")
        assert "RL001" in codes_of(findings)

    def test_seeded_generator_is_clean(self):
        assert lint_source("import random\nrng = random.Random(42)\n") == []
        assert lint_source(
            "import numpy as np\nrng = np.random.default_rng(7)\n"
        ) == []

    def test_instance_methods_are_clean(self):
        source = "rng = get_rng()\nvalue = rng.random()\nrng.shuffle(items)\n"
        assert lint_source(source) == []

    def test_suppression_silences(self):
        source = (
            "import random\n"
            "x = random.random()  # reprolint: disable=RL001\n"
        )
        assert lint_source(source) == []


class TestRL002FloatEqualityOnScores:
    def test_score_name_vs_float_literal_triggers(self):
        findings = lint_source("ok = similarity == 1.0\n")
        assert codes_of(findings) == ["RL002"]

    def test_not_equal_triggers(self):
        findings = lint_source("bad = trust_value != 0.0\n")
        assert codes_of(findings) == ["RL002"]

    def test_score_function_call_triggers(self):
        findings = lint_source("flag = pearson(a, b) == 0.0\n")
        assert codes_of(findings) == ["RL002"]

    def test_ordering_comparison_is_clean(self):
        assert lint_source("flag = similarity > 0.5\n") == []

    def test_integer_comparison_is_clean(self):
        assert lint_source("flag = rank == 3\n") == []

    def test_non_score_names_are_clean(self):
        assert lint_source("flag = width == 2.0\n") == []

    def test_suppression_silences(self):
        source = "ok = score == 1.0  # reprolint: disable=RL002\n"
        assert lint_source(source) == []


class TestRL003SilentOverbroadExcept:
    def test_bare_except_pass_triggers(self):
        source = "try:\n    fetch()\nexcept:\n    pass\n"
        assert "RL003" in codes_of(lint_source(source))

    def test_except_exception_pass_triggers(self):
        source = "try:\n    fetch()\nexcept Exception:\n    result = None\n"
        assert "RL003" in codes_of(lint_source(source))

    def test_reraise_is_clean(self):
        source = "try:\n    fetch()\nexcept Exception:\n    raise\n"
        assert lint_source(source) == []

    def test_recording_to_report_is_clean(self):
        source = (
            "try:\n    fetch()\nexcept Exception as error:\n"
            "    report.parse_failures.append(str(error))\n"
        )
        assert lint_source(source) == []

    def test_narrow_except_is_clean(self):
        source = "try:\n    fetch()\nexcept ValueError:\n    pass\n"
        assert lint_source(source) == []

    def test_suppression_silences(self):
        source = (
            "try:\n    fetch()\n"
            "except Exception:  # reprolint: disable=RL003\n    pass\n"
        )
        assert lint_source(source) == []


class TestRL004MutableDefaultArg:
    def test_list_default_triggers(self):
        assert "RL004" in codes_of(lint_source("def f(items=[]):\n    pass\n"))

    def test_dict_call_default_triggers(self):
        assert "RL004" in codes_of(lint_source("def f(x=dict()):\n    pass\n"))

    def test_kwonly_set_default_triggers(self):
        assert "RL004" in codes_of(
            lint_source("def f(*, seen=set()):\n    pass\n")
        )

    def test_none_default_is_clean(self):
        assert lint_source("def f(items=None):\n    pass\n") == []

    def test_frozen_default_is_clean(self):
        assert lint_source("def f(items=()):\n    pass\n") == []

    def test_suppression_silences(self):
        source = "def f(items=[]):  # reprolint: disable=RL004\n    pass\n"
        assert lint_source(source) == []


class TestRL005UnsortedSetIteration:
    def test_for_over_set_call_triggers(self):
        source = "for x in set(items):\n    emit(x)\n"
        assert "RL005" in codes_of(lint_source(source))

    def test_list_over_keys_union_triggers(self):
        source = "keys = list(left.keys() | right.keys())\n"
        assert "RL005" in codes_of(lint_source(source))

    def test_comprehension_over_set_literal_triggers(self):
        source = "rows = [f(x) for x in {'a', 'b', 'c'}]\n"
        assert "RL005" in codes_of(lint_source(source))

    def test_join_over_set_triggers(self):
        source = "text = ', '.join({'b', 'a'})\n"
        assert "RL005" in codes_of(lint_source(source))

    def test_sorted_wrapper_is_clean(self):
        assert lint_source("for x in sorted(set(items)):\n    emit(x)\n") == []
        assert lint_source("keys = sorted(left.keys() | right.keys())\n") == []

    def test_order_insensitive_aggregation_is_clean(self):
        assert lint_source("n = len(set(items))\n") == []
        assert lint_source("total = sum(v for v in values)\n") == []

    def test_plain_dict_iteration_is_clean(self):
        # Insertion order is deterministic; only *set* order is hash-seeded.
        assert lint_source("for k in mapping:\n    emit(k)\n") == []

    def test_suppression_silences(self):
        source = (
            "for x in set(items):  # reprolint: disable=RL005\n    emit(x)\n"
        )
        assert lint_source(source) == []


class TestRL006ScoreLiteralRange:
    def test_out_of_range_trust_literal_triggers(self):
        source = "s = TrustStatement('a', 'b', 1.5)\n"
        assert "RL006" in codes_of(lint_source(source))

    def test_out_of_range_value_keyword_triggers(self):
        source = "r = Rating(agent='a', product='b', value=-2.0)\n"
        assert "RL006" in codes_of(lint_source(source))

    def test_out_of_range_validate_score_triggers(self):
        assert "RL006" in codes_of(lint_source("validate_score(7)\n"))

    def test_in_range_literals_are_clean(self):
        assert lint_source("s = TrustStatement('a', 'b', -1.0)\n") == []
        assert lint_source("r = Rating(agent='a', product='b', value=1.0)\n") == []

    def test_unrelated_calls_are_clean(self):
        assert lint_source("resize(width=1920)\n") == []

    def test_suppression_silences(self):
        source = (
            "s = TrustStatement('a', 'b', 1.5)  # reprolint: disable=RL006\n"
        )
        assert lint_source(source) == []


class TestRL007WallClockDuration:
    def test_time_time_triggers(self):
        source = "start = time.time()\n"
        assert "RL007" in codes_of(lint_source(source))

    def test_elapsed_pattern_triggers_on_each_read(self):
        source = "start = time.time()\nelapsed = time.time() - start\n"
        assert codes_of(lint_source(source)) == ["RL007", "RL007"]

    def test_monotonic_clocks_are_clean(self):
        assert lint_source("t = time.perf_counter()\n") == []
        assert lint_source("t = time.monotonic()\n") == []

    def test_stopwatch_is_clean(self):
        source = (
            "watch = Stopwatch()\n"
            "with watch:\n"
            "    work()\n"
            "print(watch.elapsed_ms)\n"
        )
        assert lint_source(source) == []

    def test_unrelated_time_attribute_is_clean(self):
        assert lint_source("stamp = self.time.time\n") == []

    def test_suppression_silences(self):
        source = "start = time.time()  # reprolint: disable=RL007\n"
        assert lint_source(source) == []


class TestRL008SharedDatasetMutation:
    def test_entry_point_add_call_triggers(self):
        source = "def run_ex99(dataset):\n    dataset.add_agent(x)\n"
        assert "RL008" in codes_of(lint_source(source))

    def test_inject_field_update_triggers(self):
        source = (
            "def inject_bad(train_dataset):\n"
            "    train_dataset.agents.update(extra)\n"
        )
        assert "RL008" in codes_of(lint_source(source))

    def test_field_subscript_assignment_triggers(self):
        source = "def run_ex99(dataset):\n    dataset.trust[key] = edge\n"
        assert "RL008" in codes_of(lint_source(source))

    def test_field_delete_triggers(self):
        source = "def run_ex99(dataset):\n    del dataset.ratings[key]\n"
        assert "RL008" in codes_of(lint_source(source))

    def test_annotated_param_triggers(self):
        source = "def run_ex99(ds: Dataset):\n    ds.add_product(p)\n"
        assert "RL008" in codes_of(lint_source(source))

    def test_rebound_copy_is_clean(self):
        source = (
            "def run_ex99(dataset):\n"
            "    dataset = copy_dataset(dataset)\n"
            "    dataset.add_agent(x)\n"
        )
        assert lint_source(source) == []

    def test_helper_functions_are_exempt(self):
        source = "def _mint(dataset):\n    dataset.add_agent(x)\n"
        assert lint_source(source) == []

    def test_read_only_access_is_clean(self):
        source = "def run_ex99(dataset):\n    return len(dataset.agents)\n"
        assert lint_source(source) == []

    def test_suppression_silences(self):
        source = (
            "def run_ex99(dataset):\n"
            "    dataset.add_agent(x)  # reprolint: disable=RL008\n"
        )
        assert lint_source(source) == []


class TestRL009HardwiredTrustEngine:
    EVAL_PATH = "src/repro/evaluation/experiments.py"

    def test_chained_compute_without_engine_triggers(self):
        source = "r = Appleseed().compute(graph, source)\n"
        assert "RL009" in codes_of(lint_source(source, path=self.EVAL_PATH))

    def test_cli_module_is_in_scope(self):
        source = "r = Advogato(target_size=5).compute(graph, source)\n"
        assert "RL009" in codes_of(lint_source(source, path="src/repro/cli.py"))

    def test_engine_keyword_is_clean(self):
        source = "r = Appleseed(engine=engine).compute(graph, source)\n"
        assert lint_source(source, path=self.EVAL_PATH) == []

    def test_unchained_construction_is_clean(self):
        # Metric handed to rank_many — the resolver runs inside rank_many.
        source = (
            "metric = Appleseed(spreading_factor=d)\n"
            "rows = rank_many(graph, sources, metric=metric)\n"
        )
        assert lint_source(source, path=self.EVAL_PATH) == []

    def test_library_layers_are_out_of_scope(self):
        source = "r = Appleseed().compute(graph, source)\n"
        assert lint_source(source, path="src/repro/trust/appleseed.py") == []

    def test_pagerank_triggers(self):
        source = "r = PersonalizedPageRank().compute(graph, s)\n"
        assert "RL009" in codes_of(lint_source(source, path=self.EVAL_PATH))

    def test_suppression_silences(self):
        source = (
            "r = Appleseed().compute(graph, s)  # reprolint: disable=RL009\n"
        )
        assert lint_source(source, path=self.EVAL_PATH) == []


class TestRL010BenchSchemaBypass:
    def test_direct_write_text_triggers(self):
        source = 'Path("BENCH_scale.json").write_text(json.dumps(doc))\n'
        findings = lint_source(source, path="benchmarks/bench_new.py")
        assert "RL010" in codes_of(findings)
        assert "write_bench" in findings[0].message

    def test_module_level_output_binding_triggers(self):
        source = (
            'OUTPUT = pathlib.Path(__file__).parent / "BENCH_thing.json"\n'
            "def save(records):\n"
            "    OUTPUT.write_text(json.dumps(records))\n"
        )
        findings = lint_source(source, path="benchmarks/bench_new.py")
        assert "RL010" in codes_of(findings)
        assert "BENCH_thing.json" in findings[0].message

    def test_json_dump_and_open_for_write_trigger(self):
        source = (
            'with open("BENCH_x.json", "w") as fh:\n'
            "    json.dump(doc, fh)\n"
        )
        codes = codes_of(lint_source(source, path="benchmarks/bench_new.py"))
        assert codes.count("RL010") == 1  # the open; dump's subtree has no constant

    def test_reading_a_bench_file_is_clean(self):
        source = (
            'doc = json.loads(Path("BENCH_scale.json").read_text())\n'
            'with open("BENCH_scale.json") as fh:\n'
            "    other = json.load(fh)\n"
        )
        assert lint_source(source, path="scripts/check_thing.py") == []

    def test_non_bench_writers_are_clean(self):
        source = 'Path("results.json").write_text(json.dumps(doc))\n'
        assert lint_source(source, path="benchmarks/bench_new.py") == []

    def test_write_bench_helper_is_clean(self):
        source = 'write_bench(document, "BENCH_scale.json")\n'
        assert lint_source(source, path="src/repro/cli.py") == []

    def test_suppression_silences(self):
        source = (
            'OUTPUT = Path("BENCH_old.json")\n'
            "OUTPUT.write_text(data)  # reprolint: disable=RL010\n"
        )
        assert lint_source(source, path="benchmarks/bench_old.py") == []


class TestSuppressions:
    def test_disable_all_silences_every_code(self):
        source = (
            "def f(items=[], score=random.random()):"
            "  # reprolint: disable-all\n    pass\n"
        )
        assert lint_source(source) == []

    def test_multi_code_suppression(self):
        source = (
            "def f(items=[]):  # reprolint: disable=RL004,RL001\n"
            "    return random.random()\n"
        )
        findings = lint_source(source)
        # RL004 on the def line is silenced; RL001 sits on its own line.
        assert codes_of(findings) == ["RL001"]

    def test_suppression_in_string_literal_is_inert(self):
        source = 'text = "# reprolint: disable=RL004"\ndef f(x=[]):\n    pass\n'
        assert "RL004" in codes_of(lint_source(source))

    def test_suppression_only_applies_to_its_line(self):
        source = (
            "# reprolint: disable=RL004\n"
            "def f(items=[]):\n    pass\n"
        )
        assert "RL004" in codes_of(lint_source(source))


class TestEngineAndOutput:
    def test_select_filters_rules(self):
        source = "def f(items=[]):\n    return random.random()\n"
        findings = lint_source(source, select={"RL004"})
        assert codes_of(findings) == ["RL004"]

    def test_findings_sorted_by_location(self):
        source = (
            "import random\n"
            "a = random.random()\n"
            "def f(items=[]):\n    pass\n"
        )
        findings = lint_source(source)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_json_output_schema(self):
        findings = lint_source("x = random.random()\n", path="snippet.py")
        payload = json.loads(format_findings_json(findings))
        assert set(payload) == {"findings", "count"}
        assert payload["count"] == len(payload["findings"]) == 1
        entry = payload["findings"][0]
        assert set(entry) == set(JSON_SCHEMA_KEYS)
        assert entry["path"] == "snippet.py"
        assert entry["code"] == "RL001"
        assert entry["line"] == 1
        assert isinstance(entry["column"], int)
        assert entry["message"]
        assert entry["summary"]

    def test_human_output_mentions_counts(self):
        findings = lint_source("x = random.random()\n", path="snippet.py")
        text = format_findings(findings)
        assert "snippet.py:1:" in text
        assert "1 finding(s)" in text
        assert format_findings([]) == "reprolint: clean"

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(
            "def f(x=[]):\n    pass\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n", encoding="utf-8")
        findings = lint_paths([tmp_path])
        assert codes_of(findings) == ["RL004"]
        assert findings[0].path.endswith("bad.py")

    def test_engine_with_explicit_rules(self):
        engine = LintEngine(DEFAULT_RULES, select={"RL002"})
        assert [r.code for r in engine.rules] == ["RL002"]


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x=[]):\n    pass\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 1
        assert "RL004" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x=[]):\n    pass\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_unknown_rule_code_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--select", "RL999"]) == 2
        assert "RL999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules", "unused"]) == 0
        out = capsys.readouterr().out
        for code in all_rule_codes():
            assert code in out

    def test_repro_cli_wires_lint(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert repro_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


class TestSelfCheck:
    """The reproduction's own tree must satisfy its own invariants."""

    @pytest.mark.parametrize("tree", ["src/repro", "tests", "benchmarks"])
    def test_tree_lints_clean(self, tree):
        target = REPO_ROOT / tree
        if not target.exists():
            pytest.skip(f"{tree} not present")
        findings = lint_paths([target])
        assert findings == [], "\n" + format_findings(findings)
