"""Unit tests for the attack models."""

from __future__ import annotations

import pytest

from repro.evaluation.attacks import (
    inject_profile_copy_attack,
    inject_sybil_region,
)


class TestSybilRegion:
    def test_sybils_added(self, tiny_dataset):
        region = inject_sybil_region(tiny_dataset, n_sybils=10, n_bridges=2, seed=1)
        assert len(region.sybils) == 10
        assert region.sybils <= set(region.dataset.agents)
        assert len(region.dataset.agents) == len(tiny_dataset.agents) + 10

    def test_original_untouched(self, tiny_dataset):
        agents_before = dict(tiny_dataset.agents)
        trust_before = dict(tiny_dataset.trust)
        inject_sybil_region(tiny_dataset, n_sybils=10, n_bridges=2, seed=1)
        assert tiny_dataset.agents == agents_before
        assert tiny_dataset.trust == trust_before

    def test_bridge_count(self, tiny_dataset):
        region = inject_sybil_region(tiny_dataset, n_sybils=10, n_bridges=3, seed=2)
        assert len(region.bridges) == 3
        for bridge in region.bridges:
            assert bridge.source in tiny_dataset.agents
            assert bridge.target in region.sybils

    def test_zero_bridges_region_unreachable(self, tiny_dataset):
        from repro.trust.graph import TrustGraph

        region = inject_sybil_region(tiny_dataset, n_sybils=10, n_bridges=0, seed=3)
        graph = TrustGraph.from_dataset(region.dataset)
        honest = sorted(tiny_dataset.agents)[0]
        assert not graph.reachable_from(honest) & region.sybils

    def test_region_densely_connected(self, tiny_dataset):
        region = inject_sybil_region(
            tiny_dataset, n_sybils=10, n_bridges=0, seed=4, internal_degree=4
        )
        internal = [
            s
            for s in region.dataset.iter_trust()
            if s.source in region.sybils and s.target in region.sybils
        ]
        assert len(internal) == 10 * 4
        assert all(s.value == 1.0 for s in internal)

    def test_validates_dataset(self, tiny_dataset):
        region = inject_sybil_region(tiny_dataset, n_sybils=5, n_bridges=1, seed=5)
        region.dataset.validate()

    def test_invalid_parameters(self, tiny_dataset):
        with pytest.raises(ValueError):
            inject_sybil_region(tiny_dataset, n_sybils=0, n_bridges=0)
        with pytest.raises(ValueError):
            inject_sybil_region(tiny_dataset, n_sybils=5, n_bridges=-1)

    def test_deterministic(self, tiny_dataset):
        first = inject_sybil_region(tiny_dataset, n_sybils=8, n_bridges=2, seed=7)
        second = inject_sybil_region(tiny_dataset, n_sybils=8, n_bridges=2, seed=7)
        assert first.dataset.trust == second.dataset.trust


class TestProfileCopyAttack:
    VICTIM = "http://example.org/alice"

    def test_sybils_copy_victim_profile(self, tiny_dataset):
        attack = inject_profile_copy_attack(
            tiny_dataset, victim=self.VICTIM, n_sybils=4, n_pushed=2, seed=1
        )
        victim_positives = {
            p for p, v in tiny_dataset.ratings_of(self.VICTIM).items() if v > 0
        }
        for sybil in attack.sybils:
            sybil_ratings = set(attack.dataset.ratings_of(sybil))
            assert victim_positives <= sybil_ratings
            assert attack.pushed_products <= sybil_ratings

    def test_pushed_products_minted(self, tiny_dataset):
        attack = inject_profile_copy_attack(
            tiny_dataset, victim=self.VICTIM, n_sybils=2, n_pushed=3, seed=2
        )
        assert len(attack.pushed_products) == 3
        for product in attack.pushed_products:
            assert product in attack.dataset.products
            assert product not in tiny_dataset.products

    def test_no_bridges_by_default(self, tiny_dataset):
        attack = inject_profile_copy_attack(
            tiny_dataset, victim=self.VICTIM, n_sybils=3, seed=3
        )
        honest_to_sybil = [
            s
            for s in attack.dataset.iter_trust()
            if s.source in tiny_dataset.agents and s.target in attack.sybils
        ]
        assert honest_to_sybil == []

    def test_bridges_added_when_requested(self, tiny_dataset):
        attack = inject_profile_copy_attack(
            tiny_dataset, victim=self.VICTIM, n_sybils=3, n_bridges=2, seed=4
        )
        honest_to_sybil = [
            s
            for s in attack.dataset.iter_trust()
            if s.source in tiny_dataset.agents and s.target in attack.sybils
        ]
        assert len(honest_to_sybil) == 2

    def test_unknown_victim(self, tiny_dataset):
        with pytest.raises(KeyError):
            inject_profile_copy_attack(tiny_dataset, victim="ghost", n_sybils=2)

    def test_validates_dataset(self, tiny_dataset):
        attack = inject_profile_copy_attack(
            tiny_dataset, victim=self.VICTIM, n_sybils=3, seed=5
        )
        attack.dataset.validate()

    def test_sybils_achieve_high_similarity(self, tiny_dataset, figure1):
        """The attack premise (§3.2): copying yields near-identical profiles."""
        from repro.core.profiles import TaxonomyProfileBuilder
        from repro.core.similarity import cosine

        attack = inject_profile_copy_attack(
            tiny_dataset, victim=self.VICTIM, n_sybils=1, n_pushed=0, seed=6
        )
        builder = TaxonomyProfileBuilder(figure1)
        victim_profile = builder.build(
            attack.dataset.ratings_of(self.VICTIM), attack.dataset.products
        )
        sybil = next(iter(attack.sybils))
        sybil_profile = builder.build(
            attack.dataset.ratings_of(sybil), attack.dataset.products
        )
        assert cosine(victim_profile, sybil_profile) == pytest.approx(1.0)


class TestWaveNamespace:
    """Repeated injections must use disjoint identity namespaces."""

    def test_wave_zero_keeps_legacy_uris(self, tiny_dataset):
        region = inject_sybil_region(tiny_dataset, n_sybils=2, n_bridges=1, seed=1)
        assert sorted(region.sybils) == [
            "http://sybil.example.org/s0000",
            "http://sybil.example.org/s0001",
        ]

    def test_distinct_waves_are_disjoint(self, tiny_dataset):
        first = inject_sybil_region(tiny_dataset, n_sybils=3, n_bridges=1, seed=1, wave=1)
        second = inject_sybil_region(first.dataset, n_sybils=3, n_bridges=1, seed=2, wave=2)
        assert not first.sybils & second.sybils
        assert first.sybils | second.sybils <= set(second.dataset.agents)

    def test_repeated_wave_collides_loudly(self, tiny_dataset):
        first = inject_sybil_region(tiny_dataset, n_sybils=2, n_bridges=1, seed=1)
        with pytest.raises(ValueError, match="sybil identity collision"):
            inject_sybil_region(first.dataset, n_sybils=2, n_bridges=0, seed=2)
        with pytest.raises(ValueError, match="sybil identity collision"):
            inject_sybil_region(first.dataset, n_sybils=2, n_bridges=0, seed=2, wave=0)

    def test_negative_wave_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            inject_sybil_region(tiny_dataset, n_sybils=2, n_bridges=0, seed=1, wave=-1)

    def test_profile_copy_waves_are_disjoint(self, tiny_dataset):
        victim = "http://example.org/alice"
        first = inject_profile_copy_attack(
            tiny_dataset, victim=victim, n_sybils=2, n_pushed=1, seed=1, wave=1
        )
        second = inject_profile_copy_attack(
            first.dataset, victim=victim, n_sybils=2, n_pushed=1, seed=2, wave=2
        )
        assert not first.sybils & second.sybils
        assert not first.pushed_products & second.pushed_products

    def test_profile_copy_repeat_collides_loudly(self, tiny_dataset):
        victim = "http://example.org/alice"
        first = inject_profile_copy_attack(
            tiny_dataset, victim=victim, n_sybils=2, seed=1
        )
        with pytest.raises(ValueError, match="sybil identity collision"):
            inject_profile_copy_attack(
                first.dataset, victim=victim, n_sybils=2, seed=2
            )
