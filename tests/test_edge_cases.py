"""Edge-case tests across modules: error paths and boundary conditions
not covered by the per-module suites."""

from __future__ import annotations

import pytest

from repro.core.models import Agent, Dataset, Product, Rating, TrustStatement
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore, SemanticWebRecommender
from repro.core.taxonomy import Taxonomy, figure1_fragment
from repro.trust.advogato import Advogato
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph


class TestLocalAgentErrors:
    def test_missing_taxonomy_document(self, small_community):
        """A web without the global taxonomy document fails sync loudly."""
        from repro.agent import LocalAgent
        from repro.semweb.foaf import publish_agent
        from repro.semweb.serializer import serialize_ntriples
        from repro.web.network import SimulatedWeb, WebError

        web = SimulatedWeb()
        dataset = small_community.dataset
        seed = sorted(dataset.agents)[0]
        web.publish(
            seed,
            serialize_ntriples(
                publish_agent(
                    dataset.agents[seed],
                    dataset.trust_of(seed),
                    dataset.ratings_of(seed),
                )
            ),
        )
        agent = LocalAgent(uri=seed, web=web)
        with pytest.raises(WebError):
            agent.sync()


class TestAdvogatoExplicitCapacities:
    def test_last_capacity_extends_to_deep_levels(self):
        graph = TrustGraph.from_edges(
            [(f"n{i}", f"n{i+1}", 1.0) for i in range(6)]
        )
        result = Advogato(capacities=[10, 4]).compute(graph, "n0")
        # Levels 2..6 all reuse the last explicit value (4).
        assert result.capacities["n2"] == 4
        assert result.capacities["n6"] == 4

    def test_capacities_clamped_to_one(self):
        graph = TrustGraph.from_edges([("a", "b", 1.0)])
        result = Advogato(capacities=[0]).compute(graph, "a")
        assert result.capacities["a"] == 1


class TestAppleseedEdgeCases:
    def test_two_node_cycle(self):
        graph = TrustGraph.from_edges([("a", "b", 1.0), ("b", "a", 1.0)])
        result = Appleseed().compute(graph, "a")
        assert result.converged
        assert result.ranks["b"] > 0

    def test_weights_near_zero_still_propagate(self):
        graph = TrustGraph.from_edges([("a", "b", 1e-6)])
        result = Appleseed().compute(graph, "a")
        assert result.ranks["b"] > 0

    def test_parallel_identical_edges_share_equally(self):
        graph = TrustGraph.from_edges([("s", "x", 0.5), ("s", "y", 0.5)])
        result = Appleseed(convergence_threshold=1e-6).compute(graph, "s")
        assert result.ranks["x"] == pytest.approx(result.ranks["y"])

    def test_zero_weight_edge_not_propagated(self):
        graph = TrustGraph.from_edges([("a", "b", 0.0), ("a", "c", 0.5)])
        result = Appleseed().compute(graph, "a")
        assert result.ranks.get("b", 0.0) == 0.0
        assert result.ranks["c"] > 0


class TestTaxonomyDeepStructures:
    def test_very_deep_chain(self):
        taxonomy = Taxonomy("T0")
        for i in range(1, 400):
            taxonomy.add_topic(f"T{i}", f"T{i-1}")
        assert taxonomy.depth("T399") == 399
        path = taxonomy.path_to_root("T399")
        assert len(path) == 400

    def test_deep_chain_score_path_sums_to_budget(self):
        from repro.core.profiles import descriptor_score_path

        taxonomy = Taxonomy("T0")
        for i in range(1, 100):
            taxonomy.add_topic(f"T{i}", f"T{i-1}")
        scores = descriptor_score_path(taxonomy, "T99", 10.0)
        assert sum(scores.values()) == pytest.approx(10.0)
        # Single-child chain: sib+1 == 1 at every step, so the budget
        # spreads evenly over the whole path.
        assert scores["T99"] == pytest.approx(scores["T0"])

    def test_wide_flat_taxonomy(self):
        taxonomy = Taxonomy("R")
        for i in range(500):
            taxonomy.add_topic(f"L{i}", "R")
        assert taxonomy.sibling_count("L0") == 499
        from repro.core.profiles import descriptor_score_path

        scores = descriptor_score_path(taxonomy, "L0", 500.0)
        # Massive sibling count: the parent receives almost nothing.
        assert scores["L0"] / scores["R"] == pytest.approx(500.0)


class TestDatasetEdgeCases:
    def test_agent_rating_only_community(self, figure1):
        """A community with ratings but zero trust still recommends via CF."""
        from repro.core.recommender import PureCFRecommender

        dataset = Dataset()
        for name in ("a", "b"):
            dataset.add_agent(Agent(uri=name))
        for i in range(3):
            identifier = f"p:{i}"
            dataset.add_product(
                Product(identifier=identifier, descriptors=frozenset({"Algebra"}))
            )
        dataset.add_rating(Rating(agent="a", product="p:0"))
        dataset.add_rating(Rating(agent="b", product="p:0"))
        dataset.add_rating(Rating(agent="b", product="p:1"))
        store = ProfileStore(dataset, TaxonomyProfileBuilder(figure1))
        cf = PureCFRecommender(dataset=dataset, profiles=store, neighbors=5)
        recs = cf.recommend("a", limit=5)
        assert [r.product for r in recs] == ["p:1"]

    def test_trust_only_community_recommends_nothing_without_ratings(self):
        dataset = Dataset()
        for name in ("a", "b"):
            dataset.add_agent(Agent(uri=name))
        dataset.add_trust(TrustStatement(source="a", target="b", value=1.0))
        recommender = SemanticWebRecommender.from_dataset(
            dataset, figure1_fragment()
        )
        assert recommender.recommend("a", limit=5) == []

    def test_everyone_rated_everything(self, figure1):
        """Saturated community: nothing left to recommend to anyone."""
        dataset = Dataset()
        for name in ("a", "b", "c"):
            dataset.add_agent(Agent(uri=name))
        dataset.add_product(
            Product(identifier="p:0", descriptors=frozenset({"Algebra"}))
        )
        for name in ("a", "b", "c"):
            dataset.add_rating(Rating(agent=name, product="p:0"))
        dataset.add_trust(TrustStatement(source="a", target="b", value=1.0))
        dataset.add_trust(TrustStatement(source="a", target="c", value=1.0))
        recommender = SemanticWebRecommender.from_dataset(dataset, figure1)
        assert recommender.recommend("a", limit=5) == []


class TestSimulatedWebEdgeCases:
    def test_stage_then_publish_then_deliver(self):
        """A direct publish between stage and deliver: delivery still
        applies the staged body last (newest staged wins by design)."""
        from repro.web.network import SimulatedWeb

        web = SimulatedWeb()
        web.publish("u:1", "v1")
        web.stage_update("u:1", "staged")
        web.publish("u:1", "direct")
        assert web.fetch("u:1").body == "direct"
        web.deliver()
        assert web.fetch("u:1").body == "staged"
        assert web.fetch("u:1").version == 3
