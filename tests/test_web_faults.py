"""Fault injection, retry/backoff, circuit breakers, chaos invariants."""

from __future__ import annotations

import pytest

from repro.semweb.serializer import ParseError, parse_ntriples
from repro.web.crawler import Crawler, publish_community
from repro.web.faults import (
    CircuitBreakerRegistry,
    FaultPlan,
    FaultyWeb,
    ResilientFetcher,
    RetryPolicy,
    TransientWebError,
    site_of,
)
from repro.web.network import SimulatedWeb, WebError
from repro.web.replicator import CommunityReplicator, publish_split_community

ALICE = "http://example.org/alice"


class FlakyWeb:
    """Raises a transient error for the first *failures* fetches per URI."""

    def __init__(self, inner: SimulatedWeb, failures: int = 1) -> None:
        self.inner = inner
        self.failures = failures
        self._seen: dict[str, int] = {}
        self.last_fetch_cost = 1

    def fetch(self, uri):
        seen = self._seen.get(uri, 0)
        if seen < self.failures:
            self._seen[uri] = seen + 1
            self.inner.error_count += 1
            raise TransientWebError(uri)
        return self.inner.fetch(uri)

    def version(self, uri):
        return self.inner.version(uri)

    def exists(self, uri):
        return self.inner.exists(uri)


class TestSiteOf:
    def test_agent_homepage_and_weblog_share_a_site(self):
        assert site_of("http://agents.example.org/a0001") == "agents.example.org/a0001"
        assert site_of("http://agents.example.org/a0001/weblog") == (
            "agents.example.org/a0001"
        )

    def test_distinct_agents_get_distinct_sites(self):
        assert site_of("http://agents.example.org/a0001") != site_of(
            "http://agents.example.org/a0002"
        )

    def test_bare_authority_and_non_url(self):
        assert site_of("http://example.org") == "example.org"
        assert site_of("not-a-url") == "not-a-url"


class TestFaultPlan:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(outage_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(slow_ticks=-1)

    def test_rolls_are_deterministic(self):
        plan = FaultPlan(transient_rate=0.5, slow_rate=0.5, corruption_rate=0.5, seed=3)
        assert plan.rolls("u", 1) == plan.rolls("u", 1)
        # Different attempts re-roll, so retries can succeed.
        rolls = {plan.rolls("u", attempt) for attempt in range(64)}
        assert len(rolls) > 1

    def test_outage_is_per_site_and_permanent(self):
        plan = FaultPlan(outage_rate=0.5, seed=7)
        sites = [f"agents.example.org/a{i:03d}" for i in range(200)]
        down = {site for site in sites if plan.site_down(site)}
        assert 0 < len(down) < len(sites)
        assert all(plan.site_down(site) for site in down)  # stays down


class TestFaultyWeb:
    def _published(self, tiny_dataset, figure1) -> SimulatedWeb:
        web = SimulatedWeb()
        publish_community(web, tiny_dataset, figure1)
        return web

    def test_no_faults_is_transparent(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        faulty = FaultyWeb(inner, FaultPlan())
        assert faulty.fetch(ALICE).body == inner._visible[ALICE][0]
        assert faulty.last_fetch_cost == 1
        assert len(faulty) == len(inner)
        assert ALICE in faulty

    def test_transient_rate_one_always_fails_and_counts(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        faulty = FaultyWeb(inner, FaultPlan(transient_rate=1.0, seed=1))
        for _ in range(3):
            with pytest.raises(TransientWebError):
                faulty.fetch(ALICE)
        assert faulty.transient_failures == 3
        assert faulty.error_count == 3
        assert faulty.fetch_count == 0

    def test_outage_raises_host_down(self, tiny_dataset, figure1):
        from repro.web.faults import HostDownError

        inner = self._published(tiny_dataset, figure1)
        faulty = FaultyWeb(inner, FaultPlan(outage_rate=1.0, seed=1))
        with pytest.raises(HostDownError):
            faulty.fetch(ALICE)
        assert faulty.outages_hit == 1
        # HostDownError degrades to WebError for fault-unaware consumers.
        with pytest.raises(WebError):
            faulty.fetch(ALICE)

    def test_corrupted_body_fails_the_real_parse_path(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        faulty = FaultyWeb(inner, FaultPlan(corruption_rate=1.0, seed=9))
        for uri in list(inner.uris()):
            result = faulty.fetch(uri)
            with pytest.raises(ParseError):
                parse_ntriples(result.body)
        assert faulty.corrupted_served == len(inner)

    def test_slow_fetch_charges_latency(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        faulty = FaultyWeb(inner, FaultPlan(slow_rate=1.0, slow_ticks=4, seed=2))
        faulty.fetch(ALICE)
        assert faulty.last_fetch_cost == 5
        assert faulty.slow_fetches == 1
        assert faulty.latency_ticks == 4

    def test_same_seed_same_faults(self, tiny_dataset, figure1):
        outcomes = []
        for _ in range(2):
            inner = self._published(tiny_dataset, figure1)
            faulty = FaultyWeb(
                inner, FaultPlan(transient_rate=0.4, corruption_rate=0.3, seed=11)
            )
            run = []
            for uri in sorted(inner.uris()):
                for _attempt in range(3):
                    try:
                        run.append(("ok", faulty.fetch(uri).body))
                    except WebError as error:
                        run.append(("err", type(error).__name__))
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=1, multiplier=2.0, max_backoff=8, jitter=0.0)
        ticks = [policy.backoff_ticks("u", n) for n in range(6)]
        assert ticks == [1, 2, 4, 8, 8, 8]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_backoff=4, max_backoff=64, jitter=0.5, seed=5)
        first = [policy.backoff_ticks("u", n) for n in range(4)]
        second = [policy.backoff_ticks("u", n) for n in range(4)]
        assert first == second
        for n, tick in enumerate(first):
            raw = 4 * 2.0**n
            assert raw * 0.5 - 1 <= tick <= raw * 1.5 + 1


class TestCircuitBreaker:
    def test_full_state_machine(self):
        registry = CircuitBreakerRegistry(failure_threshold=2, cooldown_ticks=3)
        site = "example.org/x"
        assert registry.state(site) == "closed"
        registry.record_failure(site, now=0)
        assert registry.state(site) == "closed"
        registry.record_failure(site, now=1)
        assert registry.state(site) == "open"
        assert registry.trips == 1
        # Open: short-circuits until the cooldown elapses.
        assert not registry.allow(site, now=2)
        assert registry.short_circuits == 1
        assert registry.allow(site, now=4)
        assert registry.state(site) == "half_open"
        # Half-open probe fails: re-open immediately.
        registry.record_failure(site, now=4)
        assert registry.state(site) == "open"
        assert registry.trips == 2
        # Half-open probe succeeds: re-close.
        assert registry.allow(site, now=8)
        registry.record_success(site)
        assert registry.state(site) == "closed"
        assert registry.allow(site, now=9)
        assert registry.open_sites() == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreakerRegistry(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreakerRegistry(cooldown_ticks=0)


class TestResilientFetcher:
    def _published(self, tiny_dataset, figure1) -> SimulatedWeb:
        web = SimulatedWeb()
        publish_community(web, tiny_dataset, figure1)
        return web

    def test_retries_mask_transient_faults(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        fetcher = ResilientFetcher(
            web=FlakyWeb(inner, failures=2), retry=RetryPolicy(max_retries=3)
        )
        outcome = fetcher.fetch(ALICE)
        assert outcome.ok
        assert outcome.retries == 2
        assert outcome.transient_failures == 2
        assert outcome.attempts == 3
        assert outcome.cost == 1

    def test_exhausted_retries_report_transient(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        fetcher = ResilientFetcher(
            web=FlakyWeb(inner, failures=10), retry=RetryPolicy(max_retries=2)
        )
        outcome = fetcher.fetch(ALICE)
        assert not outcome.ok
        assert outcome.error == "transient"
        # Invariant: the final attempt fails without a retry following it.
        assert outcome.transient_failures == outcome.retries + 1

    def test_missing_is_not_retried(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        fetcher = ResilientFetcher(web=inner, retry=RetryPolicy(max_retries=5))
        outcome = fetcher.fetch("http://example.org/ghost")
        assert outcome.error == "missing"
        assert outcome.attempts == 1
        assert outcome.retries == 0

    def test_outage_is_not_retried(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        faulty = FaultyWeb(inner, FaultPlan(outage_rate=1.0, seed=1))
        fetcher = ResilientFetcher(web=faulty, retry=RetryPolicy(max_retries=5))
        outcome = fetcher.fetch(ALICE)
        assert outcome.error == "outage"
        assert outcome.attempts == 1

    def test_breaker_opens_short_circuits_then_recloses(self, tiny_dataset, figure1):
        inner = self._published(tiny_dataset, figure1)
        flaky = FlakyWeb(inner, failures=2)
        fetcher = ResilientFetcher(
            web=flaky,
            retry=RetryPolicy(max_retries=0),
            breakers=CircuitBreakerRegistry(failure_threshold=2, cooldown_ticks=2),
        )
        site = site_of(ALICE)
        assert fetcher.fetch(ALICE).error == "transient"
        assert fetcher.fetch(ALICE).error == "transient"
        assert fetcher.breakers.state(site) == "open"
        assert fetcher.fetch(ALICE).error == "short_circuit"
        # Cooldown elapses (ticks advance per call); half-open probe succeeds.
        outcome = fetcher.fetch(ALICE)
        assert outcome.ok
        assert fetcher.breakers.state(site) == "closed"
        assert fetcher.breakers.trips == 1
        assert fetcher.breakers.short_circuits == 1


@pytest.fixture(scope="module")
def chaos_community():
    from repro.datasets.generators import CommunityConfig, generate_community

    return generate_community(
        CommunityConfig(n_agents=60, n_products=120, n_clusters=4, seed=19)
    )


def _dataset_fingerprint(dataset):
    return (
        sorted(dataset.agents),
        {uri: dataset.trust_of(uri) for uri in dataset.agents},
        {uri: dataset.ratings_of(uri) for uri in dataset.agents},
    )


class TestCrawlUnderFaults:
    def test_seeded_runs_are_reproducible(self, chaos_community):
        reports = []
        stores = []
        for _ in range(2):
            web = SimulatedWeb()
            publish_community(web, chaos_community.dataset, chaos_community.taxonomy)
            faulty = FaultyWeb(
                web,
                FaultPlan(
                    transient_rate=0.3, corruption_rate=0.1, slow_rate=0.2, seed=23
                ),
            )
            crawler = Crawler(web=faulty, retry=RetryPolicy(max_retries=2, seed=23))
            seed_agent = sorted(chaos_community.dataset.agents)[0]
            reports.append(crawler.crawl([seed_agent]))
            stores.append(crawler.store)
        assert reports[0] == reports[1]
        assert sorted(stores[0].uris()) == sorted(stores[1].uris())
        assert all(
            stores[0].get(uri).body == stores[1].get(uri).body
            for uri in stores[0].uris()
        )

    def test_transient_faults_fully_masked_by_retries(self, chaos_community):
        """Acceptance: rate-0.2 budgeted crawl == fault-free crawl."""
        seed_agent = sorted(chaos_community.dataset.agents)[0]
        datasets = []
        for faulted in (False, True):
            web = SimulatedWeb()
            taxonomy_uri, catalog_uri = publish_split_community(
                web, chaos_community.dataset, chaos_community.taxonomy
            )
            consumer = (
                FaultyWeb(web, FaultPlan(transient_rate=0.2, seed=41))
                if faulted
                else web
            )
            replicator = CommunityReplicator(
                web=consumer, retry=RetryPolicy(max_retries=5, seed=41)
            )
            dataset, _, report = replicator.replicate(
                [seed_agent],
                budget=len(chaos_community.dataset.agents) + 10,
                taxonomy_uri=taxonomy_uri,
                catalog_uri=catalog_uri,
            )
            if faulted:
                assert report.retries > 0
                assert report.unreachable == ()
            datasets.append(dataset)
        assert _dataset_fingerprint(datasets[0]) == _dataset_fingerprint(datasets[1])

    def test_degraded_assembly_never_raises(self, chaos_community):
        """Chaos sweep: the crawl/assemble loop survives fault rates <= 0.5."""
        seed_agent = sorted(chaos_community.dataset.agents)[0]
        for rate in (0.1, 0.3, 0.5):
            web = SimulatedWeb()
            publish_community(web, chaos_community.dataset, chaos_community.taxonomy)
            faulty = FaultyWeb(
                web,
                FaultPlan(
                    transient_rate=rate,
                    corruption_rate=rate / 2,
                    slow_rate=rate / 2,
                    outage_rate=rate / 8,
                    seed=int(rate * 100),
                ),
            )
            crawler = Crawler(web=faulty, retry=RetryPolicy(max_retries=2))
            crawler.fetch_global_documents()
            report = crawler.crawl([seed_agent])
            # Assembly over a partially-degraded store must not raise,
            # even when the cold crawl could not reach the seed at all.
            dataset, failures = crawler.store.assemble_dataset()
            assert set(dataset.agents) <= set(chaos_community.dataset.agents)
            assert set(failures) <= set(crawler.store.uris())
            self._check_report_invariants(report)

    def test_report_failure_fields_sum_consistently(self, chaos_community):
        web = SimulatedWeb()
        publish_community(web, chaos_community.dataset, chaos_community.taxonomy)
        faulty = FaultyWeb(
            web, FaultPlan(transient_rate=0.4, outage_rate=0.1, seed=13)
        )
        crawler = Crawler(web=faulty, retry=RetryPolicy(max_retries=2))
        report = crawler.crawl([sorted(chaos_community.dataset.agents)[0]])
        self._check_report_invariants(report)
        # Every transient failure the web injected during this crawl is
        # accounted for in the report.
        assert report.transient_failures == faulty.transient_failures

    @staticmethod
    def _check_report_invariants(report):
        failed = set(report.missing) | set(report.unreachable)
        assert set(report.missing).isdisjoint(report.unreachable)
        assert set(report.degraded) <= failed
        assert set(report.quarantined).isdisjoint(failed)
        assert report.retries <= report.transient_failures
        assert report.breaker_trips >= 0
        assert report.breaker_short_circuits >= 0
        assert report.fetched >= 0


class TestChaosExperiment:
    def test_ex18_emits_quality_vs_fault_rate(self, chaos_community):
        from repro.evaluation.experiments_chaos import run_ex18_chaos

        table = run_ex18_chaos(
            chaos_community, fault_rates=(0.0, 0.25, 0.5), top_n=5
        )
        assert len(table.rows) == 3
        # Fault-free row agrees with itself perfectly.
        assert float(table.rows[0][-1]) == 1.0
        coverages = [float(row[-2]) for row in table.rows]
        assert all(0.0 <= c <= 1.0 for c in coverages)
        # Chaos rows actually exercised the retry machinery.
        assert int(table.rows[-1][2]) > 0
