"""Integration tests for split-channel publishing and replication (§4)."""

from __future__ import annotations

import pytest

from repro.core.recommender import SemanticWebRecommender
from repro.semweb.foaf import parse_agent_homepage
from repro.semweb.serializer import parse_ntriples
from repro.web.network import SimulatedWeb
from repro.web.replicator import CommunityReplicator, publish_split_community
from repro.web.storage import DocumentStore
from repro.web.weblog import weblog_uri


@pytest.fixture
def split_world(small_community):
    web = SimulatedWeb()
    taxonomy_uri, catalog_uri = publish_split_community(
        web, small_community.dataset, small_community.taxonomy
    )
    return web, taxonomy_uri, catalog_uri, small_community


class TestPublishSplitCommunity:
    def test_homepages_carry_no_ratings(self, split_world):
        web, _, _, community = split_world
        agent_uri = sorted(community.dataset.agents)[0]
        graph = parse_ntriples(web.fetch(agent_uri).body)
        _, trust, ratings = parse_agent_homepage(graph)
        assert ratings == []
        assert len(trust) == len(community.dataset.trust_of(agent_uri))

    def test_weblogs_hosted_per_agent(self, split_world):
        web, _, _, community = split_world
        for agent_uri in sorted(community.dataset.agents)[:10]:
            assert web.exists(weblog_uri(agent_uri))

    def test_document_count(self, split_world):
        web, _, _, community = split_world
        # One homepage + one weblog per agent, plus two global documents.
        assert len(web) == 2 * len(community.dataset.agents) + 2


class TestCommunityReplicator:
    def test_full_replication_recovers_everything(self, split_world):
        web, taxonomy_uri, catalog_uri, community = split_world
        seed = sorted(community.dataset.agents)[0]
        replicator = CommunityReplicator(web=web)
        dataset, taxonomy, report = replicator.replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        assert report.parse_failures == ()
        assert report.unmapped_links == 0
        assert report.weblogs_missing == ()
        assert report.weblog_fetches == len(dataset.agents)
        # Trust and ratings agree with the source for replicated agents.
        for agent in sorted(dataset.agents)[:15]:
            assert dataset.trust_of(agent) == community.dataset.trust_of(agent)
            assert dataset.ratings_of(agent) == community.dataset.ratings_of(agent)
        assert len(taxonomy) == len(community.taxonomy)

    def test_recommendations_from_replica(self, split_world):
        web, taxonomy_uri, catalog_uri, community = split_world
        seed = sorted(community.dataset.agents)[0]
        replicator = CommunityReplicator(web=web)
        dataset, taxonomy, _ = replicator.replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        recommender = SemanticWebRecommender.from_dataset(dataset, taxonomy)
        recs = recommender.recommend(seed, limit=10)
        assert recs
        # The split-channel replica reproduces the direct-data pipeline.
        reference = SemanticWebRecommender.from_dataset(
            community.dataset.restricted_to_agents(dataset.agents),
            community.taxonomy,
        )
        assert [r.product for r in recs] == [
            r.product for r in reference.recommend(seed, limit=10)
        ]

    def test_budget_limits_homepages_not_weblogs(self, split_world):
        web, taxonomy_uri, catalog_uri, community = split_world
        seed = sorted(community.dataset.agents)[0]
        replicator = CommunityReplicator(web=web)
        dataset, _, report = replicator.replicate(
            [seed], budget=5, taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        assert report.homepage_fetches == 5
        assert report.budget_exhausted
        assert report.weblog_fetches == len(dataset.agents)
        assert report.mined_ratings > 0

    def test_missing_weblogs_reported(self, small_community):
        from repro.web.crawler import publish_community

        # Publish the *merged*-channel community: no weblogs exist.
        web = SimulatedWeb()
        taxonomy_uri, catalog_uri = publish_community(
            web, small_community.dataset, small_community.taxonomy
        )
        seed = sorted(small_community.dataset.agents)[0]
        replicator = CommunityReplicator(web=web)
        dataset, _, report = replicator.replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        assert report.weblog_fetches == 0
        assert len(report.weblogs_missing) == len(dataset.agents)
        assert report.mined_ratings == 0
        # Homepages in this world DO carry ratings, so assembly kept them.
        assert len(dataset.ratings) > 0

    def test_weblog_documents_persisted(self, split_world):
        web, taxonomy_uri, catalog_uri, community = split_world
        seed = sorted(community.dataset.agents)[0]
        replicator = CommunityReplicator(web=web)
        dataset, _, _ = replicator.replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        weblog_docs = list(replicator.store.uris(kind="weblog"))
        assert len(weblog_docs) == len(dataset.agents)


class TestReplicationUnderFaults:
    """Satellites for the resilience layer at the replicator level."""

    def test_retries_recover_the_full_community(self, split_world):
        from repro.web.faults import FaultPlan, FaultyWeb, RetryPolicy

        web, taxonomy_uri, catalog_uri, community = split_world
        seed = sorted(community.dataset.agents)[0]
        reference, _, _ = CommunityReplicator(web=web).replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        faulty = FaultyWeb(web, FaultPlan(transient_rate=0.2, seed=17))
        replicator = CommunityReplicator(
            web=faulty, retry=RetryPolicy(max_retries=5, seed=17)
        )
        dataset, _, report = replicator.replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        assert report.retries > 0
        assert report.unreachable == ()
        assert sorted(dataset.agents) == sorted(reference.agents)
        assert dataset.ratings == reference.ratings

    def test_stale_weblogs_still_mined_when_web_goes_dark(self, split_world):
        from repro.web.faults import FaultPlan, FaultyWeb, RetryPolicy

        web, taxonomy_uri, catalog_uri, community = split_world
        seed = sorted(community.dataset.agents)[0]
        store = DocumentStore()
        warm_dataset, _, _ = CommunityReplicator(web=web, store=store).replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        dark = CommunityReplicator(
            web=FaultyWeb(web, FaultPlan(transient_rate=1.0, seed=5)),
            store=store,
            retry=RetryPolicy(max_retries=1),
        )
        dataset, _, report = dark.replicate(
            [seed], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
        )
        # Nothing was reachable, yet the stale replicas still deliver the
        # same community and the same mined ratings.
        assert report.weblog_fetches == 0
        assert len(report.degraded) > 0
        assert sorted(dataset.agents) == sorted(warm_dataset.agents)
        assert dataset.ratings == warm_dataset.ratings
        assert report.mined_ratings > 0
