"""Unit and property tests for the Appleseed group trust metric."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import isclose
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph


def chain_graph() -> TrustGraph:
    return TrustGraph.from_edges(
        [("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)]
    )


def diamond_graph() -> TrustGraph:
    return TrustGraph.from_edges(
        [
            ("s", "l", 1.0),
            ("s", "r", 0.5),
            ("l", "t", 1.0),
            ("r", "t", 1.0),
        ]
    )


class TestParameters:
    @pytest.mark.parametrize("d", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_spreading_factor(self, d):
        with pytest.raises(ValueError):
            Appleseed(spreading_factor=d)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            Appleseed(convergence_threshold=0.0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            Appleseed(max_iterations=0)

    def test_invalid_normalization(self):
        with pytest.raises(ValueError):
            Appleseed(normalization="bogus")

    def test_invalid_distrust_mode(self):
        with pytest.raises(ValueError):
            Appleseed(distrust_mode="bogus")

    def test_invalid_injection(self):
        with pytest.raises(ValueError):
            Appleseed().compute(chain_graph(), "a", injection=0.0)

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            Appleseed().compute(chain_graph(), "ghost")


class TestBasicBehavior:
    def test_converges_on_chain(self):
        result = Appleseed().compute(chain_graph(), "a")
        assert result.converged
        assert result.iterations > 1

    def test_all_reachable_nodes_ranked(self):
        result = Appleseed().compute(chain_graph(), "a")
        assert set(result.ranks) == {"b", "c", "d"}

    def test_source_not_in_ranks(self):
        result = Appleseed().compute(chain_graph(), "a")
        assert "a" not in result.ranks

    def test_closer_nodes_rank_higher_on_chain(self):
        ranks = Appleseed().compute(chain_graph(), "a").ranks
        assert ranks["b"] > ranks["c"] > ranks["d"] > 0

    def test_ranks_nonnegative_and_bounded_by_injection(self):
        result = Appleseed().compute(chain_graph(), "a", injection=200.0)
        assert all(v >= 0 for v in result.ranks.values())
        assert sum(result.ranks.values()) <= 200.0 + 1e-6

    def test_isolated_source(self):
        graph = TrustGraph()
        graph.add_node("alone")
        result = Appleseed().compute(graph, "alone")
        assert result.ranks == {}
        assert result.converged

    def test_rank_scales_with_injection(self):
        small = Appleseed(convergence_threshold=1e-6).compute(
            chain_graph(), "a", injection=100.0
        )
        large = Appleseed(convergence_threshold=1e-6).compute(
            chain_graph(), "a", injection=200.0
        )
        assert large.ranks["b"] == pytest.approx(2 * small.ranks["b"], rel=1e-3)

    def test_higher_weight_edge_gets_more_rank(self):
        ranks = Appleseed().compute(diamond_graph(), "s").ranks
        assert ranks["l"] > ranks["r"]

    def test_distrusted_edges_not_propagated(self):
        graph = TrustGraph.from_edges(
            [("a", "b", 1.0), ("a", "m", -1.0), ("m", "deep", 1.0)]
        )
        result = Appleseed().compute(graph, "a")
        assert "m" not in result.neighborhood(0.0)
        assert isclose(result.ranks.get("deep", 0.0), 0.0) or "deep" not in result.ranks

    def test_max_iterations_cap(self):
        metric = Appleseed(max_iterations=3, convergence_threshold=1e-12)
        result = metric.compute(chain_graph(), "a")
        assert not result.converged
        assert result.iterations == 3

    def test_history_recorded(self):
        result = Appleseed().compute(chain_graph(), "a")
        assert len(result.history) == result.iterations
        # Deltas eventually fall below the threshold.
        assert result.history[-1] <= 0.01


class TestResultHelpers:
    def test_top_ordering(self):
        result = Appleseed().compute(chain_graph(), "a")
        top = result.top()
        assert [name for name, _ in top] == ["b", "c", "d"]
        assert top[0][1] >= top[-1][1]

    def test_top_limit(self):
        result = Appleseed().compute(chain_graph(), "a")
        assert len(result.top(2)) == 2

    def test_neighborhood_threshold(self):
        result = Appleseed().compute(chain_graph(), "a")
        everyone = result.neighborhood(0.0)
        fewer = result.neighborhood(result.ranks["c"])
        assert fewer < everyone


class TestSpreadingFactor:
    def test_low_d_concentrates_near_source(self):
        graph = chain_graph()
        low = Appleseed(spreading_factor=0.3).compute(graph, "a").ranks
        high = Appleseed(spreading_factor=0.9).compute(graph, "a").ranks
        # With low d, b hoards rank relative to d; high d spreads deeper.
        assert low["b"] / low["d"] > high["b"] / high["d"]

    def test_nonlinear_normalization_favors_strong_edges(self):
        graph = TrustGraph.from_edges([("s", "strong", 0.9), ("s", "weak", 0.3)])
        linear = Appleseed(normalization="linear").compute(graph, "s").ranks
        nonlinear = Appleseed(normalization="nonlinear").compute(graph, "s").ranks
        assert (
            nonlinear["strong"] / nonlinear["weak"]
            > linear["strong"] / linear["weak"]
        )


class TestHorizon:
    def test_max_depth_bounds_exploration(self):
        result = Appleseed(max_depth=2).compute(chain_graph(), "a")
        assert "d" not in result.ranks
        assert {"b", "c"} <= set(result.ranks)

    def test_invalid_max_depth(self):
        with pytest.raises(ValueError):
            Appleseed(max_depth=0)


class TestBackwardPropagation:
    def test_backward_edges_concentrate_rank_near_source(self):
        graph = chain_graph()
        with_back = Appleseed().compute(graph, "a").ranks
        without_back = Appleseed(backward_propagation=False).compute(graph, "a").ranks

        def weighted_distance(ranks: dict[str, float]) -> float:
            distance = {"b": 1, "c": 2, "d": 3}
            total = sum(ranks.values())
            return sum(r * distance[n] for n, r in ranks.items()) / total

        assert weighted_distance(with_back) < weighted_distance(without_back)

    def test_without_backward_edges_dead_ends_leak_energy(self):
        # Star of dead ends: every spoke swallows its forwarded share.
        graph = TrustGraph.from_edges([("s", f"x{i}", 1.0) for i in range(4)])
        with_back = Appleseed(convergence_threshold=1e-6).compute(graph, "s", 100.0)
        without_back = Appleseed(
            convergence_threshold=1e-6, backward_propagation=False
        ).compute(graph, "s", 100.0)
        # With backward edges the spokes keep receiving recirculated
        # energy; without them each spoke keeps only (1-d) of its single
        # delivery and the rest vanishes.
        assert sum(without_back.ranks.values()) < sum(with_back.ranks.values())
        assert sum(without_back.ranks.values()) == pytest.approx(
            100.0 * 0.85 * 0.15, rel=1e-3
        )

    def test_flag_recorded(self):
        assert Appleseed().backward_propagation is True
        assert Appleseed(backward_propagation=False).backward_propagation is False


class TestDistrust:
    def test_one_step_distrust_reduces_rank(self):
        graph = TrustGraph.from_edges(
            [
                ("s", "a", 1.0),
                ("s", "b", 1.0),
                ("a", "m", 1.0),
                ("b", "m", -1.0),  # b distrusts m
            ]
        )
        plain = Appleseed().compute(graph, "s").ranks
        discounted = Appleseed(distrust_mode="one_step").compute(graph, "s").ranks
        assert discounted["m"] < plain["m"]
        assert discounted["m"] >= 0.0

    def test_distrust_never_negative(self):
        graph = TrustGraph.from_edges(
            [("s", "a", 1.0), ("s", "m", 0.1), ("a", "m", -1.0)]
        )
        ranks = Appleseed(distrust_mode="one_step").compute(graph, "s").ranks
        assert isclose(ranks["m"], 0.0)


@settings(deadline=None, max_examples=30)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 7),
            st.integers(0, 7),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_energy_conservation(edges):
    """Property: total rank never exceeds injected energy, all ranks >= 0,
    and the computation always terminates within the iteration cap."""
    graph = TrustGraph()
    graph.add_node("n0")
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(f"n{source}", f"n{target}", weight)
    result = Appleseed(max_iterations=500).compute(graph, "n0", injection=100.0)
    assert sum(result.ranks.values()) <= 100.0 + 1e-6
    assert all(v >= 0.0 for v in result.ranks.values())


@settings(deadline=None, max_examples=30)
@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 5),
            st.integers(0, 5),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_only_reachable_nodes_ranked(edges):
    """Property: every positively ranked node is BFS-reachable from source."""
    graph = TrustGraph()
    graph.add_node("n0")
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(f"n{source}", f"n{target}", weight)
    result = Appleseed().compute(graph, "n0")
    reachable = graph.reachable_from("n0")
    for node, rank in result.ranks.items():
        if rank > 0:
            assert node in reachable
