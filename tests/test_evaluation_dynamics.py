"""Population-dynamics engine: events, ground truth, determinism."""

from __future__ import annotations

import pytest

from repro.datasets.generators import CommunityConfig, generate_community
from repro.evaluation.dynamics import (
    JOINER_PREFIX,
    MIN_POPULATION,
    NEWCOMER_PREFIX,
    AgentChurn,
    ColdStartWave,
    EpochSnapshot,
    InterestDrift,
    SybilRingGrowth,
    Timeline,
    TrustSpamCampaign,
    copy_dataset,
)


@pytest.fixture(scope="module")
def community():
    """A small generated community shared by the dynamics tests."""
    config = CommunityConfig(n_agents=40, n_products=80, n_clusters=4, seed=7)
    return generate_community(config)


def dataset_signature(dataset) -> tuple:
    """A byte-comparable summary of a dataset's full contents."""
    return (
        tuple(sorted(dataset.agents)),
        tuple(sorted(dataset.products)),
        tuple(sorted((k, v.value) for k, v in dataset.trust.items())),
        tuple(sorted((k, v.value) for k, v in dataset.ratings.items())),
    )


class TestCopyDataset:
    def test_copies_are_independent(self, tiny_dataset):
        clone = copy_dataset(tiny_dataset)
        assert dataset_signature(clone) == dataset_signature(tiny_dataset)
        del clone.agents["http://example.org/eve"]
        assert "http://example.org/eve" in tiny_dataset.agents


class TestTimeline:
    def test_validation(self, community):
        with pytest.raises(ValueError):
            Timeline(community=community, events=[AgentChurn()], n_epochs=0)
        with pytest.raises(ValueError):
            Timeline(community=community, events=[], n_epochs=2)

    def test_original_community_untouched(self, community):
        before = dataset_signature(community.dataset)
        Timeline(
            community=community,
            events=[AgentChurn(leave_rate=0.2, join_rate=0.2)],
            n_epochs=2,
            seed=1,
        ).run()
        assert dataset_signature(community.dataset) == before

    def test_one_snapshot_per_epoch(self, community):
        snapshots = Timeline(
            community=community, events=[ColdStartWave(wave_size=2)], n_epochs=3, seed=1
        ).run()
        assert [s.epoch for s in snapshots] == [0, 1, 2]
        assert all(isinstance(s, EpochSnapshot) for s in snapshots)

    def test_identical_seeds_are_byte_identical(self, community):
        events = [
            AgentChurn(leave_rate=0.1, join_rate=0.1),
            SybilRingGrowth(ring_growth=3, bridges_per_epoch=1),
            TrustSpamCampaign(compromised_per_epoch=1),
            InterestDrift(drift_rate=0.1),
        ]
        first = Timeline(community=community, events=events, n_epochs=3, seed=5).run()
        second = Timeline(community=community, events=events, n_epochs=3, seed=5).run()
        for a, b in zip(first, second):
            assert dataset_signature(a.dataset) == dataset_signature(b.dataset)
            assert a.truth == b.truth

    def test_different_seeds_differ(self, community):
        events = [AgentChurn(leave_rate=0.2, join_rate=0.2)]
        first = Timeline(community=community, events=events, n_epochs=2, seed=1).run()
        second = Timeline(community=community, events=events, n_epochs=2, seed=2).run()
        assert dataset_signature(first[-1].dataset) != dataset_signature(
            second[-1].dataset
        )

    def test_snapshots_are_independent_copies(self, community):
        snapshots = Timeline(
            community=community, events=[ColdStartWave(wave_size=2)], n_epochs=2, seed=1
        ).run()
        victim = next(iter(sorted(snapshots[0].dataset.agents)))
        del snapshots[0].dataset.agents[victim]
        assert victim in snapshots[1].dataset.agents

    def test_every_epoch_validates(self, community):
        snapshots = Timeline(
            community=community,
            events=[AgentChurn(leave_rate=0.3, join_rate=0.3)],
            n_epochs=2,
            seed=3,
        ).run()
        for snapshot in snapshots:
            snapshot.dataset.validate()


class TestAgentChurn:
    def test_validation(self):
        with pytest.raises(ValueError):
            AgentChurn(leave_rate=1.5)
        with pytest.raises(ValueError):
            AgentChurn(join_rate=-0.1)

    def test_truth_records_joined_and_departed(self, community):
        snapshots = Timeline(
            community=community,
            events=[AgentChurn(leave_rate=0.1, join_rate=0.1)],
            n_epochs=2,
            seed=4,
        ).run()
        truth = snapshots[0].truth
        assert truth.departed and truth.joined
        assert all(uri.startswith(JOINER_PREFIX) for uri in truth.joined)
        assert all(
            uri not in snapshots[0].dataset.agents for uri in truth.departed
        )
        assert all(uri in snapshots[0].dataset.agents for uri in truth.joined)

    def test_departed_leave_no_edges_behind(self, community):
        snapshots = Timeline(
            community=community,
            events=[AgentChurn(leave_rate=0.2, join_rate=0.0)],
            n_epochs=1,
            seed=4,
        ).run()
        departed = snapshots[0].truth.departed
        dataset = snapshots[0].dataset
        assert departed
        for source, target in dataset.trust:
            assert source not in departed and target not in departed
        for agent, _ in dataset.ratings:
            assert agent not in departed

    def test_population_floor_holds(self, community):
        snapshots = Timeline(
            community=community,
            events=[AgentChurn(leave_rate=1.0, join_rate=0.0)],
            n_epochs=3,
            seed=4,
        ).run()
        assert len(snapshots[-1].dataset.agents) >= MIN_POPULATION


class TestColdStartWave:
    def test_validation(self):
        with pytest.raises(ValueError):
            ColdStartWave(wave_size=-1)

    def test_newcomers_arrive_unvouched(self, community):
        snapshots = Timeline(
            community=community,
            events=[ColdStartWave(wave_size=4)],
            n_epochs=2,
            seed=9,
        ).run()
        final = snapshots[-1]
        newcomers = {
            uri for s in snapshots for uri in s.truth.newcomers
        }
        assert len(newcomers) == 8
        assert all(uri.startswith(NEWCOMER_PREFIX) for uri in newcomers)
        # Nobody vouches for a cold-start newcomer.
        assert all(
            target not in newcomers for _, target in final.dataset.trust
        )

    def test_epoch_qualified_uris_never_collide(self, community):
        snapshots = Timeline(
            community=community,
            events=[ColdStartWave(wave_size=3)],
            n_epochs=3,
            seed=9,
        ).run()
        per_epoch = [s.truth.newcomers for s in snapshots]
        for i, first in enumerate(per_epoch):
            for second in per_epoch[i + 1 :]:
                assert not first & second


class TestSybilRingGrowth:
    def test_validation(self):
        with pytest.raises(ValueError):
            SybilRingGrowth(ring_growth=0)
        with pytest.raises(ValueError):
            SybilRingGrowth(bridges_per_epoch=-1)

    def test_ring_accretes_across_epochs(self, community):
        snapshots = Timeline(
            community=community,
            events=[SybilRingGrowth(ring_growth=3, bridges_per_epoch=1)],
            n_epochs=3,
            seed=2,
        ).run()
        counts = [len(s.truth.sybils) for s in snapshots]
        assert counts == [3, 6, 9]
        assert [s.truth.bridges for s in snapshots] == [1, 2, 3]

    def test_zero_bridges_leaves_ring_unreachable(self, community):
        snapshots = Timeline(
            community=community,
            events=[SybilRingGrowth(ring_growth=3, bridges_per_epoch=0)],
            n_epochs=2,
            seed=2,
        ).run()
        final = snapshots[-1]
        sybils = final.truth.sybils
        honest_to_sybil = [
            (s, t)
            for s, t in final.dataset.trust
            if s not in sybils and t in sybils
        ]
        assert honest_to_sybil == []

    def test_waves_interlink(self, community):
        snapshots = Timeline(
            community=community,
            events=[SybilRingGrowth(ring_growth=3, bridges_per_epoch=0)],
            n_epochs=2,
            seed=2,
        ).run()
        wave1 = snapshots[0].truth.sybils
        wave2 = snapshots[1].truth.sybils - wave1
        cross = [
            (s, t)
            for s, t in snapshots[-1].dataset.trust
            if (s in wave1 and t in wave2) or (s in wave2 and t in wave1)
        ]
        assert cross

    def test_sybils_copy_victim_and_push(self, community):
        victim = sorted(community.dataset.agents)[0]
        snapshots = Timeline(
            community=community,
            events=[SybilRingGrowth(ring_growth=2, bridges_per_epoch=0, victim=victim)],
            n_epochs=1,
            seed=2,
        ).run()
        final = snapshots[-1]
        pushed = final.truth.pushed_products
        assert pushed
        victim_positives = {
            p
            for p, v in final.dataset.ratings_of(victim).items()
            if v > 0 and p not in pushed
        }
        for sybil in final.truth.sybils:
            profile = final.dataset.ratings_of(sybil)
            assert pushed <= set(profile)
            assert victim_positives <= set(profile)


class TestTrustSpamCampaign:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrustSpamCampaign(compromised_per_epoch=-1)
        with pytest.raises(ValueError):
            TrustSpamCampaign(edges_per_agent=0)

    def test_noop_without_sybils(self, community):
        snapshots = Timeline(
            community=community,
            events=[TrustSpamCampaign(compromised_per_epoch=2)],
            n_epochs=2,
            seed=8,
        ).run()
        assert snapshots[-1].truth.compromised == frozenset()
        assert snapshots[-1].truth.bridges == 0

    def test_compromised_accumulate_and_spam(self, community):
        snapshots = Timeline(
            community=community,
            events=[
                SybilRingGrowth(ring_growth=3, bridges_per_epoch=0),
                TrustSpamCampaign(compromised_per_epoch=1, edges_per_agent=2),
            ],
            n_epochs=3,
            seed=8,
        ).run()
        compromised = [len(s.truth.compromised) for s in snapshots]
        assert compromised == [1, 2, 3]
        final = snapshots[-1]
        spam = [
            (s, t)
            for s, t in final.dataset.trust
            if s in final.truth.compromised and t in final.truth.sybils
        ]
        assert len(spam) == final.truth.bridges == 6


class TestInterestDrift:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterestDrift(drift_rate=2.0)

    def test_drifters_gain_new_cluster_ratings(self, community):
        snapshots = Timeline(
            community=community,
            events=[InterestDrift(drift_rate=0.2, ratings_per_drift=2)],
            n_epochs=1,
            seed=6,
        ).run()
        truth = snapshots[0].truth
        assert truth.drifted
        baseline = community.dataset
        for uri in truth.drifted:
            before = set(baseline.ratings_of(uri))
            after = set(snapshots[0].dataset.ratings_of(uri))
            assert before < after  # history kept, new ratings added

    def test_zero_rate_is_noop(self, community):
        snapshots = Timeline(
            community=community,
            events=[InterestDrift(drift_rate=0.0)],
            n_epochs=1,
            seed=6,
        ).run()
        assert snapshots[0].truth.drifted == frozenset()
        assert dataset_signature(snapshots[0].dataset) == dataset_signature(
            community.dataset
        )
