"""Unit tests for FOAF homepage publishing and parsing."""

from __future__ import annotations

import pytest

from repro.core.models import Agent, Product
from repro.core.taxonomy import Taxonomy, figure1_fragment
from repro.semweb.foaf import (
    parse_agent_homepage,
    parse_catalog,
    parse_taxonomy,
    publish_agent,
    publish_catalog,
    publish_taxonomy,
)
from repro.semweb.namespace import FOAF, RDF, TRUST
from repro.semweb.rdf import Graph, Literal, URIRef
from repro.semweb.serializer import parse_ntriples, serialize_ntriples

ALICE = Agent(uri="http://example.org/alice", name="Alice")


class TestAgentHomepage:
    def test_publish_contains_person_type(self):
        graph = publish_agent(ALICE, {}, {})
        assert (URIRef(ALICE.uri), RDF.type, FOAF.Person) in graph

    def test_publish_contains_name(self):
        graph = publish_agent(ALICE, {}, {})
        assert graph.value(URIRef(ALICE.uri), FOAF.name) == Literal("Alice")

    def test_trust_produces_knows_link(self):
        graph = publish_agent(ALICE, {"http://example.org/bob": 0.8}, {})
        assert (URIRef(ALICE.uri), FOAF.knows, URIRef("http://example.org/bob")) in graph

    def test_roundtrip_trust_and_ratings(self):
        trust = {"http://example.org/bob": 0.8, "http://example.org/carol": -0.4}
        ratings = {"isbn:1": 1.0, "isbn:2": 0.5}
        graph = publish_agent(ALICE, trust, ratings)
        agent, trust_out, ratings_out = parse_agent_homepage(graph)
        assert agent == ALICE
        assert {(s.target, s.value) for s in trust_out} == {
            ("http://example.org/bob", 0.8),
            ("http://example.org/carol", -0.4),
        }
        assert {(r.product, r.value) for r in ratings_out} == {
            ("isbn:1", 1.0),
            ("isbn:2", 0.5),
        }

    def test_roundtrip_through_ntriples(self):
        trust = {"http://example.org/bob": 0.75}
        ratings = {"isbn:42": 1.0}
        graph = publish_agent(ALICE, trust, ratings)
        reparsed = parse_ntriples(serialize_ntriples(graph))
        agent, trust_out, ratings_out = parse_agent_homepage(reparsed)
        assert agent == ALICE
        assert trust_out[0].value == 0.75
        assert ratings_out[0].product == "isbn:42"

    def test_deterministic_serialization(self):
        trust = {"http://example.org/b": 0.5, "http://example.org/a": 0.6}
        first = serialize_ntriples(publish_agent(ALICE, trust, {"isbn:1": 1.0}))
        second = serialize_ntriples(publish_agent(ALICE, trust, {"isbn:1": 1.0}))
        assert first == second

    def test_no_person_rejected(self):
        with pytest.raises(ValueError):
            parse_agent_homepage(Graph())

    def test_two_persons_rejected(self):
        graph = publish_agent(ALICE, {}, {})
        graph.add((URIRef("http://example.org/bob"), RDF.type, FOAF.Person))
        with pytest.raises(ValueError):
            parse_agent_homepage(graph)

    def test_malformed_trust_statement_skipped(self):
        graph = publish_agent(ALICE, {"http://example.org/bob": 0.8}, {})
        # Add a trust statement missing its value.
        from repro.semweb.rdf import BNode

        broken = BNode("broken")
        graph.add((URIRef(ALICE.uri), TRUST.trusts, broken))
        graph.add((broken, TRUST.target, URIRef("http://example.org/mallory")))
        _, trust_out, _ = parse_agent_homepage(graph)
        assert len(trust_out) == 1
        assert trust_out[0].target == "http://example.org/bob"

    def test_out_of_range_trust_value_skipped(self):
        graph = publish_agent(ALICE, {}, {})
        from repro.semweb.rdf import BNode

        bad = BNode("bad")
        graph.add((URIRef(ALICE.uri), TRUST.trusts, bad))
        graph.add((bad, TRUST.target, URIRef("http://example.org/bob")))
        graph.add((bad, TRUST.value, Literal(7.5)))
        _, trust_out, _ = parse_agent_homepage(graph)
        assert trust_out == []

    def test_nan_trust_value_skipped(self):
        graph = publish_agent(ALICE, {}, {})
        from repro.semweb.rdf import BNode

        bad = BNode("bad")
        graph.add((URIRef(ALICE.uri), TRUST.trusts, bad))
        graph.add((bad, TRUST.target, URIRef("http://example.org/bob")))
        graph.add((bad, TRUST.value, Literal(float("nan"))))
        _, trust_out, _ = parse_agent_homepage(graph)
        assert trust_out == []

    def test_out_of_range_rating_skipped(self):
        from repro.semweb.namespace import REPRO
        from repro.semweb.rdf import BNode

        graph = publish_agent(ALICE, {}, {"isbn:1": 0.5})
        bad = BNode("badr")
        graph.add((URIRef(ALICE.uri), REPRO.rates, bad))
        graph.add((bad, REPRO.product, URIRef("isbn:2")))
        graph.add((bad, REPRO.value, Literal(9.0)))
        _, _, ratings_out = parse_agent_homepage(graph)
        assert [(r.product, r.value) for r in ratings_out] == [("isbn:1", 0.5)]

    def test_nan_rating_skipped(self):
        from repro.semweb.namespace import REPRO
        from repro.semweb.rdf import BNode

        graph = publish_agent(ALICE, {}, {})
        bad = BNode("badr")
        graph.add((URIRef(ALICE.uri), REPRO.rates, bad))
        graph.add((bad, REPRO.product, URIRef("isbn:2")))
        graph.add((bad, REPRO.value, Literal(float("nan"))))
        _, _, ratings_out = parse_agent_homepage(graph)
        assert ratings_out == []

    def test_agent_without_name(self):
        anon = Agent(uri="http://example.org/anon")
        agent, _, _ = parse_agent_homepage(publish_agent(anon, {}, {}))
        assert agent.name == ""


class TestTaxonomyDocument:
    def test_roundtrip_figure1(self):
        taxonomy = figure1_fragment()
        graph = publish_taxonomy(taxonomy)
        rebuilt = parse_taxonomy(graph)
        assert set(rebuilt) == set(taxonomy)
        for topic in taxonomy:
            assert rebuilt.parent(topic) == taxonomy.parent(topic)
            assert rebuilt.label(topic) == taxonomy.label(topic)

    def test_roundtrip_through_text(self):
        taxonomy = figure1_fragment()
        text = serialize_ntriples(publish_taxonomy(taxonomy))
        rebuilt = parse_taxonomy(parse_ntriples(text))
        assert rebuilt.sibling_count("Algebra") == taxonomy.sibling_count("Algebra")
        assert rebuilt.path_to_root("Algebra") == taxonomy.path_to_root("Algebra")

    def test_single_topic_taxonomy(self):
        taxonomy = Taxonomy("Root", "Root")
        rebuilt = parse_taxonomy(publish_taxonomy(taxonomy))
        assert rebuilt.root == "Root"
        assert len(rebuilt) == 1

    def test_multiple_roots_rejected(self):
        graph = publish_taxonomy(figure1_fragment())
        from repro.semweb.foaf import _topic_uri
        from repro.semweb.namespace import RDFS

        graph.add((_topic_uri("Orphan"), RDFS.subClassOf, _topic_uri("Nowhere")))
        with pytest.raises(ValueError):
            parse_taxonomy(graph)


class TestCatalogDocument:
    def test_roundtrip(self):
        products = {
            "isbn:1": Product(
                identifier="isbn:1",
                title="Matrix Analysis",
                descriptors=frozenset({"Algebra", "Physics"}),
            ),
            "isbn:2": Product(identifier="isbn:2", title="Snow Crash"),
        }
        rebuilt = parse_catalog(publish_catalog(products))
        assert rebuilt == products

    def test_roundtrip_through_text(self):
        products = {
            "isbn:9": Product(
                identifier="isbn:9", title="T", descriptors=frozenset({"Algebra"})
            )
        }
        text = serialize_ntriples(publish_catalog(products))
        assert parse_catalog(parse_ntriples(text)) == products

    def test_empty_catalog(self):
        assert parse_catalog(publish_catalog({})) == {}
