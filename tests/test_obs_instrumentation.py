"""Instrumentation contracts: traces/metrics mirror results exactly.

The observability layer's promise is that a trace is *evidence*, not a
parallel bookkeeping that can drift: the Appleseed span's sweep count
is the result's own ``iterations``, the crawl span's fetch count is the
report's ``fetched``, and two same-seed runs trace identically modulo
``duration_ms``.
"""

from __future__ import annotations

from repro.datasets.generators import CommunityConfig, generate_community
from repro.obs import collecting, strip_durations, tracing
from repro.trust.advogato import Advogato
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph
from repro.web.crawler import Crawler, publish_community
from repro.web.network import SimulatedWeb
from repro.web.replicator import CommunityReplicator, publish_split_community


def _small_community(seed: int = 5):
    return generate_community(
        CommunityConfig(n_agents=40, n_products=80, n_clusters=4, seed=seed)
    )


def _graph_and_source(community):
    graph = TrustGraph.from_dataset(community.dataset)
    return graph, sorted(community.dataset.agents)[0]


class TestAppleseedTelemetry:
    def test_span_mirrors_result_fields(self):
        community = _small_community()
        graph, source = _graph_and_source(community)
        with tracing() as tracer, collecting() as registry:
            result = Appleseed().compute(graph, source)
        (record,) = [
            r for r in tracer.records() if r["name"] == "appleseed.compute"
        ]
        assert record["attrs"]["iterations"] == result.iterations
        assert record["attrs"]["converged"] == result.converged
        assert record["attrs"]["network_size"] == len(result.ranks)
        # The residual-energy series is the result's history, verbatim.
        assert record["attrs"]["residual_energy"] == result.history
        assert len(result.history) == result.iterations
        assert registry.counter("appleseed.sweeps").value == result.iterations
        assert registry.counter("appleseed.computations").value == 1
        histogram = registry.histogram("trust.neighborhood_size")
        assert histogram.observations == 1
        assert histogram.total == len(result.ranks)

    def test_sweep_counter_sums_over_computations(self):
        community = _small_community()
        graph, _ = _graph_and_source(community)
        sources = sorted(community.dataset.agents)[:3]
        metric = Appleseed()
        with collecting() as registry:
            results = [metric.compute(graph, source) for source in sources]
        assert registry.counter("appleseed.sweeps").value == sum(
            result.iterations for result in results
        )
        assert registry.counter("appleseed.computations").value == len(sources)

    def test_iteration_cap_hit_is_counted(self):
        community = _small_community()
        graph, source = _graph_and_source(community)
        capped = Appleseed(max_iterations=1, convergence_threshold=1e-9)
        with collecting() as registry:
            result = capped.compute(graph, source)
        assert not result.converged
        assert registry.counter("appleseed.iteration_cap_hits").value == 1


class TestAdvogatoTelemetry:
    def test_span_mirrors_result_fields(self):
        community = _small_community()
        graph, source = _graph_and_source(community)
        with tracing() as tracer, collecting() as registry:
            result = Advogato(target_size=10).compute(graph, source)
        (record,) = [
            r for r in tracer.records() if r["name"] == "advogato.compute"
        ]
        assert record["attrs"]["accepted"] == len(result.accepted)
        assert record["attrs"]["total_flow"] == result.total_flow
        assert registry.counter("advogato.accepted").value == len(result.accepted)
        assert registry.counter("advogato.flow").value == result.total_flow


class TestTraceDeterminism:
    def test_same_seed_traces_identical_modulo_durations(self):
        projections = []
        for _ in range(2):
            community = _small_community(seed=9)
            graph, source = _graph_and_source(community)
            with tracing() as tracer:
                Appleseed().compute(graph, source)
                Advogato(target_size=10).compute(graph, source)
            projections.append(strip_durations(tracer.records()))
        assert projections[0] == projections[1]

    def test_crawl_trace_deterministic_modulo_durations(self):
        projections = []
        for _ in range(2):
            community = _small_community(seed=11)
            web = SimulatedWeb()
            publish_community(web, community.dataset, community.taxonomy)
            crawler = Crawler(web=web)
            seed_agent = sorted(community.dataset.agents)[0]
            with tracing() as tracer:
                crawler.crawl([seed_agent])
            projections.append(strip_durations(tracer.records()))
        assert projections[0] == projections[1]


class TestCrawlTelemetry:
    def test_crawl_span_and_report_agree(self):
        community = _small_community(seed=11)
        web = SimulatedWeb()
        publish_community(web, community.dataset, community.taxonomy)
        crawler = Crawler(web=web)
        seed_agent = sorted(community.dataset.agents)[0]
        with tracing() as tracer, collecting() as registry:
            report = crawler.crawl([seed_agent])
        (record,) = [r for r in tracer.records() if r["name"] == "crawl.pass"]
        assert record["attrs"]["kind"] == "crawl"
        assert record["attrs"]["fetched"] == report.fetched
        assert record["attrs"]["discovered"] == report.discovered
        assert registry.counter("crawl.fetched").value == report.fetched
        assert registry.counter("crawl.passes").value == 1

    def test_report_carries_a_duration(self):
        community = _small_community(seed=11)
        web = SimulatedWeb()
        publish_community(web, community.dataset, community.taxonomy)
        crawler = Crawler(web=web)
        seed_agent = sorted(community.dataset.agents)[0]
        report = crawler.crawl([seed_agent])
        assert report.duration_ms > 0.0
        refresh = crawler.refresh()
        assert refresh.duration_ms > 0.0

    def test_duration_excluded_from_report_equality(self):
        from dataclasses import replace

        community = _small_community(seed=11)
        web = SimulatedWeb()
        publish_community(web, community.dataset, community.taxonomy)
        crawler = Crawler(web=web)
        report = crawler.crawl([sorted(community.dataset.agents)[0]])
        assert report == replace(report, duration_ms=report.duration_ms + 1.0)


class TestReplicationTelemetry:
    def test_phase_durations_and_trips_on_report(self):
        community = _small_community(seed=13)
        web = SimulatedWeb()
        taxonomy_uri, catalog_uri = publish_split_community(
            web, community.dataset, community.taxonomy
        )
        replicator = CommunityReplicator(web=web)
        seed_agent = sorted(community.dataset.agents)[0]
        with tracing() as tracer:
            _, _, report = replicator.replicate(
                [seed_agent], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
            )
        assert [name for name, _ in report.phase_durations] == [
            "globals",
            "homepages",
            "assemble",
            "weblogs",
        ]
        assert all(duration >= 0.0 for _, duration in report.phase_durations)
        assert [name for name, _ in report.phase_breaker_trips] == [
            "globals",
            "homepages",
            "assemble",
            "weblogs",
        ]
        # A fault-free run trips no breakers, in total or per phase.
        assert sum(trips for _, trips in report.phase_breaker_trips) == 0
        names = [record["name"] for record in tracer.records()]
        assert "replicate.pass" in names
        assert "replicate.weblogs" in names
        # The phase spans nest under the pass span.
        by_name = {record["name"]: record for record in tracer.records()}
        pass_id = by_name["replicate.pass"]["id"]
        assert by_name["replicate.globals"]["parent"] == pass_id


class TestEngineAndCacheTelemetry:
    def test_matrix_cache_hit_miss_counters(self):
        import pytest

        np = pytest.importorskip("numpy")  # noqa: F841 - matrix path needs numpy
        from repro.core.profiles import TaxonomyProfileBuilder
        from repro.core.recommender import ProfileStore

        community = _small_community(seed=17)
        store = ProfileStore(
            community.dataset, TaxonomyProfileBuilder(community.taxonomy)
        )
        with collecting() as registry:
            store.matrix()
            store.matrix()
            store.invalidate()
            store.matrix()
        assert registry.counter("similarity.matrix_cache.miss").value == 2
        assert registry.counter("similarity.matrix_cache.hit").value == 1

    def test_engine_selection_counter(self):
        from repro.perf.engine import resolve_engine

        with collecting() as registry:
            assert resolve_engine("python") == "python"
        assert registry.counter("engine.selected.python").value == 1


class TestFetchTelemetry:
    def test_fetch_outcomes_and_breaker_trips_counted(self):
        from repro.web.faults import (
            CircuitBreakerRegistry,
            FaultPlan,
            FaultyWeb,
            ResilientFetcher,
            RetryPolicy,
        )

        web = SimulatedWeb()
        web.publish("http://site.example/a/doc", "body")
        faulty = FaultyWeb(web, FaultPlan(transient_rate=1.0, seed=1))
        fetcher = ResilientFetcher(
            web=faulty,
            retry=RetryPolicy(max_retries=1, seed=1),
            breakers=CircuitBreakerRegistry(failure_threshold=2),
        )
        with collecting() as registry:
            outcome = fetcher.fetch("http://site.example/a/doc")
        assert outcome.error == "transient"
        assert registry.counter("fetch.outcome.transient").value == 1
        assert registry.counter("fetch.retries").value == outcome.retries
        assert registry.counter("breaker.trips").value == fetcher.breakers.trips
