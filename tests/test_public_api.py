"""Meta-tests of the public API surface.

These keep the package importable as documented: every name exported in
an ``__all__`` must exist, the README quickstart must run, and the
version string must match the package metadata convention.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.trust",
    "repro.semweb",
    "repro.web",
    "repro.datasets",
    "repro.evaluation",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} must declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted(name):
    module = importlib.import_module(name)
    exported = list(getattr(module, "__all__", []))
    assert exported == sorted(exported), f"{name}.__all__ should be sorted"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_readme_quickstart_runs():
    """The exact code block from README.md must work."""
    from repro import SemanticWebRecommender, quickstart_community

    dataset, taxonomy = quickstart_community(seed=7)
    rec = SemanticWebRecommender.from_dataset(dataset, taxonomy)
    agent = sorted(dataset.agents)[0]
    items = rec.recommend(agent, limit=5)
    assert len(items) == 5
    assert all(item.score > 0 for item in items)


def test_quickstart_community_parameters():
    from repro import quickstart_community

    dataset, taxonomy = quickstart_community(seed=3, agents=30, products=50)
    assert len(dataset.agents) == 30
    assert len(dataset.products) == 50
    assert len(taxonomy) > 1


def test_experiment_functions_are_registered_in_cli():
    """Every run_ex* function must be reachable via `repro experiment`."""
    from repro.cli import _EXPERIMENTS
    from repro.evaluation import (
        experiments,
        experiments_chaos,
        experiments_ext,
        experiments_perf,
        scenarios,
    )

    defined = {
        name
        for module in (experiments, experiments_chaos, experiments_ext, experiments_perf, scenarios)
        for name in module.__all__
        if name.startswith("run_ex")
    }
    registered = {func for _, func, _ in _EXPERIMENTS.values()}
    assert defined == registered


def test_every_experiment_has_a_bench_target():
    """DESIGN.md promises one bench per experiment; hold the repo to it."""
    from pathlib import Path

    from repro.cli import _EXPERIMENTS

    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    bench_files = {p.name for p in bench_dir.glob("bench_ex*.py")}
    for experiment_id in _EXPERIMENTS:
        number = experiment_id[2:].lstrip("0") or "0"
        matches = [
            name
            for name in bench_files
            if name.startswith(f"bench_ex{int(number):02d}_")
        ]
        assert matches, f"no bench file for {experiment_id}"
