"""Shape assertions for the EX1-EX11 experiment suite.

These tests run every experiment at reduced scale and assert the *shape*
claims recorded in DESIGN.md §5 — who wins, which direction the curves
bend — not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core.similarity import isclose
from repro.datasets.amazon import book_taxonomy_config
from repro.datasets.generators import CommunityConfig, generate_community
from repro.evaluation.experiments import (
    PAPER_EXAMPLE1,
    run_ex01_example1,
    run_ex02_trust_similarity,
    run_ex03_appleseed_convergence,
    run_ex04_attack_resistance,
    run_ex05_profile_overlap,
    run_ex06_recommendation_quality,
    run_ex07_manipulation,
    run_ex08_scalability,
    run_ex09_taxonomy_structure,
    run_ex10_synthesis,
    run_ex11_crawler,
)


@pytest.fixture(scope="module")
def community():
    """A mid-size community shared by every experiment in this module."""
    config = CommunityConfig(
        n_agents=250,
        n_products=500,
        n_clusters=8,
        seed=42,
        taxonomy=book_taxonomy_config(target_topics=600, seed=42),
    )
    return generate_community(config)


class TestEx01:
    def test_values_match_paper_to_three_digits(self):
        table = run_ex01_example1()
        assert len(table.rows) == 5
        for topic, paper_value, reproduced, diff in (tuple(r) for r in table.rows):
            assert float(paper_value) == PAPER_EXAMPLE1[topic]
            assert abs(float(reproduced) - PAPER_EXAMPLE1[topic]) < 0.005
            assert float(diff) < 0.005


class TestEx02:
    def test_trust_orders_similarity(self, community):
        table = run_ex02_trust_similarity(community, n_samples=250)
        by_class = {row[0]: row for row in table.rows}
        direct = float(by_class["direct trust (1 hop)"][2])
        two_hop = float(by_class["2-hop trust"][2])
        randomized = float(by_class["random"][2])
        # The reproduced claim: direct > 2-hop > random, on both measures.
        assert direct > two_hop > randomized
        direct_cos = float(by_class["direct trust (1 hop)"][4])
        random_cos = float(by_class["random"][4])
        assert direct_cos > random_cos


class TestEx03:
    def test_lower_threshold_more_iterations(self, community):
        table = run_ex03_appleseed_convergence(community, n_sources=5)
        # Rows come in (d, T_c) pairs: looser then tighter threshold.
        for loose, tight in zip(table.rows[0::2], table.rows[1::2]):
            assert loose[0] == tight[0]  # same d
            assert float(tight[3]) >= float(loose[3])  # iterations
            assert float(tight[4]) >= float(loose[4]) * 0.9  # neighborhood

    def test_higher_d_larger_neighborhood(self, community):
        table = run_ex03_appleseed_convergence(community, n_sources=5)
        tight_rows = table.rows[1::2]  # T_c = 0.01 rows, d ascending
        sizes = [float(row[4]) for row in tight_rows]
        assert sizes == sorted(sizes)


class TestEx04:
    def test_group_metrics_resist_scalar_does_not(self, community):
        table = run_ex04_attack_resistance(
            community, n_sybils=40, bridge_counts=(0, 5, 20), top_k=40
        )
        zero_bridges = table.rows[0]
        many_bridges = table.rows[-1]
        # With no bridges nothing gets in anywhere.
        assert float(zero_bridges[1]) == 0.0
        assert float(zero_bridges[2]) == 0.0
        assert float(zero_bridges[3].split()[0]) == 0.0
        assert float(zero_bridges[4].split()[0]) == 0.0
        # With many bridges the scalar metric admits strictly more than
        # any walk/flow group metric.
        scalar_frac = float(many_bridges[4].split()[0])
        apple_frac = float(many_bridges[1])
        pagerank_frac = float(many_bridges[2])
        advogato_frac = float(many_bridges[3].split()[0])
        assert scalar_frac > 0.0
        assert scalar_frac > apple_frac
        assert scalar_frac > pagerank_frac
        assert scalar_frac > advogato_frac


class TestEx05:
    def test_taxonomy_overlap_dominates(self, community):
        table = run_ex05_profile_overlap(community, n_pairs=300)
        by_repr = {row[0]: row for row in table.rows}
        product = float(by_repr["product vectors"][1])
        flat = float(by_repr["flat categories"][1])
        taxonomy = float(by_repr["taxonomy (Eq. 3)"][1])
        assert product < flat <= taxonomy
        assert taxonomy > 0.9  # propagation makes overlap near-universal
        assert product < 0.5


class TestEx06:
    def test_personalized_beats_baselines(self, community):
        table = run_ex06_recommendation_quality(community, max_users=25)
        f1 = {row[0]: float(row[4]) for row in table.rows}
        assert f1["hybrid (trust+taxonomy)"] > f1["random"]
        assert f1["hybrid (trust+taxonomy)"] > f1["popularity"]
        assert f1["pure CF (taxonomy)"] > f1["random"]


class TestEx07:
    def test_trust_filter_blocks_contamination(self, community):
        table = run_ex07_manipulation(
            community, sybil_counts=(10,), n_victims=4
        )
        row = table.rows[0]
        hybrid = float(row[1])
        pure_cf = float(row[2])
        assert hybrid < pure_cf
        assert pure_cf > 0.0  # the attack works against trust-blind CF
        assert isclose(hybrid, 0.0)  # and is fully blocked by trust filtering


class TestEx08:
    def test_table_shape(self):
        table = run_ex08_scalability(sizes=(100, 200), queries=3)
        assert len(table.rows) == 2
        for row in table.rows:
            assert float(row[1]) > 0
            assert float(row[2]) > 0

    def test_cf_cost_grows_faster(self):
        table = run_ex08_scalability(sizes=(100, 400), queries=3)
        ratio_small = float(table.rows[0][3])
        ratio_large = float(table.rows[1][3])
        assert ratio_large > ratio_small


class TestEx09:
    def test_compares_both_shapes(self):
        table = run_ex09_taxonomy_structure(n_agents=150, n_products=300)
        assert len(table.rows) == 2
        book, dvd = table.rows
        assert int(book[2]) > int(dvd[2])  # book taxonomy deeper
        assert float(dvd[3]) > float(book[3])  # dvd branches wider


class TestEx10:
    def test_all_strategies_evaluated(self, community):
        table = run_ex10_synthesis(community, max_users=20)
        names = {row[0] for row in table.rows}
        assert names == {
            "linear γ=0.25",
            "linear γ=0.50",
            "linear γ=0.75",
            "multiplicative",
            "borda",
            "trust filter",
        }
        for row in table.rows:
            assert 0.0 <= float(row[4]) <= 1.0


class TestEx11:
    def test_overlap_grows_with_budget(self, community):
        table = run_ex11_crawler(community, budgets=(0.05, 1.0))
        first, last = table.rows[0], table.rows[-1]
        assert int(first[2]) < int(last[2])  # coverage grows
        assert float(last[3]) == 1.0  # full crawl reproduces the reference
        assert float(first[3]) > 0.0  # partial crawl is already useful
