"""Unit and property tests for the Dinic max-flow implementation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trust.maxflow import FlowNetwork


class TestBasics:
    def test_single_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 5)
        assert net.max_flow("s", "t") == 5

    def test_series_bottleneck(self):
        net = FlowNetwork()
        net.add_edge("s", "m", 10)
        net.add_edge("m", "t", 3)
        assert net.max_flow("s", "t") == 3

    def test_parallel_paths_add(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 3)
        net.add_edge("a", "t", 3)
        net.add_edge("s", "b", 4)
        net.add_edge("b", "t", 4)
        assert net.max_flow("s", "t") == 7

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 3)
        net.add_node("t")
        assert net.max_flow("s", "t") == 0

    def test_classic_textbook_network(self):
        # CLRS figure: max flow 23.
        net = FlowNetwork()
        net.add_edge("s", "v1", 16)
        net.add_edge("s", "v2", 13)
        net.add_edge("v1", "v3", 12)
        net.add_edge("v2", "v1", 4)
        net.add_edge("v2", "v4", 14)
        net.add_edge("v3", "v2", 9)
        net.add_edge("v3", "t", 20)
        net.add_edge("v4", "v3", 7)
        net.add_edge("v4", "t", 4)
        assert net.max_flow("s", "t") == 23

    def test_requires_augmenting_path_undo(self):
        # Forces flow along s->a->b->t then rerouting via residual edges.
        net = FlowNetwork()
        net.add_edge("s", "a", 1)
        net.add_edge("s", "b", 1)
        net.add_edge("a", "b", 1)
        net.add_edge("a", "t", 1)
        net.add_edge("b", "t", 1)
        assert net.max_flow("s", "t") == 2

    def test_flow_on_reports_edge_flow(self):
        net = FlowNetwork()
        first = net.add_edge("s", "m", 10)
        second = net.add_edge("m", "t", 3)
        net.max_flow("s", "t")
        assert net.flow_on(first) == 3
        assert net.flow_on(second) == 3

    def test_zero_capacity_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 0)
        assert net.max_flow("s", "t") == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge("s", "t", -1)

    def test_same_source_sink_rejected(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 1)
        with pytest.raises(ValueError):
            net.max_flow("s", "s")

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            FlowNetwork().max_flow("s", "t")

    def test_tuple_node_identifiers(self):
        net = FlowNetwork()
        net.add_edge(("in", "a"), ("out", "a"), 2)
        assert net.max_flow(("in", "a"), ("out", "a")) == 2


@settings(deadline=None, max_examples=40)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 20)),
        min_size=1,
        max_size=25,
    )
)
def test_property_flow_conservation_and_cut_bound(edges):
    """Property: max flow <= capacity out of source and into sink, and the
    flow on every original edge is within its capacity."""
    net = FlowNetwork()
    net.add_node(0)
    net.add_node(5)
    arc_records = []
    for source, target, capacity in edges:
        if source != target:
            arc = net.add_edge(source, target, capacity)
            arc_records.append((arc, capacity))
    flow = net.max_flow(0, 5)
    out_capacity = sum(c for s, t, c in edges if s == 0 and t != 0)
    in_capacity = sum(c for s, t, c in edges if t == 5 and s != 5)
    assert 0 <= flow <= min(out_capacity, in_capacity)
    for arc, capacity in arc_records:
        assert 0 <= net.flow_on(arc) <= capacity
