"""Tracer/Span: reproducible identity, JSONL schema, null fast path."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MEMORY_ATTR,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace,
    strip_durations,
    validate_trace,
    write_records_jsonl,
)
from repro.obs.trace import SPAN_FIELDS


class TestSpanTree:
    def test_ids_sequential_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [span.span_id for span in tracer.spans] == [1, 2, 3]
        assert [span.name for span in tracer.spans] == ["a", "b", "c"]

    def test_parent_comes_from_the_span_stack(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        parents = {span.name: span.parent_id for span in tracer.spans}
        assert parents == {"root": None, "child": 1, "grandchild": 2, "sibling": 1}

    def test_exception_recorded_and_stack_unwound(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        records = tracer.records()
        assert records[1]["attrs"]["error"] == "RuntimeError"
        assert records[0]["attrs"]["error"] == "RuntimeError"
        # The stack fully unwound: a new span becomes a root.
        with tracer.span("next"):
            pass
        assert tracer.records()[-1]["parent"] is None

    def test_attrs_are_json_coerced(self):
        tracer = Tracer()
        with tracer.span("s", tags={"b", "a"}, pair=(1, 2)) as span:
            span.set("extra", {"k": frozenset({3, 1})})
        record = tracer.records()[0]
        assert record["attrs"]["tags"] == ["a", "b"]
        assert record["attrs"]["pair"] == [1, 2]
        assert record["attrs"]["extra"] == {"k": [1, 3]}

    def test_set_after_close_is_allowed(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        span.set("late", 7)
        assert tracer.records()[0]["attrs"]["late"] == 7

    def test_durations_are_non_negative(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        assert tracer.spans[0].duration_ms >= 0.0


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", seed=42):
            with tracer.span("leaf"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 2
        records = load_trace(path)
        assert records == tracer.records()
        assert validate_trace(records) == []

    def test_lines_have_sorted_keys(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        line = tracer.to_jsonl().splitlines()[0]
        assert list(json.loads(line)) == sorted(SPAN_FIELDS)

    def test_load_trace_names_the_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"attrs": {}}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_trace(path)


class TestValidation:
    def _valid(self, **overrides):
        record = {
            "attrs": {},
            "duration_ms": 0.5,
            "id": 1,
            "name": "s",
            "parent": None,
        }
        record.update(overrides)
        return record

    def test_accepts_a_valid_trace(self):
        records = [self._valid(), self._valid(id=2, parent=1)]
        assert validate_trace(records) == []

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"id": 0}, "positive integer"),
            ({"id": True}, "positive integer"),
            ({"parent": 5}, "earlier span id"),
            ({"name": ""}, "non-empty"),
            ({"attrs": []}, "object"),
            ({"duration_ms": -1.0}, "non-negative"),
        ],
    )
    def test_rejects_schema_violations(self, mutation, fragment):
        errors = validate_trace([self._valid(**mutation)])
        assert errors and fragment in errors[0]

    def test_rejects_wrong_key_set(self):
        record = self._valid()
        record["surprise"] = 1
        errors = validate_trace([record])
        assert errors and "keys" in errors[0]

    def test_rejects_out_of_order_ids(self):
        records = [self._valid(id=2), self._valid(id=1)]
        assert any("out of start order" in error for error in validate_trace(records))

    def test_strip_durations_removes_only_the_clock(self):
        records = [self._valid()]
        stripped = strip_durations(records)
        assert "duration_ms" not in stripped[0]
        assert set(stripped[0]) == set(SPAN_FIELDS) - {"duration_ms"}

    def test_empty_trace_is_valid_and_strips_to_empty(self):
        assert validate_trace([]) == []
        assert validate_trace([], strict_durations=True) == []
        assert strip_durations([]) == []

    def test_orphaned_parent_id_is_reported(self):
        records = [self._valid(), self._valid(id=2, parent=99)]
        errors = validate_trace(records)
        assert any("parent 99" in error and "earlier span id" in error for error in errors)

    def test_duplicate_span_ids_are_reported(self):
        records = [self._valid(), self._valid()]
        errors = validate_trace(records)
        assert any("duplicate id 1" in error for error in errors)

    def test_all_findings_reported_not_just_the_first(self):
        records = [
            self._valid(name=""),  # bad name
            self._valid(id=2, duration_ms=-1.0),  # bad duration
            self._valid(id=2, parent=50),  # duplicate id AND orphan parent
        ]
        errors = validate_trace(records)
        assert len(errors) >= 4
        assert any("non-empty string" in error for error in errors)
        assert any("non-negative" in error for error in errors)
        assert any("duplicate id" in error for error in errors)
        assert any("earlier span id" in error for error in errors)


class TestStrictDurations:
    def _tree(self, parent_ms, child_ms):
        return [
            {"attrs": {}, "duration_ms": parent_ms, "id": 1, "name": "p", "parent": None},
            {"attrs": {}, "duration_ms": child_ms, "id": 2, "name": "c", "parent": 1},
        ]

    def test_real_traces_pass_strict_mode(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("leaf"):
                    pass
        assert validate_trace(tracer.records(), strict_durations=True) == []

    def test_children_outlasting_parent_rejected_only_in_strict_mode(self):
        records = self._tree(1.0, 5.0)
        assert validate_trace(records) == []
        errors = validate_trace(records, strict_durations=True)
        assert len(errors) == 1
        assert "non-monotonic" in errors[0] and "span id 1" in errors[0]

    def test_rounding_slack_is_tolerated(self):
        # Two children whose rounded sum exceeds the parent by half an
        # ulp each — exporter rounding, not clock trouble.
        records = self._tree(1.0, 0.5) + [
            {"attrs": {}, "duration_ms": 0.5001, "id": 3, "name": "c2", "parent": 1}
        ]
        assert validate_trace(records, strict_durations=True) == []


class TestMemoryMode:
    def test_memory_tracer_stamps_the_delta_attr(self):
        tracer = Tracer(memory=True)
        with tracer.span("alloc"):
            blob = list(range(50_000))
        del blob
        record = tracer.records()[0]
        assert MEMORY_ATTR in record["attrs"]
        assert isinstance(record["attrs"][MEMORY_ATTR], float)
        assert record["attrs"][MEMORY_ATTR] > 0  # the list was live at span exit

    def test_default_tracer_does_not_stamp_memory(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        assert MEMORY_ATTR not in tracer.records()[0]["attrs"]

    def test_strip_durations_removes_the_memory_attr(self):
        tracer = Tracer(memory=True)
        with tracer.span("s", keep="me"):
            pass
        records = tracer.records()
        assert validate_trace(records) == []
        stripped = strip_durations(records)
        assert MEMORY_ATTR not in stripped[0]["attrs"]
        assert stripped[0]["attrs"]["keep"] == "me"
        # The original records are untouched (projection, not mutation).
        assert MEMORY_ATTR in records[0]["attrs"]


class TestWriteRecordsJsonl:
    def test_round_trips_loaded_records(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", seed=1):
            with tracer.span("leaf"):
                pass
        records = tracer.records()
        path = tmp_path / "copy.jsonl"
        assert write_records_jsonl(records, path) == 2
        assert load_trace(path) == records
        assert path.read_text(encoding="utf-8") == tracer.to_jsonl()


class TestNullPath:
    def test_null_tracer_hands_out_the_shared_span(self):
        assert NULL_TRACER.span("anything", k=1) is NULL_SPAN
        assert NullTracer().span("other") is NULL_SPAN

    def test_null_span_is_a_silent_context_manager(self):
        with NULL_SPAN as span:
            span.set("ignored", 1)
        assert not isinstance(span, Span)

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False
