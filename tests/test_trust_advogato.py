"""Unit tests for the Advogato group trust metric."""

from __future__ import annotations

import pytest

from repro.evaluation.attacks import inject_sybil_region
from repro.trust.advogato import Advogato
from repro.trust.graph import TrustGraph


def chain_graph() -> TrustGraph:
    return TrustGraph.from_edges(
        [("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0)]
    )


def star_graph(n: int = 10) -> TrustGraph:
    graph = TrustGraph()
    for i in range(n):
        graph.add_edge("hub", f"spoke{i}", 1.0)
    return graph


class TestParameters:
    def test_invalid_target_size(self):
        with pytest.raises(ValueError):
            Advogato(target_size=0)

    def test_empty_capacities_rejected(self):
        with pytest.raises(ValueError):
            Advogato(capacities=[])

    def test_unknown_seed_rejected(self):
        with pytest.raises(KeyError):
            Advogato().compute(chain_graph(), "ghost")


class TestCertification:
    def test_seed_always_accepted(self):
        result = Advogato(target_size=10).compute(chain_graph(), "a")
        assert result.accepts("a")

    def test_chain_accepted_with_capacity(self):
        result = Advogato(capacities=[8, 4, 2, 1]).compute(chain_graph(), "a")
        assert {"a", "b"} <= result.accepted

    def test_isolated_seed(self):
        graph = TrustGraph()
        graph.add_node("alone")
        result = Advogato().compute(graph, "alone")
        assert result.accepted == {"alone"}

    def test_accepted_subset_of_reachable(self):
        graph = chain_graph()
        graph.add_edge("x", "y", 1.0)  # disconnected component
        result = Advogato(target_size=50).compute(graph, "a")
        assert result.accepted <= graph.reachable_from("a")

    def test_star_accepts_spokes_up_to_capacity(self):
        result = Advogato(capacities=[20, 1]).compute(star_graph(10), "hub")
        # Hub consumes 1 unit, each accepted spoke 1: all 10 spokes fit
        # within the hub's 19 forwardable units.
        assert len(result.accepted) == 11

    def test_capacity_bounds_acceptance(self):
        result = Advogato(capacities=[4, 1]).compute(star_graph(10), "hub")
        # Seed capacity 4: hub + 3 forwarded units.
        assert len(result.accepted) == 4

    def test_total_flow_equals_accepted_count(self):
        result = Advogato(target_size=10).compute(chain_graph(), "a")
        assert result.total_flow == len(result.accepted)

    def test_distrust_edges_ignored(self):
        graph = TrustGraph.from_edges([("a", "b", 1.0), ("a", "m", -0.9)])
        result = Advogato(target_size=10).compute(graph, "a")
        assert not result.accepts("m")

    def test_capacities_recorded_per_node(self):
        result = Advogato(capacities=[9, 3, 1]).compute(chain_graph(), "a")
        assert result.capacities["a"] == 9
        assert result.capacities["b"] == 3
        assert result.capacities["c"] == 1
        assert result.capacities["d"] == 1  # last value extends

    def test_derived_capacities_decay(self):
        result = Advogato(target_size=100).compute(star_graph(20), "hub")
        assert result.capacities["hub"] == 100
        assert result.capacities["spoke0"] < 100


class TestAttackResistance:
    """The defining property: acceptance is bounded by the honest->sybil cut."""

    def _honest_graph(self) -> TrustGraph:
        graph = TrustGraph()
        for i in range(20):
            graph.add_edge(f"h{i}", f"h{(i + 1) % 20}", 1.0)
            graph.add_edge(f"h{i}", f"h{(i + 3) % 20}", 1.0)
        return graph

    def test_no_bridges_no_sybils(self, tiny_dataset):
        region = inject_sybil_region(tiny_dataset, n_sybils=20, n_bridges=0, seed=1)
        graph = TrustGraph.from_dataset(region.dataset)
        result = Advogato(target_size=30).compute(graph, sorted(tiny_dataset.agents)[0])
        assert not (result.accepted & region.sybils)

    def test_sybil_acceptance_bounded_by_bridge_count(self, tiny_dataset):
        region = inject_sybil_region(tiny_dataset, n_sybils=40, n_bridges=2, seed=2)
        graph = TrustGraph.from_dataset(region.dataset)
        seed_agent = sorted(tiny_dataset.agents)[0]
        result = Advogato(target_size=30).compute(graph, seed_agent)
        accepted_sybils = result.accepted & region.sybils
        # Flow into the sybil region is bounded by the bridge arcs times
        # the per-node capacity at the bridge level; with level capacities
        # decaying to 1 the bound is small even though 40 sybils exist.
        assert len(accepted_sybils) <= 2 * max(result.capacities.values())
        assert len(accepted_sybils) < 40
