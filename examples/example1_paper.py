#!/usr/bin/env python
"""Reproduce Figure 1 and Example 1 of the paper, end to end.

Builds the exact Amazon book-taxonomy fragment of Figure 1, registers the
four books of Example 1 (Matrix Analysis, Fermat's Enigma, Snow Crash,
Neuromancer) with Matrix Analysis carrying five topic descriptors, and
prints the topic score assignment next to the values the paper reports
(29.087 / 14.543 / 4.848 / 1.212 / 0.303).

Run:  python examples/example1_paper.py
"""

from __future__ import annotations

from repro.core.models import Product
from repro.core.profiles import TaxonomyProfileBuilder, descriptor_score_path
from repro.core.taxonomy import figure1_fragment

PAPER_VALUES = {
    "Algebra": 29.087,
    "Pure": 14.543,
    "Mathematics": 4.848,
    "Science": 1.212,
    "Books": 0.303,
}

#: Example 1's library: 4 books; Matrix Analysis has 5 descriptors, one of
#: which (Algebra) lies inside the Figure 1 fragment.  The other books'
#: descriptors fall elsewhere in the fragment.
BOOKS = {
    "isbn:matrix-analysis": Product(
        identifier="isbn:matrix-analysis",
        title="Matrix Analysis",
        # Five descriptors, as in the paper; only topics present in the
        # fragment can carry score.
        descriptors=frozenset(
            {"Algebra", "Applied", "Discrete", "Calculus", "Physics"}
        ),
    ),
    "isbn:fermats-enigma": Product(
        identifier="isbn:fermats-enigma",
        title="Fermat's Enigma",
        descriptors=frozenset({"Pure"}),
    ),
    "isbn:snow-crash": Product(
        identifier="isbn:snow-crash",
        title="Snow Crash",
        descriptors=frozenset({"Literature"}),
    ),
    "isbn:neuromancer": Product(
        identifier="isbn:neuromancer",
        title="Neuromancer",
        descriptors=frozenset({"Literature"}),
    ),
}


def main() -> None:
    taxonomy = figure1_fragment()
    print("Figure 1 fragment:")
    for topic in taxonomy:
        indent = "  " * taxonomy.depth(topic)
        print(f"  {indent}{taxonomy.label(topic)}")
    print()

    # The per-descriptor budget of Example 1: s / (4 books * 5 descriptors).
    budget = 1000.0 / (4 * 5)
    print(f"Per-descriptor budget: s/(4*5) = {budget}")
    print()
    scores = descriptor_score_path(taxonomy, "Algebra", budget)
    print(f"{'topic':<14}{'paper':>10}{'reproduced':>14}")
    for topic in ("Algebra", "Pure", "Mathematics", "Science", "Books"):
        print(f"{topic:<14}{PAPER_VALUES[topic]:>10.3f}{scores[topic]:>14.4f}")
    print()
    print(f"Path re-sums to the budget: {sum(scores.values()):.6f}")
    print()

    # The full profile of Example 1's user, via the public builder API.
    builder = TaxonomyProfileBuilder(taxonomy, total_score=1000.0)
    ratings = {identifier: 1.0 for identifier in BOOKS}
    profile = builder.build(ratings, BOOKS)
    print("Complete interest profile of the Example 1 user:")
    for topic, score in sorted(profile.items(), key=lambda kv: -kv[1]):
        print(f"  {topic:<14}{score:>10.3f}")
    print(f"  {'TOTAL':<14}{sum(profile.values()):>10.3f}  (= s)")


if __name__ == "__main__":
    main()
