#!/usr/bin/env python
"""Quickstart: the full §3 pipeline on a small synthetic community.

Generates a community (the stand-in for crawled All Consuming data),
builds the trust-aware taxonomy-driven recommender, and walks through the
pipeline stage by stage for one agent:

1. trust neighborhood formation (Appleseed),
2. taxonomy-profile similarity against each trusted peer,
3. rank synthesization,
4. product recommendations by weighted peer voting.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SemanticWebRecommender, quickstart_community


def main() -> None:
    dataset, taxonomy = quickstart_community(seed=7, agents=150, products=300)
    print("Community:", dataset.summary())
    print("Taxonomy:", taxonomy.branching_stats())
    print()

    recommender = SemanticWebRecommender.from_dataset(dataset, taxonomy)
    principal = sorted(dataset.agents)[0]
    print(f"Principal agent: {principal}")
    print(f"  rated products: {len(dataset.ratings_of(principal))}")
    print(f"  direct trust statements: {len(dataset.trust_of(principal))}")
    print()

    # Stage 1 — trust neighborhood (Appleseed ranks).
    neighborhood = recommender.neighborhood(principal)
    print(f"Stage 1 — trust neighborhood: {len(neighborhood)} peers")
    for peer, rank in neighborhood.top(5):
        print(f"  {peer}  rank={rank:.2f}")
    print()

    # Stage 2 — similarity over taxonomy profiles.
    similarities = recommender.similarities(principal, neighborhood.members())
    print("Stage 2 — profile similarity of the top trust peers:")
    for peer, _ in neighborhood.top(5):
        print(f"  {peer}  pearson={similarities[peer]:+.3f}")
    print()

    # Stage 3 — synthesized overall rank weights.
    weights = recommender.peer_weights(principal)
    print(f"Stage 3 — {len(weights)} peers carry positive overall weight")
    print()

    # Stage 4 — recommendations.
    print("Stage 4 — top-10 recommendations:")
    for item in recommender.recommend(principal, limit=10):
        title = dataset.products[item.product].title
        print(
            f"  {item.product}  ({title})  score={item.score:.3f}  "
            f"supporters={len(item.supporters)}"
        )


if __name__ == "__main__":
    main()
