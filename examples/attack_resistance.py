#!/usr/bin/env python
"""Security demo: sybil regions and profile-copy manipulation (§2, §3.2).

Part 1 — group trust metrics vs a sybil region: an adversary mints 50
fake identities, densely interconnects them, and lures a few honest
agents into vouching for them (attack edges).  Appleseed and Advogato
bound admission by the attack-edge cut; a scalar path metric lets the
whole region in.

Part 2 — profile-copy manipulation: sybils copy a victim's rating profile
verbatim (maximum similarity) and push attacker products.  Trust-blind CF
recommends the pushed products; the trust-filtered pipeline does not.

Run:  python examples/attack_resistance.py
"""

from __future__ import annotations

from repro import Advogato, Appleseed, TrustGraph, quickstart_community
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore, PureCFRecommender, SemanticWebRecommender
from repro.evaluation.attacks import inject_profile_copy_attack, inject_sybil_region
from repro.trust.scalar import multiplicative_path_trust, scalar_neighborhood


def sybil_region_demo(dataset) -> None:
    print("=" * 64)
    print("Part 1 — sybil region vs trust metrics")
    print("=" * 64)
    source = sorted(dataset.agents)[0]
    for bridges in (0, 2, 10):
        region = inject_sybil_region(dataset, n_sybils=50, n_bridges=bridges, seed=5)
        graph = TrustGraph.from_dataset(region.dataset)

        apple = Appleseed().compute(graph, source)
        top50 = {agent for agent, _ in apple.top(50)}
        apple_in = len(top50 & region.sybils)

        advogato = Advogato(target_size=50).compute(graph, source)
        advogato_in = len(advogato.accepted & region.sybils)

        scalar = multiplicative_path_trust(graph, source, max_depth=6)
        admitted = scalar_neighborhood(scalar, threshold=0.2)
        scalar_in = len(admitted & region.sybils)

        print(
            f"  bridges={bridges:>2}  "
            f"appleseed(top-50): {apple_in:>2} sybils   "
            f"advogato: {advogato_in:>2} sybils   "
            f"scalar-path: {scalar_in:>2} sybils"
        )
    print()


def manipulation_demo(dataset, taxonomy) -> None:
    print("=" * 64)
    print("Part 2 — profile-copy manipulation of recommendations")
    print("=" * 64)
    victim = max(sorted(dataset.agents), key=lambda a: len(dataset.ratings_of(a)))
    attack = inject_profile_copy_attack(
        dataset, victim=victim, n_sybils=30, n_pushed=3, seed=6
    )
    train = attack.dataset
    store = ProfileStore(train, TaxonomyProfileBuilder(taxonomy))

    trusted = SemanticWebRecommender(
        dataset=train,
        graph=TrustGraph.from_dataset(train),
        profiles=store,
    )
    blind = PureCFRecommender(dataset=train, profiles=store)

    print(f"  victim: {victim}")
    print(f"  pushed products: {sorted(attack.pushed_products)}")
    for name, recommender in (("trust-filtered", trusted), ("trust-blind CF", blind)):
        recs = [r.product for r in recommender.recommend(victim, limit=10)]
        pushed = [p for p in recs if p in attack.pushed_products]
        print(f"\n  {name} top-10:")
        for product in recs:
            marker = "  << PUSHED BY ATTACKER" if product in attack.pushed_products else ""
            print(f"    {product}{marker}")
        print(f"  contamination: {len(pushed)}/10")


def main() -> None:
    dataset, taxonomy = quickstart_community(seed=13, agents=150, products=300)
    sybil_region_demo(dataset)
    manipulation_demo(dataset, taxonomy)


if __name__ == "__main__":
    main()
