#!/usr/bin/env python
"""The All Consuming scenario: comparing methods on a book community.

Generates a community with the structural profile of the paper's §4.1
crawl (scaled down to 5% for a fast demo: ~455 agents, ~498 books,
implicit weblog-style ratings, Amazon-shaped taxonomy), withholds five
positive ratings per qualifying user, and compares every recommender in
the library on precision/recall/F1@10.

Run:  python examples/book_recommendations.py            (5% scale, ~1 min)
      python examples/book_recommendations.py --scale 0.2 (larger)
"""

from __future__ import annotations

import argparse

from repro.core.neighborhood import NeighborhoodFormation
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import (
    PopularityRecommender,
    ProfileStore,
    PureCFRecommender,
    RandomRecommender,
    SemanticWebRecommender,
    TrustOnlyRecommender,
)
from repro.datasets.allconsuming import generate_allconsuming
from repro.evaluation.protocol import Table, evaluate_recommender, holdout_split
from repro.trust.graph import TrustGraph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--top-n", type=int, default=10)
    parser.add_argument("--max-users", type=int, default=50)
    args = parser.parse_args()

    print(f"Generating All Consuming-style community at scale {args.scale} ...")
    community = generate_allconsuming(scale=args.scale, seed=args.seed)
    dataset = community.dataset
    print("  ", dataset.summary())
    print("  taxonomy:", community.taxonomy.branching_stats())

    split = holdout_split(
        dataset, per_user=5, min_ratings=12, max_users=args.max_users, seed=args.seed
    )
    print(f"\nEvaluating on {len(split.test_users)} held-out users ...")

    train = split.train
    store = ProfileStore(train, TaxonomyProfileBuilder(community.taxonomy))
    graph = TrustGraph.from_dataset(train)
    methods = [
        (
            "hybrid (trust+taxonomy)",
            SemanticWebRecommender(
                dataset=train,
                graph=graph,
                profiles=store,
                formation=NeighborhoodFormation(max_peers=40),
            ),
        ),
        (
            "pure CF (taxonomy)",
            PureCFRecommender(dataset=train, profiles=store),
        ),
        (
            "pure CF (product)",
            PureCFRecommender(dataset=train, representation="product"),
        ),
        ("trust only", TrustOnlyRecommender(dataset=train, graph=graph)),
        ("popularity", PopularityRecommender(dataset=train)),
        ("random", RandomRecommender(dataset=train)),
    ]

    table = Table(
        title=f"Recommendation quality (top-{args.top_n}, leave-5-out)",
        headers=["method", "users", "precision", "recall", "F1", "hit-rate"],
    )
    for name, recommender in methods:
        report = evaluate_recommender(name, recommender, split, top_n=args.top_n)
        table.add_row(*report.as_row())
        print(f"  done: {name}")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
