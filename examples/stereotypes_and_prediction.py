#!/usr/bin/env python
"""§6 future work, delivered: stereotypes and numeric rating prediction.

Part 1 — automated stereotype generation: spherical k-means over the
taxonomy profiles discovers interest stereotypes; we print each
stereotype's theme topics and check how well the discovered clusters
match the generator's planted interest clusters.

Part 2 — rating prediction: on an explicit-rating community, the
trust-aware peer weights drive a Resnick-style predictor; we compare its
MAE against pure-CF weights and the global mean.

Run:  python examples/stereotypes_and_prediction.py
"""

from __future__ import annotations

from repro.core.prediction import RatingPredictor
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore, SemanticWebRecommender
from repro.core.stereotypes import StereotypeRecommender
from repro.datasets.generators import CommunityConfig, generate_community
from repro.datasets.amazon import book_taxonomy_config
from repro.evaluation.experiments_ext import run_ex12_prediction, explicit_community
from repro.trust.graph import TrustGraph


def stereotype_demo() -> None:
    print("=" * 64)
    print("Part 1 — automated stereotype generation")
    print("=" * 64)
    community = generate_community(
        CommunityConfig(
            n_agents=250,
            n_products=500,
            n_clusters=6,
            seed=17,
            taxonomy=book_taxonomy_config(target_topics=500, seed=17),
        )
    )
    dataset = community.dataset
    store = ProfileStore(dataset, TaxonomyProfileBuilder(community.taxonomy))
    recommender = StereotypeRecommender.fit(dataset, store, k=6, seed=17)
    model = recommender.model
    print(f"fitted {len(model.stereotypes)} stereotypes "
          f"in {model.iterations} iterations (converged={model.converged})\n")
    for stereotype in model.stereotypes:
        theme = ", ".join(
            community.taxonomy.label(t) for t in stereotype.top_topics(3)
        )
        print(f"  stereotype {stereotype.index}: {len(stereotype.members):>3} members; "
              f"theme: {theme}")

    # Recovery of the planted clusters.
    membership = model.membership()
    groups: dict[int, list[str]] = {}
    for agent, label in membership.items():
        groups.setdefault(label, []).append(agent)
    correct = 0
    for members in groups.values():
        counts: dict[int, int] = {}
        for agent in members:
            truth = community.membership[agent]
            counts[truth] = counts.get(truth, 0) + 1
        correct += max(counts.values())
    print(f"\n  cluster purity vs planted interest clusters: "
          f"{correct / len(membership):.3f} (chance: {1/6:.3f})")

    agent = sorted(dataset.agents)[0]
    print(f"\n  stereotype recommendations for {agent}:")
    for item in recommender.recommend(agent, limit=5):
        print(f"    {item.product}  supporters={len(item.supporters)}")


def prediction_demo() -> None:
    print()
    print("=" * 64)
    print("Part 2 — numeric rating prediction (explicit ratings)")
    print("=" * 64)
    community = explicit_community(seed=23, n_agents=250)
    dataset = community.dataset

    # One concrete prediction, end to end.
    store = ProfileStore(dataset, TaxonomyProfileBuilder(community.taxonomy))
    recommender = SemanticWebRecommender(
        dataset=dataset,
        graph=TrustGraph.from_dataset(dataset),
        profiles=store,
    )
    predictor = RatingPredictor(dataset, recommender.peer_weights)
    agent = sorted(dataset.agents)[0]
    unrated = [p for p in sorted(dataset.products) if p not in dataset.ratings_of(agent)]
    predictions = predictor.predict_many(agent, unrated[:200])
    best = sorted(predictions.items(), key=lambda kv: -kv[1])[:5]
    print(f"\n  highest predicted ratings for {agent}:")
    for product, value in best:
        print(f"    {product}  predicted={value:+.3f}")

    print("\n  MAE comparison (EX12):")
    print(run_ex12_prediction(community).render())


def main() -> None:
    stereotype_demo()
    prediction_demo()


if __name__ == "__main__":
    main()
