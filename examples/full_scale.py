#!/usr/bin/env python
"""The §4.1 crawl at full published scale: 9,100 agents, 9,953 books.

Generates the All Consuming-scale community (with a 20,000-topic
Amazon-shaped book taxonomy), then times every stage of the pipeline on
it — the concrete form of the paper's scalability argument (§2): with
trust-bounded neighborhoods, one local recommendation stays sub-second
even at the full community size, where global all-pairs similarity would
be prohibitive.

Run:  python examples/full_scale.py          (~15 s total)
"""

from __future__ import annotations

import time

from repro.core.neighborhood import NeighborhoodFormation
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore, SemanticWebRecommender
from repro.datasets.allconsuming import generate_allconsuming
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph


def timed(label: str, func):
    start = time.perf_counter()
    result = func()
    print(f"  {label:<42} {time.perf_counter() - start:8.2f} s")
    return result


def main() -> None:
    print("Full published scale (§4.1: 9,100 users, 9,953 books, 20k topics)")
    print()
    community = timed(
        "generate community", lambda: generate_allconsuming(scale=1.0, seed=42)
    )
    dataset = community.dataset
    print(f"    agents={len(dataset.agents)}  products={len(dataset.products)}  "
          f"trust={len(dataset.trust)}  ratings={len(dataset.ratings)}")
    print(f"    taxonomy: {community.taxonomy.branching_stats()}")
    print()

    graph = timed("build trust graph", lambda: TrustGraph.from_dataset(dataset))
    store = ProfileStore(dataset, TaxonomyProfileBuilder(community.taxonomy))
    agent = sorted(dataset.agents)[0]

    appleseed = Appleseed(max_depth=3)
    result = timed(
        "appleseed (max_depth=3) for one agent",
        lambda: appleseed.compute(graph, agent),
    )
    print(f"    ranked {len(result.ranks)} peers in {result.iterations} iterations")

    timed(
        "taxonomy profile for one agent",
        lambda: store.profile(agent),
    )

    recommender = SemanticWebRecommender(
        dataset=dataset,
        graph=graph,
        profiles=store,
        formation=NeighborhoodFormation(metric=appleseed, max_peers=50),
    )
    recs = timed(
        "one full recommendation (cold caches)",
        lambda: recommender.recommend(agent, limit=10),
    )
    recs = timed(
        "one full recommendation (warm caches)",
        lambda: recommender.recommend(agent, limit=10),
    )
    print()
    print(f"top-10 recommendations for {agent}:")
    for item in recs:
        print(f"  {item.product}  score={item.score:.3f}  "
              f"supporters={len(item.supporters)}")


if __name__ == "__main__":
    main()
