#!/usr/bin/env python
"""The decentralized deployment scenario of §4, end to end.

* every agent publishes a machine-readable FOAF homepage (N-Triples) with
  trust statements and implicit book ratings,
* the shared taxonomy and product catalog are published as global
  documents,
* a crawler walks ``foaf:knows`` links from a seed agent under a fetch
  budget and assembles a *partial* local replica,
* the recommender computes locally from that replica,
* an agent updates its homepage asynchronously; a refresh pass picks the
  new version up and the recommendations change.

Run:  python examples/decentralized_crawl.py
"""

from __future__ import annotations

from repro import SemanticWebRecommender, quickstart_community
from repro.semweb.foaf import publish_agent
from repro.semweb.serializer import serialize_ntriples, serialize_turtle
from repro.semweb.namespace import FOAF, REPRO, TRUST
from repro.web.crawler import Crawler, publish_community
from repro.web.network import SimulatedWeb


def main() -> None:
    dataset, taxonomy = quickstart_community(seed=21, agents=120, products=250)
    web = SimulatedWeb()
    taxonomy_uri, catalog_uri = publish_community(web, dataset, taxonomy)
    print(f"Published {len(web)} documents onto the simulated Web")

    seed = sorted(dataset.agents)[0]
    homepage = publish_agent(
        dataset.agents[seed], dataset.trust_of(seed), dataset.ratings_of(seed)
    )
    print(f"\nThe seed agent's homepage ({seed}), as Turtle:")
    prefixes = {"foaf": str(FOAF), "trust": str(TRUST), "repro": str(REPRO)}
    print("\n".join(serialize_turtle(homepage, prefixes).splitlines()[:18]))
    print("  ...")

    # Crawl with a modest budget.
    crawler = Crawler(web=web)
    crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
    report = crawler.crawl([seed], budget=60)
    print(
        f"\nCrawl from seed: fetched={report.fetched} "
        f"discovered={report.discovered} budget_exhausted={report.budget_exhausted}"
    )

    partial, failures = crawler.store.assemble_dataset()
    local_taxonomy = crawler.store.assemble_taxonomy()
    print(f"Partial replica: {partial.summary()}  parse failures: {len(failures)}")

    recommender = SemanticWebRecommender.from_dataset(partial, local_taxonomy)
    before = recommender.recommend(seed, limit=5)
    print("\nRecommendations from the partial replica:")
    for item in before:
        print(f"  {item.product}  score={item.score:.3f}")

    # A trusted peer publishes new ratings — asynchronously.
    peer = next(iter(partial.trust_of(seed)))
    new_ratings = dict(dataset.ratings_of(peer))
    fresh_products = [p for p in sorted(dataset.products) if p not in new_ratings]
    for product in fresh_products[:5]:
        new_ratings[product] = 1.0
    web.stage_update(
        peer,
        serialize_ntriples(
            publish_agent(dataset.agents[peer], dataset.trust_of(peer), new_ratings)
        ),
    )
    print(f"\nPeer {peer} staged a homepage update (5 new ratings).")
    print(f"Refresh before delivery refetches: {crawler.refresh().fetched} docs")
    web.deliver()
    refreshed = crawler.refresh()
    print(f"Refresh after delivery refetches:  {refreshed.fetched} docs")

    partial2, _ = crawler.store.assemble_dataset()
    recommender2 = SemanticWebRecommender.from_dataset(partial2, local_taxonomy)
    after = recommender2.recommend(seed, limit=5)
    print("\nRecommendations after the refresh:")
    for item in after:
        print(f"  {item.product}  score={item.score:.3f}")
    changed = {i.product for i in after} != {i.product for i in before}
    print(f"\nRecommendation list changed: {changed}")


if __name__ == "__main__":
    main()
