#!/usr/bin/env python
"""CI guard: the whole-program lint pass must stay fast.

Runs the full ``repro lint`` invocation (per-file rules, reprograph,
effect inference, baseline) under a monotonic stopwatch and fails when
it exceeds the budget — the RL1xx/RL2xx fixpoints are bounded but a
regression to quadratic behaviour would show up here first, and a lint
gate nobody waits for is a lint gate nobody runs.

Exit codes: 0 within budget (lint exit 0/1 both count — findings are
CI's concern, speed is ours), 1 over budget, 2 when the lint itself
errors (exit 2) or arguments are malformed.

Usage:  python scripts/check_lint_runtime.py [--budget SECONDS] [PATH...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import build_parser, run_lint  # noqa: E402
from repro.obs import Stopwatch  # noqa: E402

DEFAULT_PATHS = ["src", "tests", "benchmarks", "examples"]
DEFAULT_BUDGET = 120.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET,
                        metavar="SECONDS", help="wall budget (monotonic)")
    parser.add_argument("--baseline", default=".reprolint-baseline.json")
    args = parser.parse_args(argv)
    paths = args.paths or DEFAULT_PATHS

    lint_args = build_parser().parse_args(
        [*paths, "--baseline", args.baseline, "--effects", "lint-runtime-effects.json"]
    )
    watch = Stopwatch().start()
    code = run_lint(lint_args)
    elapsed = watch.stop()

    if code == 2:
        print("lint-runtime: lint errored (exit 2)", file=sys.stderr)
        return 2
    verdict = "within" if elapsed <= args.budget else "OVER"
    print(
        f"lint-runtime: {elapsed:.1f}s for {' '.join(paths)} "
        f"({verdict} the {args.budget:.0f}s budget; lint exit {code})"
    )
    return 0 if elapsed <= args.budget else 1


if __name__ == "__main__":
    raise SystemExit(main())
