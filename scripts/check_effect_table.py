#!/usr/bin/env python
"""CI guard: validate a serialized reprolint effect table.

Fails (exit 1) when the table drifts from the committed schema
contract — wrong schema id, malformed shape, unsorted keys, atoms or
guard tokens, or entries outside the effect/guard vocabulary.  Since
``reprolint-effects/2`` each function maps to an object with an
``effects`` list (the atom vocabulary) and a ``guards`` list (the lock
tokens the function acquires).  The table is diffed across PRs to
catch purity and lock-discipline regressions, so its format must stay
stable.

Usage:  python scripts/check_effect_table.py reprolint-effects.json
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.effects import EFFECT_TABLE_SCHEMA  # noqa: E402

_SIMPLE_ATOMS = frozenset({"io", "clock", "rng", "spawns", "mutates:global"})
_MUTATES_RE = re.compile(r"^mutates:[A-Za-z_][\w.]*\.[A-Za-z_]\w*$")
_QUALNAME_RE = re.compile(r"^[A-Za-z_][\w.]*$")
_GUARD_RE = re.compile(r"^guard:(?:local:)?[A-Za-z_][\w.]*$")


def check(path: str) -> list[str]:
    problems: list[str] = []
    try:
        table = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]

    if not isinstance(table, dict):
        return ["top level must be an object"]
    if set(table) != {"schema", "functions"}:
        problems.append(f"top-level keys must be schema+functions, got {sorted(table)}")
    if table.get("schema") != EFFECT_TABLE_SCHEMA:
        problems.append(
            f"schema drift: expected {EFFECT_TABLE_SCHEMA!r}, "
            f"got {table.get('schema')!r}"
        )
    functions = table.get("functions")
    if not isinstance(functions, dict):
        return problems + ["'functions' must be an object"]

    names = list(functions)
    if names != sorted(names):
        problems.append("function names are not sorted")
    for name, entry in functions.items():
        if not _QUALNAME_RE.match(name):
            problems.append(f"malformed function name {name!r}")
        if not isinstance(entry, dict) or set(entry) != {"effects", "guards"}:
            problems.append(f"{name}: entry must be an object with effects+guards")
            continue
        atoms = entry["effects"]
        guards = entry["guards"]
        if not isinstance(atoms, list):
            problems.append(f"{name}: effects must be a list")
        else:
            if atoms != sorted(atoms):
                problems.append(f"{name}: effects are not sorted")
            for atom in atoms:
                if atom in _SIMPLE_ATOMS or _MUTATES_RE.match(str(atom)):
                    continue
                problems.append(f"{name}: unknown effect atom {atom!r}")
        if not isinstance(guards, list):
            problems.append(f"{name}: guards must be a list")
        else:
            if guards != sorted(guards):
                problems.append(f"{name}: guards are not sorted")
            for guard in guards:
                if not _GUARD_RE.match(str(guard)):
                    problems.append(f"{name}: malformed guard token {guard!r}")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    problems = check(argv[0])
    for problem in problems:
        print(f"effect-table: {problem}", file=sys.stderr)
    if problems:
        return 1
    table = json.loads(Path(argv[0]).read_text(encoding="utf-8"))
    print(
        f"effect-table: ok ({len(table['functions'])} functions, "
        f"schema {table['schema']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
