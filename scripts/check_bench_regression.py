#!/usr/bin/env python3
"""Gate: a fresh ``repro bench`` document vs. the committed trajectory.

Compares a candidate ``BENCH_scale.json`` (schema ``repro-bench/1``,
written only by :func:`repro.evaluation.benchtrack.write_bench` —
reprolint RL010) against a baseline document, phase by phase at every
community size both documents declare.

The comparison is noise-aware: phase ``wall_ms`` may grow by a relative
*threshold* (default +50%) plus an absolute floor (default 20 ms) before
it counts as a regression — shared CI runners jitter far more than a
quiet workstation, and tiny phases are all jitter.  What makes a failure
*actionable* is the attribution: every reported regression names the
phase's dominant span (the span name owning the most self time inside
that phase's subtree) in both candidate and baseline, so the number
points at a line of code.  For the full picture run::

    repro trace diff baseline-trace.jsonl candidate-trace.jsonl

Exit codes: 0 ok, 1 regression, 2 schema or usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.evaluation.benchtrack import PHASES, validate_bench  # noqa: E402


def _load(path: str) -> dict[str, Any] | None:
    """Parse + schema-check one document; ``None`` (and stderr) on failure."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"error: {path}: {error}", file=sys.stderr)
        return None
    errors = validate_bench(document)
    if errors:
        for problem in errors:
            print(f"invalid bench document {path}: {problem}", file=sys.stderr)
        return None
    return document


def _by_agents(document: dict[str, Any]) -> dict[int, dict[str, Any]]:
    return {entry["agents"]: entry["phases"] for entry in document["sizes"]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", nargs="?", default="BENCH_scale.json",
                        help="fresh repro-bench/1 document (default: ./BENCH_scale.json)")
    parser.add_argument("--baseline", default=str(REPO_ROOT / "BENCH_scale.json"),
                        metavar="FILE", help="committed trajectory to compare against")
    parser.add_argument("--schema-only", action="store_true",
                        help="validate the candidate's schema and exit")
    parser.add_argument("--threshold", type=float, default=0.5, metavar="REL",
                        help="relative growth allowed per phase (0.5 = +50%%)")
    parser.add_argument("--abs-floor-ms", type=float, default=20.0, metavar="MS",
                        help="absolute growth allowed on top of the threshold")
    args = parser.parse_args(argv)

    candidate = _load(args.candidate)
    if candidate is None:
        return 2
    if args.schema_only:
        sizes = ", ".join(str(entry["agents"]) for entry in candidate["sizes"])
        print(f"schema ok: {args.candidate} ({candidate['schema']}, sizes {sizes})")
        return 0
    baseline = _load(args.baseline)
    if baseline is None:
        return 2

    base_sizes = _by_agents(baseline)
    cand_sizes = _by_agents(candidate)
    shared = sorted(set(base_sizes) & set(cand_sizes))
    if not shared:
        print(
            "warning: no community size appears in both documents "
            f"(baseline {sorted(base_sizes)}, candidate {sorted(cand_sizes)}); "
            "nothing to gate"
        )
        return 0

    regressions = 0
    for agents in shared:
        for phase in PHASES:
            base = base_sizes[agents][phase]
            cand = cand_sizes[agents][phase]
            allowed = base["wall_ms"] * (1.0 + args.threshold) + args.abs_floor_ms
            ratio = (
                cand["wall_ms"] / base["wall_ms"] if base["wall_ms"] > 0 else float("inf")
            )
            if cand["wall_ms"] > allowed:
                regressions += 1
                print(
                    f"REGRESSION: {agents} agents, {phase}: "
                    f"{base['wall_ms']:.1f} ms -> {cand['wall_ms']:.1f} ms "
                    f"({ratio:.2f}x; allowed {allowed:.1f} ms)"
                )
                print(
                    f"  dominant span now: {cand['dominant_span']} "
                    f"(self {cand['dominant_self_ms']:.1f} ms); "
                    f"baseline dominant: {base['dominant_span']} "
                    f"(self {base['dominant_self_ms']:.1f} ms)"
                )
            else:
                note = ""
                if cand["dominant_span"] != base["dominant_span"]:
                    note = (
                        f"  [dominant span moved: {base['dominant_span']} -> "
                        f"{cand['dominant_span']}]"
                    )
                print(
                    f"ok: {agents} agents, {phase}: "
                    f"{base['wall_ms']:.1f} -> {cand['wall_ms']:.1f} ms "
                    f"({ratio:.2f}x){note}"
                )

    if regressions:
        print(
            f"\n{regressions} phase regression(s); rerun with --trace-out and "
            "`repro trace diff` for span-level attribution",
            file=sys.stderr,
        )
        return 1
    print(f"\nno regressions across {len(shared)} shared size(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
