#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from a full run of the experiment suite.

Runs EX1-EX18 on the default shared community (seeded, deterministic)
and writes the measured tables next to the paper's claims.  Commentary
text lives here; numbers come from the run.

Usage:  python scripts/generate_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.evaluation import experiments as ex
from repro.evaluation import experiments_chaos as ex_chaos
from repro.evaluation import experiments_ext as ex_ext
from repro.obs import Stopwatch

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of *Semantic Web Recommender Systems* (Ziegler, EDBT 2004).

The paper is a short framework paper: its evaluation section contains
**one figure** (the Figure 1 taxonomy fragment), **one worked example**
(Example 1's topic score assignment) and **zero numeric tables**.  EX1
reproduces the worked example exactly; EX2-EX11 operationalize every
quantitative claim the paper makes in §2/§3 (and the §6 future-work
questions) as measured tables; EX12-EX18 extend the study to numeric
prediction, stereotype generation, design ablations, weblog mining,
topic diversification, explicit distrust, and crawling under injected
Web faults.
See DESIGN.md §5 for the experiment index and the substitution ledger.

All numbers below come from one deterministic run of
`scripts/generate_experiments_md.py` (seeded generators; the EX8/EX11
timings vary with the host but their *shape* is the reproduced claim).
Every table can be regenerated individually via its bench target:
`pytest benchmarks/bench_ex<NN>_*.py --benchmark-only -s`.

"""

SECTIONS = [
    (
        "EX1 — Example 1: taxonomy-based topic score assignment",
        "run_ex01_example1",
        """**Paper source:** Figure 1 + Example 1 (§3.3).  The paper reports
scores 29.087 / 14.543 / 4.848 / 1.212 / 0.303 for Algebra / Pure /
Mathematics / Science / Books, given `s = 1000`, 4 rated books, and 5
descriptors on *Matrix Analysis* (per-descriptor budget 50).

**Verdict: reproduced.**  With the sibling counts visible in Figure 1
(Algebra 1, Pure 2, Mathematics 3, Science 3) the exact Eq. 3 solution is
29.0909 / 14.5454 / 4.8484 / 1.2121 / 0.30303 — identical to the paper's
figures to three significant digits; the residual ≤0.004 difference is
the paper's rounding.""",
    ),
    (
        "EX2 — trust and interest profiles correlate",
        "run_ex02_trust_similarity",
        """**Paper claim (§3.2, ref [5]):** "trust and interest profiles tend to
correlate", justifying trust as a similarity surrogate and pre-filter.

**Expected shape:** direct-trust pairs more similar than 2-hop pairs,
both more similar than random pairs.

**Verdict: shape reproduced.**  Both Pearson and cosine order the pair
classes direct > 2-hop > random with clear separation.  (Union-domain
Pearson over sparse non-negative profiles is negatively offset as a
whole; the ordering, not the absolute level, is the claim.)""",
    ),
    (
        "EX3 — Appleseed convergence and neighborhood size",
        "run_ex03_appleseed_convergence",
        """**Paper claim (§3.2, ref [12]):** Appleseed converges and "allows the
neighborhood detection process to retain scalability", with the
spreading factor and convergence threshold controlling the trade-off.

**Expected shape:** higher spreading factor d and tighter threshold T_c
cost more iterations and rank more peers; low d concentrates rank near
the source.

**Verdict: shape reproduced.**  Iterations grow monotonically with d and
with tighter T_c; the ranked neighborhood grows with d (73 peers at
d=0.5 vs ~220 at d=0.95 on a 400-agent community).""",
    ),
    (
        "EX4 — attack resistance of group trust metrics",
        "run_ex04_attack_resistance",
        """**Paper claim (§2, §3.2):** decentralized systems cannot prevent
identity forging; trust metrics make agents "less vulnerable to others".
Advogato's defining property (ref [11]) is that sybil admission is
bounded by the attack-edge cut, and Appleseed inherits a similar bound
from bounded energy injection.

**Expected shape:** with 0 attack edges no metric admits sybils; as
attack edges grow, the scalar path metric admits the region wholesale
while Appleseed (top-K) and Advogato admit ≈0.

**Verdict: shape reproduced.**  The scalar-path baseline degrades with
every added bridge; the two group metrics admit no sybils into the
top-K / certified set across the whole sweep.""",
    ),
    (
        "EX5 — the low-profile-overlap problem and the taxonomy fix",
        "run_ex05_profile_overlap",
        """**Paper claim (§2, §3.3):** raw product vectors barely overlap ("the
probability that two persons have read several same books becomes
considerably low"); flat category vectors lose inter-category
relationships; taxonomy propagation "may establish high user similarity
for users which have not even rated one single product in common".

**Expected shape:** fraction of agent pairs with non-zero overlap:
product vectors < flat categories < taxonomy profiles (→ ~1.0).

**Verdict: shape reproduced.**  Taxonomy propagation lifts pairwise
overlap to 100% of sampled pairs while raw product vectors overlap in a
small minority of pairs.""",
    ),
    (
        "EX6 — recommendation quality across methods",
        "run_ex06_recommendation_quality",
        """**Paper claim (§3):** the combined trust + taxonomy pipeline produces
useful recommendations while computing only over a bounded trust
neighborhood (the paper itself reports no quality numbers).

**Expected shape:** all personalized methods beat popularity and random;
the hybrid is competitive with global pure CF despite seeing only the
trust neighborhood.

**Verdict: shape reproduced.**  The hybrid matches or exceeds global
taxonomy-CF and clearly beats the non-personalized floors; trust-only
(no similarity computation at all) already carries most of the signal,
which is itself the paper's trust-as-similarity-surrogate claim.""",
    ),
    (
        "EX7 — robustness to profile-copy manipulation",
        "run_ex07_manipulation",
        """**Paper claim (§3.2):** "collaborative filtering tends to be highly
susceptive to manipulation.  For instance, malicious agents can
accomplish high similarity by simply copying its profile"; trust makes
agents "less vulnerable".

**Expected shape:** attacker-pushed items contaminate trust-blind CF's
top-10 and are absent from the trust-filtered pipeline's top-10,
independent of the number of sybils.

**Verdict: shape reproduced.**  Trust-blind CF recommends every pushed
product (contamination 0.3 = 3 pushed items in the top 10) while the
trust-filtered pipeline recommends none — sybils receive no trust edges
from honest agents, so they never enter the voting set.""",
    ),
    (
        "EX8 — scalability: bounded neighborhoods vs global CF",
        "run_ex08_scalability",
        """**Paper claim (§2):** "computing similarity measures for all these
individuals becomes infeasible.  Scalability can only be ensured when
restricting computations to sufficiently narrow neighborhoods."

**Expected shape:** global CF latency grows with community size; the
trust-bounded pipeline's cost tracks neighborhood size, so the
CF/hybrid cost ratio grows with |A| and crosses 1 at moderate scale.

**Verdict: shape reproduced.**  The ratio grows monotonically with
community size and global CF overtakes the hybrid's fixed overhead
between 400 and 800 agents on this host.  Absolute milliseconds are
host-specific; the crossover is the claim.""",
    ),
    (
        "EX9 — taxonomy structure impact (books vs DVDs)",
        "run_ex09_taxonomy_structure",
        """**Paper source (§6, future work):** "Amazon's taxonomy for DVD
classification contains more topics than its book counterpart, though
being less deep.  We would like to better understand the impact that
taxonomy structure may have upon profile generation and similarity
computation."

**Expected shape:** the generated book-like taxonomy is deeper and
narrower than the DVD-like one; both support near-universal profile
overlap and working recommendations, with quality differing moderately.

**Verdict: study delivered** (the paper poses the question without an
answer).  Measured here: the broad-shallow taxonomy yields slightly
higher F1 at equal catalogue size — shallower paths concentrate score
mass in fewer, more discriminative coordinates.""",
    ),
    (
        "EX10 — rank synthesization strategies",
        "run_ex10_synthesis",
        """**Paper source (§3.4, future work):** "One must now merge trust rank
and similarity rank into one single measure … We have not attacked
latter issue yet."  The paper proposes peer voting weighted by overall
rank.

**Expected shape:** the proposed alternatives are all viable; trust-
leaning blends should not collapse (trust correlates with similarity).

**Verdict: study delivered.**  All §3.4 candidates produce useful
recommendations; similarity-leaning linear blends and the multiplicative
interaction lead, position-based Borda trails (it discards magnitude
information).""",
    ),
    (
        "EX11 — crawler coverage, staleness, and local computability",
        "run_ex11_crawler",
        """**Paper source (§2, §4.1):** recommendations are computed locally from
crawled replicas; "tailored crawlers search the Web for weblogs and
ensure data freshness"; communication is asynchronous document
publishing.

**Expected shape:** recommendation agreement with a full-knowledge
reference rises with the crawl budget and saturates well below 100%
coverage, because the trust neighborhood is local.

**Verdict: shape reproduced.**  A crawl covering ~10% of the community
already reproduces most of the reference top-10; a full crawl reproduces
it exactly.  Added finding: a path-trust-first frontier is *not* better
than BFS here, because Appleseed's backward edges make rank decay with
hop distance — which BFS matches.""",
    ),
    (
        "EX12 — numeric rating prediction (extended)",
        "run_ex12_prediction",
        """**Paper hook:** the information model (§3.1) supports graded explicit
ratings in [-1, +1]; the classic CF task over them is value prediction.

**Expected shape:** Resnick-style prediction with trust-aware peer
weights beats the global-mean baseline, with high coverage; pure-CF
weights perform similarly but cover fewer pairs at equal neighborhood
size.

**Verdict: shape reproduced.**""",
    ),
    (
        "EX13 — automated stereotype generation (§6, extended)",
        "run_ex13_stereotypes",
        """**Paper hook (§6):** "applicability of taxonomy-based profile
generation for automated stereotype generation and efficient behavior
modelling".

**Expected shape:** spherical k-means over taxonomy profiles recovers
the generator's planted interest clusters far above chance, and the
k-comparison stereotype recommender is a usable cheap approximation of
the full pipeline.

**Verdict: study delivered** (purity ≈0.84 vs chance 0.125).""",
    ),
    (
        "EX14 — design-decision ablations (extended)",
        "run_ex14_ablations",
        """**Paper hook:** the ♦-marked design decisions of DESIGN.md §4.

**Expected shapes:** Appleseed's backward edges concentrate rank near
the source (smaller rank-weighted hop distance); nonlinear edge
normalization concentrates rank on strong edges; Eq. 3's decisive edge
over flat categories is *overlap* (EX5), with top-N quality comparable
on this synthetic data; uniform vs rating-weighted splits coincide on
implicit data by construction.

**Verdict: shapes reproduced** (including the honest null result on
Eq. 3 vs flat top-N quality at this scale).""",
    ),
    (
        "EX15 — weblog mining round trip (§4, extended)",
        "run_ex15_weblog_mining",
        """**Paper hook (§4):** hyperlinks from weblogs to catalog product pages
"count as implicit votes"; BLAM!-style annotations add explicit
machine-readable ratings; ISBN mappings connect URLs to identifiers.

**Expected shape:** the mining pipeline is lossless for this channel —
every published rating is recovered and recommendations from the mined
dataset equal the reference.

**Verdict: shape reproduced (exact round trip).**""",
    ),
    (
        "EX16 — topic diversification trade-off (§3.4, extended)",
        "run_ex16_diversification",
        """**Paper hook (§3.4):** "one might propose agent a_i products from
categories that a_i has left untouched until present … incentive for
trying new product groups becomes created."  The soft version of that
idea is topic diversification by greedy rank-merge under a
diversification factor Θ.

**Expected shape:** intra-list similarity falls monotonically with Θ
while precision degrades gradually — the classic diversification
trade-off curve.

**Verdict: shape reproduced.**""",
    ),
    (
        "EX17 — explicit distrust statements (§3.1, extended)",
        "run_ex17_distrust",
        """**Paper hook:** §3.1 defines trust on [-1, +1] with "negative values
to express distrust", and stresses values near zero "indicate absence of
trust, not to be confused with explicit distrust"; the Appleseed paper
(§3.2, ref [12]) sketches non-transitive distrust handling.

**Expected shape:** rogue agents who fooled part of the community gain
positive rank when distrust is ignored; one-step distrust discounting
strictly reduces their rank share and top-50 presence.

**Verdict: shape reproduced** (discounting drives the rogues' share to
zero on the default community).""",
    ),
    (
        "EX18 — chaos: recommendation quality vs fault rate (§2, §4.1, extended)",
        "run_ex18_chaos",
        """**Paper hook:** the deployment model assumes an unreliable medium —
agents "publish or update documents" on remote hosts (§2) and "tailored
crawlers … ensure data freshness" (§4.1), which presumes fetches that
can time out, sites that can go down, and files that arrive torn.

**Expected shape:** with retries, circuit breakers, and stale-replica
fallback enabled, replica coverage and top-N agreement with the
fault-free reference degrade gracefully (no crash, no collapse) as the
injected fault rate climbs to 0.5.

**Verdict: study delivered.**  Coverage and overlap decline smoothly
with the fault rate while the resilience counters (retries, degraded
replicas, quarantined downloads) account for every masked failure.""",
    ),
]


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    total = Stopwatch()
    total.start()
    community = ex.default_community()
    parts = [HEADER]
    standalone = {
        "run_ex01_example1",
        "run_ex08_scalability",
        "run_ex09_taxonomy_structure",
        "run_ex12_prediction",  # needs an explicit-rating community
    }
    for title, func_name, commentary in SECTIONS:
        func = (
            getattr(ex, func_name, None)
            or getattr(ex_ext, func_name, None)
            or getattr(ex_chaos, func_name)
        )
        watch = Stopwatch()
        with watch:
            if func_name in standalone:
                table = func()
            else:
                table = func(community)
        print(f"{func_name}: {watch.elapsed:.1f}s")
        parts.append(f"## {title}\n")
        parts.append(commentary + "\n")
        parts.append("```\n" + table.render() + "\n```\n")
    parts.append(
        f"\n*Generated in {total.elapsed:.0f}s by "
        "`python scripts/generate_experiments_md.py`.*\n"
    )
    output.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
