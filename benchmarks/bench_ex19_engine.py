"""EX19 — similarity engine speedup: python oracle vs numpy kernels.

Regenerates the engine-comparison table, asserts the acceptance bounds
(≥5× speedup at the largest size, engines agreeing within 1e-9), and
writes ``BENCH_ex19_engine.json`` next to the repo root so the speedup
number is tracked per run.

Set ``EX19_SMOKE=1`` to run tiny sizes with the speedup assertion
relaxed — CI smoke mode on shared runners records the number without
gating on scheduler noise.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest
from _util import report

pytest.importorskip("numpy")

from repro.evaluation.experiments_perf import run_ex19_engine

SMOKE = os.environ.get("EX19_SMOKE") == "1"
SIZES = (60, 120) if SMOKE else (100, 200, 400)
PRINCIPALS = 5 if SMOKE else 20
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_ex19_engine.json"


def test_ex19_engine(benchmark):
    table = benchmark.pedantic(
        lambda: run_ex19_engine(sizes=SIZES, principals=PRINCIPALS),
        rounds=1,
        iterations=1,
    )
    report(table)

    records = []
    for row in table.rows:
        agents, topics, python_ms, numpy_ms, speedup, max_delta = row
        records.append(
            {
                "agents": int(agents),
                "topics": int(topics),
                "python_ms": float(python_ms),
                "numpy_ms": float(numpy_ms),
                "speedup": float(speedup.rstrip("x")),
                "max_delta": float(max_delta),
            }
        )
    OUTPUT.write_text(  # reprolint: disable=RL010  (predates repro-bench/1)
        json.dumps(
            {"smoke": SMOKE, "principals": PRINCIPALS, "sizes": records}, indent=2
        )
        + "\n"
    )

    # Numeric agreement is non-negotiable in any mode.
    assert all(r["max_delta"] < 1e-9 for r in records)
    # The speedup gate runs at full size only: smoke sizes sit near the
    # packing-cost break-even and shared CI runners add noise.
    if not SMOKE:
        assert records[-1]["speedup"] >= 5.0
