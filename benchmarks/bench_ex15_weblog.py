"""EX15 — weblog mining round trip (§4).

Regenerates the weblog-mining table and asserts the implicit-vote channel
is lossless: hyperlink mining recovers every rating and the mined dataset
reproduces the reference recommendations exactly.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments_ext import run_ex15_weblog_mining


def test_ex15_weblog_mining(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex15_weblog_mining(community), rounds=1, iterations=1
    )
    report(table)
    rows = {row[0]: row[1] for row in table.rows}
    recovered, expected = rows["ratings recovered"].split("/")
    assert recovered == expected
    assert float(rows["rec overlap@10 vs reference"]) == 1.0
