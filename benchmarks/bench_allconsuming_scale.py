"""Published-scale feasibility: the §4.1 community at full size.

The paper's crawl: ~9,100 users, 9,953 books, Amazon's >20,000-topic
taxonomy.  These benches generate that community at full scale and time
the pipeline's stages on it, demonstrating that the reproduction handles
the published scale on a laptop (the scalability claim of §2 made
concrete).
"""

from __future__ import annotations

import pytest

from repro.core.neighborhood import NeighborhoodFormation
from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore, SemanticWebRecommender
from repro.datasets.allconsuming import (
    ALLCONSUMING_AGENTS,
    ALLCONSUMING_BOOKS,
    generate_allconsuming,
)
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph


@pytest.fixture(scope="module")
def full_scale():
    community = generate_allconsuming(scale=1.0, seed=42)
    assert len(community.dataset.agents) == ALLCONSUMING_AGENTS
    assert len(community.dataset.products) == ALLCONSUMING_BOOKS
    assert len(community.taxonomy) == 20_000
    return community


@pytest.fixture(scope="module")
def full_graph(full_scale):
    return TrustGraph.from_dataset(full_scale.dataset)


def test_bench_generation_full_scale(benchmark):
    community = benchmark.pedantic(
        lambda: generate_allconsuming(scale=1.0, seed=7), rounds=1, iterations=1
    )
    assert len(community.dataset.agents) == ALLCONSUMING_AGENTS


def test_bench_appleseed_full_scale(benchmark, full_scale, full_graph):
    source = sorted(full_scale.dataset.agents)[0]
    result = benchmark.pedantic(
        lambda: Appleseed(max_depth=3).compute(full_graph, source),
        rounds=1,
        iterations=1,
    )
    assert result.converged
    assert len(result.ranks) > 10


def test_bench_recommendation_full_scale(benchmark, full_scale, full_graph):
    dataset = full_scale.dataset
    store = ProfileStore(dataset, TaxonomyProfileBuilder(full_scale.taxonomy))
    recommender = SemanticWebRecommender(
        dataset=dataset,
        graph=full_graph,
        profiles=store,
        formation=NeighborhoodFormation(metric=Appleseed(max_depth=3), max_peers=50),
    )
    agent = sorted(dataset.agents)[0]
    recs = benchmark.pedantic(
        lambda: recommender.recommend(agent, limit=10), rounds=1, iterations=1
    )
    assert len(recs) == 10
