"""EX23 — interest drift: smooth-degradation gate on hybrid accuracy.

Regenerates the drift sweep and asserts the acceptance bound: hybrid
precision@N declines within tolerance as the drift rate rises — the
taxonomy profiles absorb cluster migration gradually rather than
collapsing — and the drifted count grows with the rate.

Set ``EX2x_SMOKE=1`` for tiny sizes with a relaxed tolerance.
"""

from __future__ import annotations

import os

from _util import report

from repro.evaluation.scenarios import run_ex23_drift, smooth_degradation

SMOKE = os.environ.get("EX2x_SMOKE") == "1"
TOLERANCE = 0.05 if SMOKE else 0.02


def test_ex23_drift(benchmark):
    table = benchmark.pedantic(run_ex23_drift, rounds=1, iterations=1)
    report(table)

    hybrid = [float(row[3]) for row in table.rows]
    drifted = [int(row[2]) for row in table.rows]
    assert smooth_degradation(hybrid, tolerance=TOLERANCE)
    assert drifted == sorted(drifted), "drifted count must grow with the rate"
