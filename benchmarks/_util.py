"""Reporting helper shared by the table benches."""

from __future__ import annotations


def report(table) -> None:
    """Print an experiment table through pytest's captured stdout."""
    print()
    print(table.render())
