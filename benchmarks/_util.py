"""Reporting and timing helpers shared by the table benches.

All wall-clock measurement here goes through
:class:`repro.obs.Stopwatch` — the repo's single monotonic-timing
helper (``time.time()`` for durations is banned by reprolint RL007).
"""

from __future__ import annotations

from repro.obs import Stopwatch


def report(table) -> None:
    """Print an experiment table through pytest's captured stdout."""
    print()
    print(table.render())


def timed_report(func, *args, **kwargs):
    """Run a table-producing *func*, print the table and its wall time.

    For bench helpers that want a one-shot duration outside
    pytest-benchmark's statistical loop (e.g. smoke invocations).
    Returns the table.
    """
    result, seconds = Stopwatch.time_call(func, *args, **kwargs)
    report(result)
    print(f"({func.__name__}: {seconds * 1000.0:.1f} ms)")
    return result
