"""Micro-benchmarks of the library's hot primitives.

Not tied to a paper table; these quantify the cost of each pipeline
stage in isolation (Appleseed run, Advogato run, profile construction,
similarity computation, end-to-end recommendation, N-Triples round-trip)
so regressions in any stage are visible independently of the experiment
suite.
"""

from __future__ import annotations

import pytest

from repro.core.profiles import TaxonomyProfileBuilder
from repro.core.recommender import ProfileStore, SemanticWebRecommender
from repro.core.similarity import cosine, pearson
from repro.semweb.foaf import publish_agent
from repro.semweb.serializer import parse_ntriples, serialize_ntriples
from repro.trust.advogato import Advogato
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph


@pytest.fixture(scope="module")
def graph(community):
    return TrustGraph.from_dataset(community.dataset)


@pytest.fixture(scope="module")
def source(community):
    return sorted(community.dataset.agents)[0]


@pytest.fixture(scope="module")
def store(community):
    store = ProfileStore(
        community.dataset, TaxonomyProfileBuilder(community.taxonomy)
    )
    for agent in community.dataset.agents:
        store.profile(agent)  # warm every profile once
    return store


def test_bench_appleseed(benchmark, graph, source):
    result = benchmark(lambda: Appleseed().compute(graph, source))
    assert result.converged


def test_bench_advogato(benchmark, graph, source):
    result = benchmark(lambda: Advogato(target_size=50).compute(graph, source))
    assert result.accepts(source)


def test_bench_profile_build(benchmark, community):
    builder = TaxonomyProfileBuilder(community.taxonomy)
    agent = max(
        community.dataset.agents,
        key=lambda a: len(community.dataset.ratings_of(a)),
    )
    ratings = community.dataset.ratings_of(agent)
    profile = benchmark(lambda: builder.build(ratings, community.dataset.products))
    assert profile


def test_bench_pearson_similarity(benchmark, community, store):
    agents = sorted(community.dataset.agents)[:2]
    left, right = store.profile(agents[0]), store.profile(agents[1])
    value = benchmark(lambda: pearson(left, right))
    assert -1.0 <= value <= 1.0


def test_bench_cosine_similarity(benchmark, community, store):
    agents = sorted(community.dataset.agents)[:2]
    left, right = store.profile(agents[0]), store.profile(agents[1])
    value = benchmark(lambda: cosine(left, right))
    assert -1.0 <= value <= 1.0


def test_bench_recommend_end_to_end(benchmark, community, graph, store, source):
    recommender = SemanticWebRecommender(
        dataset=community.dataset, graph=graph, profiles=store
    )
    recs = benchmark(lambda: recommender.recommend(source, limit=10))
    assert recs


def test_bench_ntriples_roundtrip(benchmark, community, source):
    dataset = community.dataset
    graph = publish_agent(
        dataset.agents[source], dataset.trust_of(source), dataset.ratings_of(source)
    )
    text = serialize_ntriples(graph)

    def roundtrip():
        return parse_ntriples(serialize_ntriples(parse_ntriples(text)))

    result = benchmark(roundtrip)
    assert len(result) == len(graph)
