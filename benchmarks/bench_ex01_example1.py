"""EX1 — Figure 1 / Example 1: topic score assignment.

Regenerates the paper's only worked numeric artifact and asserts the
reproduced values match the printed ones to three significant digits.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import PAPER_EXAMPLE1, run_ex01_example1


def bench_table():
    return run_ex01_example1()


def test_ex01_example1(benchmark):
    table = benchmark(bench_table)
    report(table)
    for topic, paper_value, reproduced, _ in (tuple(r) for r in table.rows):
        assert abs(float(reproduced) - PAPER_EXAMPLE1[topic]) < 0.005
