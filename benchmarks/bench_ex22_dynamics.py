"""EX22 — evolving sybil attack: admission/contamination trajectory.

Regenerates the evolving-attack sweep, asserts the acceptance bounds,
and writes ``BENCH_ex22_dynamics.json`` next to the repo root so the
admission trajectory is tracked per run:

* with 0 bridges the hybrid admits no sybils and pushes nothing;
* Appleseed admission grows smoothly (never drops by more than the
  tolerance) as the bridge budget rises;
* hybrid contamination never exceeds trust-blind CF's;
* honest-user hybrid precision@N degrades smoothly, no collapse.

Set ``EX2x_SMOKE=1`` (shared by the EX20–EX23 scenario suite) for tiny
sizes with a relaxed tolerance.
"""

from __future__ import annotations

import json
import os
import pathlib

from _util import report

from repro.evaluation.scenarios import run_ex22_evolving_sybil, smooth_degradation

SMOKE = os.environ.get("EX2x_SMOKE") == "1"
TOLERANCE = 0.05 if SMOKE else 0.02
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_ex22_dynamics.json"


def test_ex22_dynamics(benchmark):
    table = benchmark.pedantic(run_ex22_evolving_sybil, rounds=1, iterations=1)
    report(table)

    records = []
    for row in table.rows:
        bridges, sybils, bridge_total, admitted, hybrid_cont, cf_cont, hybrid_p = row
        records.append(
            {
                "bridges_per_epoch": int(bridges),
                "sybils": int(sybils),
                "bridges": int(bridge_total),
                "appleseed_admission": float(admitted),
                "hybrid_contamination": float(hybrid_cont),
                "cf_contamination": float(cf_cont),
                "hybrid_precision": float(hybrid_p),
            }
        )
    OUTPUT.write_text(  # reprolint: disable=RL010  (predates repro-bench/1)
        json.dumps({"smoke": SMOKE, "trajectory": records}, indent=2) + "\n"
    )

    # Zero bridges: the trust graph never reaches the ring.
    assert records[0]["bridges_per_epoch"] == 0
    assert records[0]["appleseed_admission"] == 0.0
    assert records[0]["hybrid_contamination"] == 0.0
    # Admission grows smoothly with the bridge budget.
    admission = [r["appleseed_admission"] for r in records]
    assert all(b >= a - TOLERANCE for a, b in zip(admission, admission[1:]))
    # The trust-aware hybrid is never more contaminated than blind CF.
    assert all(
        r["hybrid_contamination"] <= r["cf_contamination"] + 1e-9 for r in records
    )
    # Honest-user accuracy degrades smoothly, no collapse.
    assert smooth_degradation(
        [r["hybrid_precision"] for r in records], tolerance=TOLERANCE
    )
