"""EX9 — taxonomy structure impact: books vs DVDs (§6 future work).

Regenerates the deep-narrow vs broad-shallow comparison and asserts the
structural facts (book deeper, DVD broader) hold in the generated data.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex09_taxonomy_structure


def test_ex09_taxonomy_structure(benchmark):
    table = benchmark.pedantic(
        lambda: run_ex09_taxonomy_structure(), rounds=1, iterations=1
    )
    report(table)
    book, dvd = table.rows
    assert int(book[2]) > int(dvd[2])
    assert float(dvd[3]) > float(book[3])
    assert float(book[5]) > 0.0
    assert float(dvd[5]) > 0.0
