"""EX4 — attack resistance: Appleseed vs Advogato vs scalar-path (§3.2).

Regenerates the sybil-admission table and asserts that group metrics
bound admission by the attack-edge cut while the scalar metric degrades.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex04_attack_resistance


def test_ex04_attack_resistance(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex04_attack_resistance(community), rounds=1, iterations=1
    )
    report(table)
    zero = table.rows[0]
    worst = table.rows[-1]
    assert float(zero[1]) == 0.0
    assert float(zero[2]) == 0.0
    assert float(zero[3].split()[0]) == 0.0
    assert float(zero[4].split()[0]) == 0.0
    scalar_frac = float(worst[4].split()[0])
    assert scalar_frac > float(worst[1])  # vs appleseed
    assert scalar_frac > float(worst[2])  # vs pagerank
    assert scalar_frac > float(worst[3].split()[0])  # vs advogato
