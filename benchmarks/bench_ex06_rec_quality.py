"""EX6 — recommendation quality across methods (§3 overall).

Regenerates the leave-5-out precision/recall/F1@10 comparison and asserts
that every personalized method beats popularity and random.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex06_recommendation_quality


def test_ex06_recommendation_quality(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex06_recommendation_quality(community), rounds=1, iterations=1
    )
    report(table)
    f1 = {row[0]: float(row[4]) for row in table.rows}
    assert f1["hybrid (trust+taxonomy)"] > f1["popularity"]
    assert f1["hybrid (trust+taxonomy)"] > f1["random"]
    assert f1["pure CF (taxonomy)"] > f1["random"]
    assert f1["trust only"] > f1["random"]
