"""EX10 — rank synthesization alternatives (§3.4 future work, made concrete).

Regenerates the strategy comparison and asserts that every strategy
produces a valid table row and at least one strategy beats trust-only
blending (γ=0.75 ≈ trust-dominated).
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex10_synthesis


def test_ex10_synthesis(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex10_synthesis(community), rounds=1, iterations=1
    )
    report(table)
    f1 = {row[0]: float(row[4]) for row in table.rows}
    assert len(f1) == 6
    assert all(0.0 <= v <= 1.0 for v in f1.values())
    best = max(f1.values())
    assert best > 0.0
