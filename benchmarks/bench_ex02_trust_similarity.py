"""EX2 — trust/interest correlation (§3.2, ref [5]).

Regenerates the similarity-by-trust-distance table and asserts the
paper's claimed ordering: direct trust > 2-hop > random.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex02_trust_similarity


def test_ex02_trust_similarity(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex02_trust_similarity(community), rounds=1, iterations=1
    )
    report(table)
    by_class = {row[0]: row for row in table.rows}
    direct = float(by_class["direct trust (1 hop)"][2])
    two_hop = float(by_class["2-hop trust"][2])
    randomized = float(by_class["random"][2])
    assert direct > two_hop > randomized
