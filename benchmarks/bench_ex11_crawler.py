"""EX11 — crawl budget vs replica coverage and rec agreement (§2, §4).

Regenerates the crawl-budget table and asserts the claimed shape:
agreement with the full-knowledge reference rises with the budget and a
full crawl reproduces the reference exactly.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex11_crawler


def test_ex11_crawler(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex11_crawler(community), rounds=1, iterations=1
    )
    report(table)
    coverage = [int(row[2]) for row in table.rows]
    assert coverage == sorted(coverage)
    assert float(table.rows[-1][3]) == 1.0
