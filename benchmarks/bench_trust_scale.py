"""Trust-propagation scaling: Appleseed from 10^3 to 10^6 agents.

Measures the packed-CSR numpy engine (:mod:`repro.trust.engine`) on
generator-streamed webs of trust (:func:`stream_trust_edges`) far past
what the dict oracle can traverse interactively, and writes the
trajectory to ``BENCH_trust_scale.json``:

* pack time — streaming :meth:`TrustMatrix.from_edges` over the edge
  generator (no :class:`TrustGraph` materialized at any size);
* per-source Appleseed sweep time for the numpy kernel, and for the
  python oracle at the sizes where it finishes promptly (≤10^4);
* oracle parity (max |Δrank| and discrete-output equality) wherever
  both engines run.

Acceptance, asserted here in full mode: the numpy engine is ≥10× the
oracle at 10^4 agents, and the 10^6-agent sweep completes.  Set
``TRUST_SMOKE=1`` for the CI job: 10^3 agents only, parity plus
serial-vs-sharded determinism checked, the speedup merely recorded
(shared runners sit near break-even and add scheduler noise).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest
from _util import report  # noqa: F401  (shared harness idiom)

pytest.importorskip("numpy")

from repro.datasets.generators import stream_trust_edges
from repro.obs import Stopwatch
from repro.perf.trustmatrix import TrustMatrix
from repro.trust.appleseed import Appleseed
from repro.trust.engine import appleseed_on_matrix, rank_many
from repro.trust.graph import TrustGraph

SMOKE = os.environ.get("TRUST_SMOKE") == "1"
SIZES = (1_000,) if SMOKE else (1_000, 10_000, 100_000, 1_000_000)
#: Largest size the dict oracle is timed at (beyond this it only wastes
#: the run's budget — the 1e-9 parity contract is already pinned by the
#: hypothesis suite and re-checked here wherever the oracle runs).
ORACLE_CEILING = 10_000
N_SOURCES = 4 if SMOKE else 8
SEED = 1337
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_trust_scale.json"


def _edges(n_agents: int):
    return stream_trust_edges(n_agents, seed=SEED)


def _bench_sources(matrix: TrustMatrix) -> list[str]:
    """Evenly spaced source agents, hubs and periphery both included."""
    step = max(1, len(matrix) // N_SOURCES)
    return [matrix.ids[i * step] for i in range(N_SOURCES)]


def _sweep_numpy(matrix: TrustMatrix, sources: list[str], metric: Appleseed):
    results = {}
    watch = Stopwatch()
    with watch:
        for source in sources:
            results[source] = appleseed_on_matrix(matrix, source, 200.0, metric)
    return results, watch.elapsed_ms / len(sources)


def _sweep_oracle(graph: TrustGraph, sources: list[str], metric: Appleseed):
    results = {}
    watch = Stopwatch()
    with watch:
        for source in sources:
            results[source] = metric.compute(graph, source)
    return results, watch.elapsed_ms / len(sources)


def _parity(python_results, numpy_results) -> float:
    worst = 0.0
    for source, python in python_results.items():
        vectorized = numpy_results[source]
        assert vectorized.neighborhood(0.0) == python.neighborhood(0.0)
        assert vectorized.iterations == python.iterations
        assert vectorized.converged == python.converged
        for agent in sorted(set(python.ranks) | set(vectorized.ranks)):
            delta = abs(
                python.ranks.get(agent, 0.0) - vectorized.ranks.get(agent, 0.0)
            )
            worst = max(worst, delta)
    return worst


def test_trust_scale():
    metric = Appleseed()
    records = []
    for n_agents in SIZES:
        watch = Stopwatch()
        with watch:
            matrix = TrustMatrix.from_edges(_edges(n_agents))
        pack_ms = watch.elapsed_ms
        sources = _bench_sources(matrix)

        numpy_results, numpy_ms = _sweep_numpy(matrix, sources, metric)
        record = {
            "agents": n_agents,
            "nodes": len(matrix),
            "edges": int(matrix.nnz + matrix.neg_weights.size),
            "pack_ms": round(pack_ms, 3),
            "numpy_ms_per_source": round(numpy_ms, 3),
            "sources": len(sources),
        }

        if n_agents <= ORACLE_CEILING:
            graph = TrustGraph.from_edges(_edges(n_agents))
            oracle_results, oracle_ms = _sweep_oracle(graph, sources, metric)
            record["oracle"] = "ok"
            record["python_ms_per_source"] = round(oracle_ms, 3)
            record["speedup"] = round(oracle_ms / numpy_ms, 2) if numpy_ms else None
            record["max_delta"] = _parity(oracle_results, numpy_results)
        else:
            # Explicit skip markers: every record carries the same key set,
            # so downstream consumers never have to guess whether a missing
            # ``speedup`` means "oracle too slow here" or a schema change.
            record["oracle"] = "skipped"
            record["python_ms_per_source"] = None
            record["speedup"] = None
            record["max_delta"] = None
        records.append(record)
        print(
            f"\n{n_agents:>9,} agents: pack {pack_ms:8.1f} ms, "
            f"numpy {numpy_ms:8.1f} ms/source"
            + (
                f", python {record['python_ms_per_source']:8.1f} ms/source "
                f"({record['speedup']}x, max|d|={record['max_delta']:.2e})"
                if record["oracle"] == "ok"
                else " (oracle skipped)"
            )
        )

    if SMOKE:
        # Determinism across worker counts, on the one size smoke runs.
        graph = TrustGraph.from_edges(_edges(SIZES[0]))
        sources = sorted(graph.nodes())[:12]
        serial = rank_many(graph, sources, engine="numpy")
        from repro.perf.parallel import ParallelExperimentRunner

        for workers in (1, 2):
            runner = ParallelExperimentRunner(max_workers=workers)
            assert rank_many(graph, sources, engine="numpy", runner=runner) == serial

    OUTPUT.write_text(  # reprolint: disable=RL010  (predates repro-bench/1)
        json.dumps({"smoke": SMOKE, "seed": SEED, "sizes": records}, indent=2) + "\n"
    )
    print(f"wrote {OUTPUT.name}")

    # Parity is non-negotiable in any mode, at every size the oracle ran.
    assert all(
        r["max_delta"] < 1e-9 for r in records if r["oracle"] == "ok"
    )
    if not SMOKE:
        at_10k = next(r for r in records if r["agents"] == 10_000)
        assert at_10k["speedup"] >= 10.0
        assert records[-1]["agents"] == 1_000_000  # the 10^6 sweep completed
