"""EX7 — robustness to profile-copy manipulation (§3.2).

Regenerates the contamination table and asserts that trust filtering
suppresses attacker items that trust-blind CF recommends.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex07_manipulation


def test_ex07_manipulation(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex07_manipulation(community), rounds=1, iterations=1
    )
    report(table)
    for row in table.rows:
        hybrid = float(row[1])
        blind = float(row[2])
        assert hybrid <= blind
    # At the largest sybil count the attack must visibly work on blind CF.
    assert float(table.rows[-1][2]) > 0.0
    assert float(table.rows[-1][1]) == 0.0
