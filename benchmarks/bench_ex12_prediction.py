"""EX12 — rating prediction MAE (explicit-rating community).

Regenerates the MAE table and asserts both personalized weight sources
beat the global-mean baseline while the trust-bounded predictor keeps
high coverage.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments_ext import explicit_community, run_ex12_prediction


def test_ex12_prediction(benchmark):
    community = explicit_community()
    table = benchmark.pedantic(
        lambda: run_ex12_prediction(community), rounds=1, iterations=1
    )
    report(table)
    mae = {row[0]: float(row[2]) for row in table.rows}
    assert mae["hybrid weights"] < mae["global mean"]
