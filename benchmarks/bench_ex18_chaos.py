"""EX18 — fault rate vs replica coverage and rec agreement (§2, §4.1).

Regenerates the chaos table and asserts the claimed shape: the
fault-free run agrees perfectly with itself, coverage stays within
bounds as the fault rate climbs, and the resilience machinery (retries)
is actually exercised under chaos.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments_chaos import run_ex18_chaos


def test_ex18_chaos(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex18_chaos(community), rounds=1, iterations=1
    )
    report(table)
    assert float(table.rows[0][-1]) == 1.0  # fault-free run: perfect overlap
    coverages = [float(row[-2]) for row in table.rows]
    assert all(0.0 <= value <= coverages[0] for value in coverages)
    retries = [int(row[2]) for row in table.rows]
    assert retries[0] == 0 and any(value > 0 for value in retries[1:])
