"""EX20 — membership churn: smooth-degradation gate on hybrid accuracy.

Regenerates the churn sweep and asserts the acceptance bound: hybrid
precision@N declines within tolerance as the churn rate rises (no
collapse), and the final population never drains below the floor.

Set ``EX2x_SMOKE=1`` (shared by the EX20–EX23 scenario suite) for tiny
sizes with a relaxed tolerance — smoke sizes carry more sampling noise
per cell.
"""

from __future__ import annotations

import os

from _util import report

from repro.evaluation.dynamics import MIN_POPULATION
from repro.evaluation.scenarios import run_ex20_churn, smooth_degradation

SMOKE = os.environ.get("EX2x_SMOKE") == "1"
TOLERANCE = 0.05 if SMOKE else 0.02


def test_ex20_churn(benchmark):
    table = benchmark.pedantic(run_ex20_churn, rounds=1, iterations=1)
    report(table)

    hybrid = [float(row[3]) for row in table.rows]
    final_agents = [int(row[2]) for row in table.rows]
    assert smooth_degradation(hybrid, tolerance=TOLERANCE)
    assert all(n >= MIN_POPULATION for n in final_agents)
