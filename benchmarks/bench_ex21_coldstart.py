"""EX21 — cold-start waves: established-user accuracy must hold.

Regenerates the cold-start sweep and asserts the acceptance bounds:
established-user hybrid precision@N holds within tolerance as waves
grow, and newcomer coverage is a valid fraction that does not shrink
as more newcomers arrive (every wave size that admits newcomers must
serve at least as large a share as the previous one, within
tolerance).

Set ``EX2x_SMOKE=1`` for tiny sizes with a relaxed tolerance.
"""

from __future__ import annotations

import os

from _util import report

from repro.evaluation.scenarios import run_ex21_coldstart, smooth_degradation

SMOKE = os.environ.get("EX2x_SMOKE") == "1"
TOLERANCE = 0.05 if SMOKE else 0.02


def test_ex21_coldstart(benchmark):
    table = benchmark.pedantic(run_ex21_coldstart, rounds=1, iterations=1)
    report(table)

    hybrid = [float(row[3]) for row in table.rows]
    coverage = [float(row[5]) for row in table.rows]
    assert smooth_degradation(hybrid, tolerance=TOLERANCE)
    assert all(0.0 <= c <= 1.0 for c in coverage)
    # Rows with newcomers: coverage must not collapse as waves grow.
    with_newcomers = [
        float(row[5]) for row in table.rows if int(row[2]) > 0
    ]
    assert all(
        b >= a - TOLERANCE for a, b in zip(with_newcomers, with_newcomers[1:])
    )
