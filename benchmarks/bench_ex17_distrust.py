"""EX17 — explicit distrust statements (§3.1 / §3.2).

Regenerates the distrust-handling table and asserts that one-step
distrust discounting strictly reduces the rogue agents' rank share
relative to ignoring distrust.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments_ext import run_ex17_distrust


def test_ex17_distrust(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex17_distrust(community), rounds=1, iterations=1
    )
    report(table)
    rows = {row[0]: row for row in table.rows}
    ignored_share = float(rows["ignored"][1])
    discounted_share = float(rows["one-step discount"][1])
    assert ignored_share > 0.0  # rogues do gain rank when distrust is ignored
    assert discounted_share < ignored_share
    assert float(rows["one-step discount"][2]) <= float(rows["ignored"][2])
