"""Trust-metric runtime comparison across community sizes.

Times one neighborhood computation per metric (Appleseed, personalized
PageRank, Advogato, scalar path) on communities of increasing size, so
the cost of each §3.2 design option is directly comparable.  All four
run on the identical graph and source.
"""

from __future__ import annotations

import pytest

from repro.datasets.amazon import book_taxonomy_config
from repro.datasets.generators import CommunityConfig, generate_community
from repro.trust.advogato import Advogato
from repro.trust.appleseed import Appleseed
from repro.trust.graph import TrustGraph
from repro.trust.pagerank import PersonalizedPageRank
from repro.trust.scalar import multiplicative_path_trust


@pytest.fixture(scope="module", params=[400, 1600])
def sized_graph(request):
    size = request.param
    config = CommunityConfig(
        n_agents=size,
        n_products=size,
        n_clusters=8,
        seed=31,
        taxonomy=book_taxonomy_config(target_topics=400, seed=31),
    )
    community = generate_community(config)
    graph = TrustGraph.from_dataset(community.dataset)
    source = sorted(community.dataset.agents)[0]
    return size, graph, source


def test_bench_appleseed_metric(benchmark, sized_graph):
    size, graph, source = sized_graph
    benchmark.group = f"trust-metrics-{size}"
    result = benchmark(lambda: Appleseed().compute(graph, source))
    assert result.converged


def test_bench_pagerank_metric(benchmark, sized_graph):
    size, graph, source = sized_graph
    benchmark.group = f"trust-metrics-{size}"
    result = benchmark(lambda: PersonalizedPageRank().compute(graph, source))
    assert result.converged


def test_bench_advogato_metric(benchmark, sized_graph):
    size, graph, source = sized_graph
    benchmark.group = f"trust-metrics-{size}"
    result = benchmark(lambda: Advogato(target_size=50).compute(graph, source))
    assert result.accepts(source)


def test_bench_scalar_path_metric(benchmark, sized_graph):
    size, graph, source = sized_graph
    benchmark.group = f"trust-metrics-{size}"
    scores = benchmark(
        lambda: multiplicative_path_trust(graph, source, max_depth=6)
    )
    assert scores
