"""EX8 — scalability: bounded neighborhoods vs global CF (§2).

Regenerates the latency-vs-community-size table and asserts the claimed
shape: the CF/hybrid cost ratio grows with community size (global CF
scales with |A|, the trust-bounded pipeline with the neighborhood).
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex08_scalability

SIZES = (200, 400, 800, 1600)


def test_ex08_scalability(benchmark):
    table = benchmark.pedantic(
        lambda: run_ex08_scalability(sizes=SIZES), rounds=1, iterations=1
    )
    report(table)
    ratios = [float(row[3]) for row in table.rows]
    assert ratios[-1] > ratios[0]
