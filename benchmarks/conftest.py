"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_ex*.py`` regenerates one experiment of the reproduction
index (DESIGN.md §5).  The run prints the experiment's table — the
rows/series the paper's claims map onto — and the pytest-benchmark
fixture additionally records the wall-clock cost of regenerating it.

Run everything:   pytest benchmarks/ --benchmark-only
Run one table:    pytest benchmarks/bench_ex06_rec_quality.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.datasets.amazon import book_taxonomy_config
from repro.datasets.generators import CommunityConfig, generate_community


@pytest.fixture(scope="session")
def community():
    """The shared default community all table benches run against."""
    config = CommunityConfig(
        n_agents=400,
        n_products=800,
        n_clusters=8,
        seed=42,
        taxonomy=book_taxonomy_config(target_topics=800, seed=42),
    )
    return generate_community(config)
