"""EX14 — ablations of the ♦-marked design decisions (DESIGN.md §4).

Regenerates the ablation table and asserts the mechanism-level shapes:
backward edges concentrate rank near the source; nonlinear normalization
concentrates rank on strong edges.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments_ext import run_ex14_ablations


def test_ex14_ablations(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex14_ablations(community), rounds=1, iterations=1
    )
    report(table)
    rows = {(row[0], row[1]): (row[2], row[3]) for row in table.rows}
    with_dist, without_dist = rows[
        ("appleseed backward edges", "rank-weighted hop distance")
    ]
    assert float(with_dist) < float(without_dist)
    nonlinear, linear = rows[("nonlinear normalization", "top-10 rank share")]
    assert float(nonlinear) > float(linear)
