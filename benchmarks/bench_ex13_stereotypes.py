"""EX13 — automated stereotype generation (§6 future work).

Regenerates the stereotype table and asserts that k-means over taxonomy
profiles recovers the planted interest clusters far above chance.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments_ext import run_ex13_stereotypes


def test_ex13_stereotypes(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex13_stereotypes(community), rounds=1, iterations=1
    )
    report(table)
    rows = {row[0]: row[1] for row in table.rows}
    assert float(rows["cluster purity vs planted"]) > 2 * float(rows["chance purity"])
