"""EX16 — topic diversification trade-off (§3.4).

Regenerates the accuracy-vs-ILS curve and asserts the published shape:
intra-list similarity falls monotonically with the diversification
factor.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments_ext import run_ex16_diversification


def test_ex16_diversification(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex16_diversification(community), rounds=1, iterations=1
    )
    report(table)
    ils = [float(row[3]) for row in table.rows]
    assert ils == sorted(ils, reverse=True)
    # Theta=0 is the undiversified reference; it must carry the best
    # (or tied-best) precision.
    precisions = [float(row[1]) for row in table.rows]
    assert precisions[0] == max(precisions)
