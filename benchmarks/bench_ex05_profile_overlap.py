"""EX5 — the low-profile-overlap problem and its taxonomy fix (§2, §3.3).

Regenerates the overlap table and asserts the claimed ordering:
product vectors < flat categories <= taxonomy-propagated profiles.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex05_profile_overlap


def test_ex05_profile_overlap(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex05_profile_overlap(community), rounds=1, iterations=1
    )
    report(table)
    by_repr = {row[0]: row for row in table.rows}
    product = float(by_repr["product vectors"][1])
    flat = float(by_repr["flat categories"][1])
    taxonomy = float(by_repr["taxonomy (Eq. 3)"][1])
    assert product < flat <= taxonomy
    assert taxonomy > 0.9
