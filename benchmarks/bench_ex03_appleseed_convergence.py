"""EX3 — Appleseed convergence and neighborhood size (§3.2, ref [12]).

Sweeps the spreading factor d and convergence threshold T_c and asserts
the expected shape: tighter thresholds cost more iterations, higher d
explores larger neighborhoods.
"""

from __future__ import annotations

from _util import report

from repro.evaluation.experiments import run_ex03_appleseed_convergence


def test_ex03_appleseed_convergence(benchmark, community):
    table = benchmark.pedantic(
        lambda: run_ex03_appleseed_convergence(community), rounds=1, iterations=1
    )
    report(table)
    for loose, tight in zip(table.rows[0::2], table.rows[1::2]):
        assert float(tight[3]) >= float(loose[3])
    sizes = [float(row[4]) for row in table.rows[1::2]]
    assert sizes == sorted(sizes)
