"""Command-line interface: generate, inspect, recommend, trust, experiment.

Installed as the ``repro`` console script.  Subcommands:

* ``repro generate``   — generate a synthetic community to JSONL snapshots
* ``repro info``       — summarize a dataset snapshot
* ``repro recommend``  — top-N recommendations for one agent
* ``repro trust``      — trust neighborhood of one agent (Appleseed/Advogato);
  ``repro trust rank SOURCE... --engine numpy --workers N`` runs a
  sharded :func:`~repro.trust.engine.rank_many` sweep over many sources
* ``repro experiment`` — run one EX table (EX01–EX23) and print it;
  ``--parallel N`` fans EX02/EX03/EX05/EX06/EX17 and the EX20–EX23
  dynamics scenarios out over worker processes
* ``repro demo``       — full decentralized loop (optionally under faults)
* ``repro crawl``      — chaos crawl: replicate a community under injected
  faults (``--fault-rate/--fault-seed/--retries`` …) and report
  retry/breaker/degradation statistics
* ``repro lint``       — reprolint + reprograph, the static-analysis pass
  (score ranges, seeded randomness, tolerance comparisons; see
  ``docs/ANALYSIS.md``)
* ``repro trace``      — inspect observability artifacts:
  ``summarize FILE`` validates a JSONL trace and prints the slowest
  spans and per-name rollups; ``top FILE`` is the profiler view
  (self-time aggregation + critical path); ``flame FILE`` renders the
  ASCII flame tree; ``diff A B`` reports structural drift and the spans
  whose self time moved most (see ``docs/PROFILING.md``)
* ``repro bench``      — the standing perf trajectory: run the
  build/query/trust ladder across community sizes with tracing on and
  write the span-attributed ``BENCH_scale.json``
  (schema ``repro-bench/1``; gated by
  ``scripts/check_bench_regression.py``)

``recommend``, ``crawl`` and ``experiment`` accept ``--trace FILE``
(write a JSONL span tree of the run), ``--metrics`` (print the
counter/histogram summary after the command output) and ``--memory``
(stamp per-span tracemalloc deltas into the trace); all default off,
leaving the near-zero-cost :class:`~repro.obs.NullTracer` bound.

Every command works off the JSONL snapshot format of
:mod:`repro.datasets.io`, so pipelines compose through files::

    repro generate --agents 300 --products 600 --out data.jsonl --taxonomy-out tax.jsonl
    repro info --data data.jsonl
    repro recommend --data data.jsonl --taxonomy tax.jsonl --agent-index 0
    repro experiment EX05
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from .core.neighborhood import NeighborhoodFormation
from .core.profiles import TaxonomyProfileBuilder
from .core.recommender import (
    PopularityRecommender,
    ProfileStore,
    PureCFRecommender,
    RandomRecommender,
    SemanticWebRecommender,
    TrustOnlyRecommender,
)
from .datasets.amazon import book_taxonomy_config
from .datasets.generators import CommunityConfig, generate_community
from .datasets.io import load_dataset, load_taxonomy, save_dataset, save_taxonomy
from .obs import (
    MetricsRegistry,
    Tracer,
    collecting,
    diff_traces,
    get_tracer,
    load_trace,
    render_diff,
    render_flame,
    render_top,
    summarize_trace,
    tracing,
    validate_trace,
    write_records_jsonl,
)
from .trust.advogato import Advogato
from .trust.appleseed import Appleseed
from .trust.graph import TrustGraph

__all__ = ["main"]

_EXPERIMENTS = {
    "EX01": ("experiments", "run_ex01_example1", False),
    "EX02": ("experiments", "run_ex02_trust_similarity", True),
    "EX03": ("experiments", "run_ex03_appleseed_convergence", True),
    "EX04": ("experiments", "run_ex04_attack_resistance", True),
    "EX05": ("experiments", "run_ex05_profile_overlap", True),
    "EX06": ("experiments", "run_ex06_recommendation_quality", True),
    "EX07": ("experiments", "run_ex07_manipulation", True),
    "EX08": ("experiments", "run_ex08_scalability", False),
    "EX09": ("experiments", "run_ex09_taxonomy_structure", False),
    "EX10": ("experiments", "run_ex10_synthesis", True),
    "EX11": ("experiments", "run_ex11_crawler", True),
    "EX12": ("experiments_ext", "run_ex12_prediction", False),
    "EX13": ("experiments_ext", "run_ex13_stereotypes", True),
    "EX14": ("experiments_ext", "run_ex14_ablations", True),
    "EX15": ("experiments_ext", "run_ex15_weblog_mining", True),
    "EX16": ("experiments_ext", "run_ex16_diversification", True),
    "EX17": ("experiments_ext", "run_ex17_distrust", True),
    "EX18": ("experiments_chaos", "run_ex18_chaos", True),
    "EX19": ("experiments_perf", "run_ex19_engine", False),
    "EX20": ("scenarios", "run_ex20_churn", False),
    "EX21": ("scenarios", "run_ex21_coldstart", False),
    "EX22": ("scenarios", "run_ex22_evolving_sybil", False),
    "EX23": ("scenarios", "run_ex23_drift", False),
}

#: Experiments whose runner accepts a ``runner=`` keyword for parallel
#: per-user / per-agent fan-out (``repro experiment --parallel N``).
_PARALLELIZABLE = {"EX02", "EX03", "EX05", "EX06", "EX17", "EX20", "EX21", "EX22", "EX23"}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic Web Recommender Systems (EDBT 2004) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic community")
    generate.add_argument("--agents", type=int, default=300)
    generate.add_argument("--products", type=int, default=600)
    generate.add_argument("--clusters", type=int, default=8)
    generate.add_argument("--topics", type=int, default=800)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--explicit", action="store_true",
                          help="graded explicit ratings instead of implicit +1 votes")
    generate.add_argument("--out", required=True, help="dataset JSONL path")
    generate.add_argument("--taxonomy-out", required=True, help="taxonomy JSONL path")

    info = sub.add_parser("info", help="summarize a dataset snapshot")
    info.add_argument("--data", required=True)

    recommend = sub.add_parser("recommend", help="recommend products for an agent")
    recommend.add_argument("--data", required=True)
    recommend.add_argument("--taxonomy", required=True)
    group = recommend.add_mutually_exclusive_group(required=True)
    group.add_argument("--agent", help="agent URI")
    group.add_argument("--agent-index", type=int, help="index into sorted agent list")
    recommend.add_argument("--limit", type=int, default=10)
    recommend.add_argument(
        "--method",
        choices=["hybrid", "cf", "trust", "popularity", "random"],
        default="hybrid",
    )
    recommend.add_argument(
        "--engine",
        choices=["auto", "numpy", "python"],
        default="auto",
        help="similarity engine for hybrid/cf (results are identical; "
             "numpy is faster at community scale)",
    )
    _add_obs_arguments(recommend)

    trust = sub.add_parser("trust", help="compute a trust neighborhood")
    # The flat form (`repro trust --data ... --source-index 0`) predates
    # the subcommands, so its required flags are validated in the
    # handler instead of by argparse — a required flag or group here
    # would reject `repro trust rank ...`.
    trust.add_argument("--data", default=None)
    group = trust.add_mutually_exclusive_group()
    group.add_argument("--source", help="source agent URI")
    group.add_argument("--source-index", type=int, help="index into sorted agents")
    trust.add_argument("--metric", choices=["appleseed", "advogato"], default="appleseed")
    trust.add_argument("--top", type=int, default=10)
    trust.add_argument(
        "--engine",
        choices=["auto", "numpy", "python"],
        default="auto",
        help="trust propagation engine (results are identical; numpy is "
             "faster at community scale)",
    )
    trust_sub = trust.add_subparsers(dest="trust_command", metavar="SUBCOMMAND")
    rank = trust_sub.add_parser(
        "rank",
        help="sharded Appleseed rank sweep over many sources (rank_many)",
    )
    rank.add_argument("sources", nargs="*", metavar="SOURCE",
                      help="source agent URIs (default: every agent)")
    rank.add_argument("--data", default=None)
    rank.add_argument(
        "--engine",
        choices=["auto", "numpy", "python"],
        default="auto",
        help="trust propagation engine for the sweep",
    )
    rank.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker processes (default: serial in-process)")
    rank.add_argument("--top", type=int, default=3,
                      help="top peers to print per source")
    _add_obs_arguments(rank)

    experiment = sub.add_parser("experiment", help="run one experiment table")
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS), metavar="ID",
                            type=str.upper, help="EX01..EX23 (case-insensitive)")
    experiment.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="worker processes for per-user fan-out "
             f"({', '.join(sorted(_PARALLELIZABLE))} only); "
             "tables are identical to serial runs",
    )
    _add_obs_arguments(experiment)

    demo = sub.add_parser(
        "demo",
        help="full decentralized demo: generate, publish, crawl, recommend",
    )
    demo.add_argument("--agents", type=int, default=120)
    demo.add_argument("--products", type=int, default=240)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--limit", type=int, default=5)
    demo.add_argument("--split-channels", action="store_true",
                      help="publish trust on homepages, ratings on weblogs")
    _add_fault_arguments(demo)

    crawl = sub.add_parser(
        "crawl",
        help="chaos crawl: publish a community, replicate it under injected faults",
    )
    crawl.add_argument("--agents", type=int, default=120)
    crawl.add_argument("--products", type=int, default=240)
    crawl.add_argument("--seed", type=int, default=7,
                       help="community generation seed")
    crawl.add_argument("--budget", type=int, default=None,
                       help="homepage fetch budget (default: unlimited)")
    crawl.add_argument("--split-channels", action="store_true",
                       help="publish trust on homepages, ratings on weblogs")
    _add_fault_arguments(crawl)
    _add_obs_arguments(crawl)

    lint = sub.add_parser(
        "lint",
        help=(
            "reprolint: domain-aware static analysis "
            "(RL001..RL010 file rules + RL100..RL104 graph rules "
            "+ RL200..RL203 effect rules)"
        ),
    )
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint")
    lint.add_argument("--format", choices=["human", "json", "sarif"],
                      default="human")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--sarif", default=None, metavar="FILE",
                      help="also write a SARIF 2.1.0 report to FILE")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline file of accepted legacy findings")
    lint.add_argument("--write-baseline", action="store_true",
                      help="regenerate --baseline FILE from current findings")
    lint.add_argument("--effects", default=None, metavar="FILE",
                      help="also write the inferred per-function effect "
                           "table as deterministic JSON ('-' for stdout)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")

    trace = sub.add_parser("trace", help="inspect a JSONL trace file")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="validate a trace and print slowest spans + per-name rollups",
    )
    summarize.add_argument("file", help="JSONL trace written by --trace")
    summarize.add_argument("--top", type=int, default=10, metavar="N",
                           help="how many slowest spans to show")
    summarize.add_argument("--strict-durations", action="store_true",
                           help="also reject non-monotonic durations "
                                "(children outlasting their parent)")
    top = trace_sub.add_parser(
        "top",
        help="profiler view: per-name self/cumulative time + critical path",
    )
    top.add_argument("file", help="JSONL trace written by --trace")
    top.add_argument("--limit", type=int, default=15, metavar="N",
                     help="how many span names to show")
    flame = trace_sub.add_parser(
        "flame",
        help="ASCII flame view of the span tree",
    )
    flame.add_argument("file", help="JSONL trace written by --trace")
    flame.add_argument("--width", type=int, default=60, metavar="COLS",
                       help="bar width of a full root in cells")
    diff = trace_sub.add_parser(
        "diff",
        help="compare two traces: structural drift + self-time movements",
    )
    diff.add_argument("file_a", help="baseline JSONL trace (A)")
    diff.add_argument("file_b", help="candidate JSONL trace (B)")
    diff.add_argument("--top", type=int, default=10, metavar="N",
                      help="how many self-time movements to show")

    bench = sub.add_parser(
        "bench",
        help="standing perf trajectory: build/query/trust ladder -> "
             "span-attributed BENCH_scale.json (schema repro-bench/1)",
    )
    bench.add_argument("--sizes", default=None, metavar="N,N,...",
                       help="ascending community sizes (default: 100,200,400; "
                            "BENCH_SMOKE=1 or --smoke: 60,120)")
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--queries", type=int, default=5, metavar="N",
                       help="recommendation queries per size")
    bench.add_argument("--sources", type=int, default=8, metavar="N",
                       help="trust-rank sources per size")
    bench.add_argument("--out", default="BENCH_scale.json", metavar="FILE",
                       help="bench document path (repro-bench/1 schema)")
    bench.add_argument("--trace-out", default=None, metavar="FILE",
                       help="also write the driver's JSONL span trace to FILE")
    bench.add_argument("--memory", action="store_true",
                       help="stamp per-span tracemalloc deltas into the trace")
    bench.add_argument("--smoke", action="store_true",
                       help="smoke sizes + smoke marker in the document "
                            "(same as BENCH_SMOKE=1)")

    return parser


def _rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {text}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {text}")
    return value


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability knobs: trace export and metrics summary."""
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL span trace of the run to FILE")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics summary after the output")
    parser.add_argument("--memory", action="store_true",
                        help="with --trace: stamp per-span tracemalloc "
                             "deltas (mem_delta_kb) into the spans")


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared chaos knobs: fault injection rates, seed, and retries."""
    parser.add_argument("--fault-rate", type=_rate, default=0.0,
                        help="transient failure probability per fetch attempt")
    parser.add_argument("--outage-rate", type=_rate, default=0.0,
                        help="probability a site is permanently down")
    parser.add_argument("--corruption-rate", type=_rate, default=0.0,
                        help="probability a fetched body is corrupted")
    parser.add_argument("--slow-rate", type=_rate, default=0.0,
                        help="probability a fetch pays extra latency ticks")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for fault injection and retry jitter")
    parser.add_argument("--retries", type=_nonnegative_int, default=3,
                        help="max retries per fetch for transient failures")


def _pick_agent(dataset, uri: str | None, index: int | None) -> str:
    agents = sorted(dataset.agents)
    if uri is not None:
        if uri not in dataset.agents:
            raise SystemExit(f"error: unknown agent {uri!r}")
        return uri
    assert index is not None
    if not 0 <= index < len(agents):
        raise SystemExit(f"error: agent index out of range (0..{len(agents) - 1})")
    return agents[index]


def _cmd_generate(args: argparse.Namespace) -> int:
    config = CommunityConfig(
        n_agents=args.agents,
        n_products=args.products,
        n_clusters=args.clusters,
        seed=args.seed,
        explicit_ratings=args.explicit,
        taxonomy=book_taxonomy_config(target_topics=args.topics, seed=args.seed),
    )
    community = generate_community(config)
    save_dataset(community.dataset, args.out)
    save_taxonomy(community.taxonomy, args.taxonomy_out)
    summary = community.dataset.summary()
    print(f"wrote {args.out} ({summary['agents']} agents, "
          f"{summary['ratings']} ratings, {summary['trust_statements']} trust stmts)")
    print(f"wrote {args.taxonomy_out} ({len(community.taxonomy)} topics)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.data)
    for key, value in dataset.summary().items():
        if isinstance(value, float):
            print(f"{key}: {value:.6f}")
        else:
            print(f"{key}: {value}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.data)
    taxonomy = load_taxonomy(args.taxonomy)
    agent = _pick_agent(dataset, args.agent, args.agent_index)
    store = ProfileStore(dataset, TaxonomyProfileBuilder(taxonomy))
    graph = TrustGraph.from_dataset(dataset)
    if args.method == "hybrid":
        recommender = SemanticWebRecommender(
            dataset=dataset, graph=graph, profiles=store,
            formation=NeighborhoodFormation(engine=args.engine),
            engine=args.engine,
        )
    elif args.method == "cf":
        recommender = PureCFRecommender(
            dataset=dataset, profiles=store, engine=args.engine
        )
    elif args.method == "trust":
        recommender = TrustOnlyRecommender(dataset=dataset, graph=graph)
    elif args.method == "popularity":
        recommender = PopularityRecommender(dataset=dataset)
    else:
        recommender = RandomRecommender(dataset=dataset)
    print(f"agent: {agent}")
    with get_tracer().span(
        "recommend.query", agent=agent, method=args.method, limit=args.limit
    ):
        recommendations = recommender.recommend(agent, limit=args.limit)
    if not recommendations:
        print("no recommendations (empty neighborhood or no votable products)")
        return 1
    for item in recommendations:
        title = dataset.products[item.product].title
        print(f"{item.product}\t{item.score:.4f}\t{title}")
    return 0


def _cmd_trust(args: argparse.Namespace) -> int:
    if getattr(args, "trust_command", None) == "rank":
        return _cmd_trust_rank(args)
    if args.data is None:
        raise SystemExit("error: --data is required")
    if (args.source is None) == (args.source_index is None):
        raise SystemExit("error: exactly one of --source / --source-index is required")
    dataset = load_dataset(args.data)
    source = _pick_agent(dataset, args.source, args.source_index)
    graph = TrustGraph.from_dataset(dataset)
    print(f"source: {source}")
    if args.metric == "appleseed":
        result = Appleseed(engine=args.engine).compute(graph, source)
        print(
            f"appleseed: {len(result.ranks)} ranked, "
            f"{result.iterations} iterations, converged={result.converged}"
        )
        for agent, rank in result.top(args.top):
            print(f"{agent}\t{rank:.4f}")
    else:
        result = Advogato(target_size=args.top, engine=args.engine).compute(
            graph, source
        )
        print(f"advogato: {len(result.accepted)} certified (flow {result.total_flow})")
        for agent in sorted(result.accepted):
            print(agent)
    return 0


def _cmd_trust_rank(args: argparse.Namespace) -> int:
    """Sharded Appleseed sweep over many sources (``repro trust rank``)."""
    from .trust.engine import rank_many

    if args.data is None:
        raise SystemExit("error: --data is required")
    dataset = load_dataset(args.data)
    graph = TrustGraph.from_dataset(dataset)
    sources = list(args.sources) or sorted(dataset.agents)
    for source in sources:
        if source not in dataset.agents:
            raise SystemExit(f"error: unknown agent {source!r}")
    runner = None
    if args.workers is not None:
        from .perf.parallel import ParallelExperimentRunner

        runner = ParallelExperimentRunner(max_workers=args.workers)
    results = rank_many(graph, sources, engine=args.engine, runner=runner)
    for result in results:
        print(
            f"{result.source}\t{len(result.ranks)} ranked\t"
            f"{result.iterations} iterations\tconverged={result.converged}"
        )
        for agent, rank in result.top(args.top):
            print(f"  {agent}\t{rank:.4f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module_name, func_name, needs_community = _EXPERIMENTS[args.id]
    from .evaluation import (
        experiments,
        experiments_chaos,
        experiments_ext,
        experiments_perf,
        scenarios,
    )

    modules = {
        "experiments": experiments,
        "experiments_ext": experiments_ext,
        "experiments_chaos": experiments_chaos,
        "experiments_perf": experiments_perf,
        "scenarios": scenarios,
    }
    func = getattr(modules[module_name], func_name)
    kwargs = {}
    if args.parallel is not None:
        if args.id not in _PARALLELIZABLE:
            raise SystemExit(
                f"error: --parallel supports {', '.join(sorted(_PARALLELIZABLE))} "
                f"only, not {args.id}"
            )
        from .perf.parallel import ParallelExperimentRunner

        kwargs["runner"] = ParallelExperimentRunner(max_workers=args.parallel)
    with get_tracer().span(f"experiment.{args.id}"):
        if needs_community:
            table = func(experiments.default_community(), **kwargs)
        else:
            table = func(**kwargs)
    print(table.render())
    return 0


def _fault_plan(args: argparse.Namespace):
    """A :class:`FaultPlan` from CLI flags, or ``None`` when all rates are 0."""
    from .web.faults import FaultPlan

    rates = (args.fault_rate, args.outage_rate, args.corruption_rate, args.slow_rate)
    if not any(rate > 0 for rate in rates):
        return None
    return FaultPlan(
        transient_rate=args.fault_rate,
        outage_rate=args.outage_rate,
        corruption_rate=args.corruption_rate,
        slow_rate=args.slow_rate,
        seed=args.fault_seed,
    )


def _print_fault_summary(web) -> None:
    """One line of injected-fault totals for a :class:`FaultyWeb`."""
    print(
        f"faults injected: {web.transient_failures} transient, "
        f"{web.outages_hit} outage hits, {web.corrupted_served} corrupted, "
        f"{web.slow_fetches} slow (+{web.latency_ticks} latency ticks); "
        f"traffic: {web.fetch_count} fetches, {web.error_count} errors, "
        f"{web.probe_count} probes"
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    """The whole decentralized loop in one command."""
    from .agent import LocalAgent
    from .web.crawler import publish_community
    from .web.faults import FaultyWeb, RetryPolicy
    from .web.network import SimulatedWeb
    from .web.replicator import publish_split_community

    config = CommunityConfig(
        n_agents=args.agents,
        n_products=args.products,
        n_clusters=6,
        seed=args.seed,
        taxonomy=book_taxonomy_config(target_topics=400, seed=args.seed),
    )
    community = generate_community(config)
    web = SimulatedWeb()
    publisher = publish_split_community if args.split_channels else publish_community
    publisher(web, community.dataset, community.taxonomy)
    print(f"published {len(web)} documents "
          f"({'split' if args.split_channels else 'merged'} channels)")

    plan = _fault_plan(args)
    consumer_web = web if plan is None else FaultyWeb(web, plan)
    retry = RetryPolicy(max_retries=args.retries, seed=args.fault_seed)
    principal = sorted(community.dataset.agents)[0]
    me = LocalAgent(uri=principal, web=consumer_web, retry=retry)
    stats = me.sync()
    print(f"synced: {stats}")
    if plan is not None:
        _print_fault_summary(consumer_web)
    print(f"\ntop-{args.limit} recommendations for {principal}:")
    for item in me.recommendations(limit=args.limit):
        print(f"  {me.explain(item)}")
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    """Publish a community and replicate it under injected faults."""
    from .web.crawler import publish_community
    from .web.faults import FaultyWeb, RetryPolicy
    from .web.network import SimulatedWeb
    from .web.replicator import CommunityReplicator, publish_split_community

    config = CommunityConfig(
        n_agents=args.agents,
        n_products=args.products,
        n_clusters=6,
        seed=args.seed,
        taxonomy=book_taxonomy_config(target_topics=400, seed=args.seed),
    )
    community = generate_community(config)
    web = SimulatedWeb()
    publisher = publish_split_community if args.split_channels else publish_community
    taxonomy_uri, catalog_uri = publisher(web, community.dataset, community.taxonomy)
    print(f"published {len(web)} documents "
          f"({'split' if args.split_channels else 'merged'} channels)")

    plan = _fault_plan(args)
    consumer_web = web if plan is None else FaultyWeb(web, plan)
    retry = RetryPolicy(max_retries=args.retries, seed=args.fault_seed)
    seed_agent = sorted(community.dataset.agents)[0]
    replicator = CommunityReplicator(web=consumer_web, retry=retry)
    dataset, _, report = replicator.replicate(
        [seed_agent],
        budget=args.budget,
        taxonomy_uri=taxonomy_uri,
        catalog_uri=catalog_uri,
    )

    coverage = len(dataset.agents) / len(community.dataset.agents)
    print(f"replicated {len(dataset.agents)}/{len(community.dataset.agents)} agents "
          f"(coverage {coverage:.3f}) from seed {seed_agent}")
    print(f"fetches: {report.homepage_fetches} homepage budget units, "
          f"{report.weblog_fetches} weblog, {report.mined_ratings} ratings mined"
          + (", budget exhausted" if report.budget_exhausted else ""))
    print(f"resilience: {report.retries} retries, "
          f"{report.transient_failures} transient failures, "
          f"{report.backoff_ticks} backoff ticks, "
          f"{report.breaker_trips} breaker trips, "
          f"{report.breaker_short_circuits} short circuits")
    print(f"degradation: {len(report.unreachable)} unreachable, "
          f"{len(report.degraded)} degraded (stale replica served), "
          f"{len(report.quarantined)} quarantined, "
          f"{len(report.weblogs_missing)} weblogs missing, "
          f"{len(report.parse_failures)} parse failures")
    if plan is not None:
        _print_fault_summary(consumer_web)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the reprolint static-analysis pass (see repro.analysis)."""
    from .analysis.cli import run_lint

    return run_lint(args)


def _load_validated_trace(
    path: str, strict_durations: bool = False
) -> list[dict] | None:
    """Load + schema-check one trace file; ``None`` (and stderr) on failure.

    Every :func:`~repro.obs.validate_trace` finding is printed — a
    corrupt trace reports all of its problems, not just the first.
    """
    try:
        records = load_trace(path)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    problems = validate_trace(records, strict_durations=strict_durations)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return None
    return records


def _cmd_trace(args: argparse.Namespace) -> int:
    """Validate and inspect JSONL traces (``repro trace <subcommand>``)."""
    if args.trace_command == "diff":
        records_a = _load_validated_trace(args.file_a)
        records_b = _load_validated_trace(args.file_b)
        if records_a is None or records_b is None:
            return 2
        print(f"A: {args.file_a} ({len(records_a)} spans)")
        print(f"B: {args.file_b} ({len(records_b)} spans)")
        print(render_diff(diff_traces(records_a, records_b), top=args.top))
        return 0
    strict = args.trace_command == "summarize" and args.strict_durations
    records = _load_validated_trace(args.file, strict_durations=strict)
    if records is None:
        return 2
    if args.trace_command == "summarize":
        print(summarize_trace(records, top=args.top))
    elif args.trace_command == "top":
        print(render_top(records, limit=args.limit))
    else:
        print(render_flame(records, width=args.width))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the standing perf trajectory driver (``repro bench``)."""
    from .evaluation.benchtrack import run_bench, write_bench

    sizes = None
    if args.sizes is not None:
        try:
            sizes = tuple(int(piece) for piece in args.sizes.split(","))
        except ValueError:
            raise SystemExit(f"error: --sizes must be integers, got {args.sizes!r}")
    smoke = True if args.smoke else None  # None: BENCH_SMOKE decides
    try:
        document, records = run_bench(
            sizes=sizes,
            seed=args.seed,
            queries=args.queries,
            trust_sources=args.sources,
            smoke=smoke,
            memory=args.memory,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    for entry in document["sizes"]:
        phases = entry["phases"]
        summary = ", ".join(
            f"{phase} {phases[phase]['wall_ms']:.1f} ms "
            f"({phases[phase]['dominant_span']})"
            for phase in ("build", "query", "trust")
        )
        print(f"{entry['agents']:>6} agents: {summary}")
    path = write_bench(document, args.out)
    print(f"wrote {path} (schema {document['schema']})")
    if args.trace_out is not None:
        written = write_records_jsonl(records, args.trace_out)
        print(f"trace: wrote {written} spans to {args.trace_out}")
    return 0


def _with_observability(args: argparse.Namespace, run: Callable[[], int]) -> int:
    """Run a handler under ``--trace`` / ``--metrics`` bindings.

    With neither flag the handler runs against the default
    :class:`~repro.obs.NullTracer` — instrumented code pays only a
    no-op call.  With flags, a fresh :class:`~repro.obs.Tracer` /
    :class:`~repro.obs.MetricsRegistry` is bound for the duration, the
    trace is written after the run (even a failing one, so partial
    traces aid debugging), and the metrics summary prints last.
    """
    if args.trace is None and not args.metrics:
        return run()
    tracer = Tracer(memory=getattr(args, "memory", False))
    registry = MetricsRegistry()
    try:
        with tracing(tracer), collecting(registry):
            code = run()
    finally:
        if args.trace is not None:
            written = tracer.write_jsonl(args.trace)
            print(f"trace: wrote {written} spans to {args.trace}")
    if args.metrics:
        print()
        print(registry.render_summary())
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "recommend": _cmd_recommend,
        "trust": _cmd_trust,
        "experiment": _cmd_experiment,
        "demo": _cmd_demo,
        "crawl": _cmd_crawl,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
    }
    handler = handlers[args.command]
    if hasattr(args, "trace") and args.command != "trace":
        return _with_observability(args, lambda: handler(args))
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
