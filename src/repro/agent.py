"""LocalAgent: the consumer-side stack behind one user, in one object.

The paper's central architectural commitment is that "our devised
Semantic Web recommender system performs all recommendation computations
locally for one given user" (§2).  :class:`LocalAgent` is that local
system: it owns a replica of the agent's corner of the Web, keeps it
fresh, and answers recommendation/trust/prediction queries from the
replica alone.

Typical session::

    from repro.agent import LocalAgent

    agent = LocalAgent(uri="http://agents.example.org/a0001", web=web)
    agent.sync(budget=200)            # crawl homepages + globals (+weblogs)
    agent.recommendations(limit=10)   # §3 pipeline over the replica
    agent.trusted_peers(limit=5)      # Appleseed neighborhood
    agent.sync()                      # later: refresh stale documents

The object is deliberately stateful: repeated :meth:`sync` calls perform
incremental refreshes (conditional fetches), exactly like the paper's
"tailored crawlers … ensure data freshness" (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core.models import Dataset
from .core.neighborhood import NeighborhoodFormation
from .core.prediction import RatingPredictor
from .core.profiles import TaxonomyProfileBuilder
from .core.recommender import ProfileStore, Recommendation, SemanticWebRecommender
from .core.synthesis import LinearBlend, SynthesisStrategy
from .core.taxonomy import Taxonomy
from .trust.graph import TrustGraph
from .web.crawler import DEFAULT_CATALOG_URI, DEFAULT_TAXONOMY_URI, Crawler
from .web.faults import RetryPolicy
from .web.network import SimulatedWeb, WebError
from .web.storage import DocumentStore
from .web.weblog import LinkMiner, weblog_uri

__all__ = ["LocalAgent"]


@dataclass
class LocalAgent:
    """One user's complete local recommender system.

    Parameters
    ----------
    uri:
        The agent's own URI (the crawl seed and recommendation
        principal).
    web:
        The Web the agent lives on.
    formation, synthesis:
        Pipeline configuration, defaulting to the paper's published
        parameters.
    mine_weblogs:
        Also fetch and mine each replicated peer's weblog during
        :meth:`sync` (needed for split-channel communities; harmless —
        one cheap probe per peer — for merged-channel ones).
    retry:
        Opt into bounded retries with backoff for transient fetch
        failures; circuit breakers and stale-replica fallback come with
        it (see :mod:`repro.web.faults`).
    """

    uri: str
    web: SimulatedWeb
    formation: NeighborhoodFormation = field(default_factory=NeighborhoodFormation)
    synthesis: SynthesisStrategy = field(default_factory=LinearBlend)
    mine_weblogs: bool = True
    taxonomy_uri: str = DEFAULT_TAXONOMY_URI
    catalog_uri: str = DEFAULT_CATALOG_URI
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        self._crawler = Crawler(web=self.web, store=DocumentStore(), retry=self.retry)
        self._dataset: Dataset | None = None
        self._taxonomy: Taxonomy | None = None
        self._recommender: SemanticWebRecommender | None = None

    # -- replica lifecycle -----------------------------------------------------

    def sync(self, budget: int | None = None) -> dict[str, int]:
        """Crawl/refresh the replica and rebuild the local pipeline.

        The first call discovers the agent's trust component; later
        calls re-fetch only documents whose live version advanced.
        Returns a small stats dict for logging.
        """
        globals_report = self._crawler.fetch_global_documents(
            self.taxonomy_uri, self.catalog_uri
        )
        crawl_report = self._crawler.crawl([self.uri], budget=budget)
        refresh_report = self._crawler.refresh()

        dataset, _ = self._crawler.store.assemble_dataset()
        taxonomy = self._crawler.store.assemble_taxonomy()
        if taxonomy is None:
            raise WebError(self.taxonomy_uri)

        mined = 0
        if self.mine_weblogs:
            mined = self._mine_weblogs(dataset)

        self._dataset = dataset
        self._taxonomy = taxonomy
        self._recommender = SemanticWebRecommender(
            dataset=dataset,
            graph=TrustGraph.from_dataset(dataset),
            profiles=ProfileStore(dataset, TaxonomyProfileBuilder(taxonomy)),
            formation=self.formation,
            synthesis=self.synthesis,
        )
        reports = (globals_report, crawl_report, refresh_report)
        return {
            "fetched": sum(r.fetched for r in reports),
            "agents_replicated": len(dataset.agents),
            "mined_weblog_ratings": mined,
            "retries": sum(r.retries for r in reports),
            "degraded": sum(1 for _ in self._crawler.store.degraded_uris()),
            "breaker_trips": self._crawler.breakers.trips,
        }

    def _mine_weblogs(self, dataset: Dataset) -> int:
        miner = LinkMiner(known_products=frozenset(dataset.products))
        store = self._crawler.store
        mined = 0
        for agent_uri in sorted(dataset.agents):
            log_uri = weblog_uri(agent_uri)
            outcome = self._crawler.fetcher.fetch(log_uri)
            if outcome.result is not None:
                body = outcome.result.body
                store.put(
                    uri=log_uri,
                    body=body,
                    version=outcome.result.version,
                    fetched_at=self._crawler.clock,
                    kind="weblog",
                )
            else:
                # Unreachable or missing: mine the stale replica if any.
                stale = store.get(log_uri)
                if stale is None:
                    continue
                if outcome.error != "missing":
                    store.mark_degraded(log_uri)
                body = stale.body
            for rating in miner.mine(agent_uri, body):
                dataset.add_rating(rating)
                mined += 1
        return mined

    # -- queries ------------------------------------------------------------------

    @property
    def replica(self) -> Dataset:
        """The current partial dataset (raises until the first sync)."""
        if self._dataset is None:
            raise RuntimeError("call sync() before querying the replica")
        return self._dataset

    @property
    def taxonomy(self) -> Taxonomy:
        """The shared taxonomy fetched from the global document."""
        if self._taxonomy is None:
            raise RuntimeError("call sync() before querying the replica")
        return self._taxonomy

    def _pipeline(self) -> SemanticWebRecommender:
        if self._recommender is None:
            raise RuntimeError("call sync() before querying the replica")
        return self._recommender

    def recommendations(self, limit: int = 10) -> list[Recommendation]:
        """Top-*limit* product recommendations from the replica."""
        return self._pipeline().recommend(self.uri, limit=limit)

    def trusted_peers(self, limit: int | None = None) -> list[tuple[str, float]]:
        """The agent's Appleseed trust neighborhood, best first."""
        return self._pipeline().neighborhood(self.uri).top(limit)

    def predict_rating(self, product: str) -> float | None:
        """Predicted rating for *product*, or ``None`` without evidence."""
        pipeline = self._pipeline()
        predictor = RatingPredictor(self.replica, pipeline.peer_weights)
        return predictor.predict(self.uri, product)

    def explain(self, recommendation: Recommendation) -> str:
        """Human-readable provenance of one recommendation."""
        dataset = self.replica
        product = dataset.products.get(recommendation.product)
        title = str(product) if product is not None else recommendation.product
        supporters = ", ".join(
            str(dataset.agents.get(peer, peer)) for peer in recommendation.supporters
        )
        return (
            f"{title} (score {recommendation.score:.3f}) — recommended because "
            f"{len(recommendation.supporters)} peers in your trust neighborhood "
            f"rated it positively: {supporters}"
        )
