"""The reprolint rule catalogue (``RL001``–``RL010``).

Each rule encodes one invariant of this reproduction and names the paper
section or inter-subsystem contract it protects:

========  ==============================================================
``RL001``  unseeded randomness — module-level ``random.*`` /
           ``np.random.*`` calls break the byte-identical
           ``ParallelExperimentRunner`` merge contract (position-derived
           seeds only work when *all* randomness flows through injected
           ``random.Random`` / ``numpy`` ``Generator`` objects)
``RL002``  float ``==`` / ``!=`` on similarity/trust/score expressions —
           the numpy and pure-python engines agree to 1e-9, not bit-for-
           bit; exact comparison must go through the shared tolerance
           helper ``repro.core.similarity.isclose``
``RL003``  silent overbroad ``except`` — a bare ``except:`` or
           ``except Exception:`` that neither re-raises nor records to a
           report/log object hides faults the resilience layer
           (:mod:`repro.web.faults`) is supposed to account for
``RL004``  mutable default argument — classic aliasing bug; a shared
           default dict of ratings corrupts every later call
``RL005``  unsorted set iteration — set order depends on
           ``PYTHONHASHSEED``, so iterating a set into rankings or
           serialized output makes EX tables nondeterministic
``RL006``  trust/rating literal outside ``[-1, +1]`` — the paper's §3.1
           range invariant for ``T`` and ``R``; out-of-range literals
           raise at runtime (or worse, silently skew energy flows)
``RL007``  wall-clock duration — ``time.time()`` is subject to NTP
           steps and DST jumps, so timing EX tables with it produces
           unreproducible (occasionally negative) durations; durations
           must come from the monotonic clock via
           :class:`repro.obs.Stopwatch` (or ``time.perf_counter``)
``RL008``  shared ``Dataset`` mutated in place — experiment/attack entry
           points (``run_ex*`` / ``inject_*``) must operate on a copy of
           their dataset parameter (the invariant
           :mod:`repro.evaluation.attacks` documents); in-place mutation
           corrupts the caller's community for every later experiment
           sharing it
``RL009``  trust metric computed with the engine hardwired — an
           evaluation/CLI entry point chaining
           ``Appleseed(...).compute(...)`` (or Advogato /
           PersonalizedPageRank) without an ``engine=`` argument pins
           the pure-python oracle and silently bypasses the
           ``auto|numpy|python`` resolver
           (:func:`repro.trust.engine.resolve_trust_engine`)
``RL010``  ``BENCH_*.json`` written around the schema helper — raw
           ``.write_text()`` / ``json.dump()`` / ``open(…, "w")`` on a
           benchmark-trajectory file bypasses
           :func:`repro.evaluation.benchtrack.write_bench` and its
           ``repro-bench/1`` validation, so the standing perf
           trajectory forks into ad-hoc schemas the regression gate
           cannot read
========  ==============================================================

The whole-program (reprograph) rules live next door and are registered
here as :data:`DEFAULT_GRAPH_RULES`:

========  ==============================================================
``RL100``  architecture-contract violation
           (:mod:`repro.analysis.contracts`)
``RL101``  untrusted parsed value reaches a scoring sink unclamped
           (:mod:`repro.analysis.dataflow`)
``RL102``  fork-unsafe module-global state read from a pool worker
           (:mod:`repro.analysis.dataflow`)
``RL103``  dead module — unreachable from every entry point
           (:mod:`repro.analysis.graph`)
``RL104``  import-time cycle (:mod:`repro.analysis.graph`)
========  ==============================================================

The effect-inference rules (:mod:`repro.analysis.effects`) sit on the
same ``ProjectIndex`` and make incremental updates safe:

========  ==============================================================
``RL200``  cache coherence — mutating the backing state of a registered
           cache (the :data:`~repro.analysis.effects.DEFAULT_CACHE_REGISTRY`
           pairings) without reaching the paired invalidation, or an
           invalidator that clears only part of a pairing
``RL201``  purity contract — query entry points (``recommend``,
           ``top_similar``, ``predict``, trust ``compute``, perf
           kernels) carry no ``mutates:*`` effect beyond the declared
           cache fields
``RL202``  unseeded randomness, interprocedurally — an ``rng`` effect
           reaches an entry point through the call graph instead of an
           injected seeded ``random.Random`` (RL001 across calls)
``RL203``  io/clock effect inside ``repro.core``/``trust``/``perf`` —
           timing belongs to :mod:`repro.obs` (allowlisted), file and
           network traffic to datasets/web/cli
========  ==============================================================

The concurrency-safety rules (:mod:`repro.analysis.concurrency`) add
lock-set inference over the same fixpoint, clearing the runway for the
query-serving daemon:

========  ==============================================================
``RL300``  shared-state race — a registered cache field mutated on a
           path from a concurrent root
           (:data:`~repro.analysis.concurrency.CONCURRENT_ROOTS`, plus
           anything that spawns) with an empty inferred lock set
``RL301``  check-then-act — ``if key not in cache:`` /
           ``if self._f is None:`` fill on a registry cache field
           outside any guard (``GuardedCache.get_or_build`` closes the
           window; double-checked tests under a guard are sanctioned)
``RL302``  non-atomic invalidate/rebuild — in-place mutation of a
           publish-by-replacement field, or cache accessors holding
           guard sets with no common token (inconsistent lock sets)
``RL303``  blocking-under-guard — an ``io``/``clock``/``spawns`` effect
           reachable while a guard is held (:mod:`repro.obs`
           instrumentation allowlisted)
========  ==============================================================

Suppress a deliberate exception with ``# reprolint: disable=RLxxx`` on
the offending line.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from .concurrency import (
    AtomicPublishRule,
    BlockingUnderGuardRule,
    CheckThenActRule,
    SharedStateRaceRule,
)
from .contracts import ArchitectureContractRule
from .dataflow import ForkSafetyRule, TaintRule
from .effects import (
    CacheCoherenceRule,
    LayerPurityRule,
    PurityContractRule,
    SeededRandomnessRule,
)
from .engine import Finding, GraphRule, Rule, RuleContext
from .graph import DeadModuleRule, ImportCycleRule

__all__ = [
    "BenchSchemaBypassRule",
    "DEFAULT_GRAPH_RULES",
    "DEFAULT_RULES",
    "FloatEqualityOnScoresRule",
    "HardwiredTrustEngineRule",
    "MutableDefaultArgRule",
    "ScoreLiteralRangeRule",
    "SharedDatasetMutationRule",
    "SilentOverbroadExceptRule",
    "UnseededRandomRule",
    "UnsortedSetIterationRule",
    "WallClockDurationRule",
    "all_rule_codes",
]


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class UnseededRandomRule(Rule):
    """RL001: module-level ``random.*`` / ``np.random.*`` calls.

    The parallel experiment runner derives per-task seeds from submission
    position and merges results byte-identically; any draw from the
    module-level (globally seeded) generators escapes that contract.
    Seeded construction — ``random.Random(seed)``,
    ``np.random.default_rng(seed)``, ``np.random.Generator(...)`` — is
    fine; *calling* the module-level functions, or constructing either
    generator without a seed argument, is not.
    """

    code = "RL001"
    summary = "unseeded randomness breaks the parallel merge contract"

    _SEEDED_CONSTRUCTORS = frozenset({"Random", "SystemRandom", "default_rng", "Generator"})
    _RANDOM_MODULES = frozenset({"random", "np.random", "numpy.random"})

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None or "." not in name:
                continue
            module, _, func = name.rpartition(".")
            if module not in self._RANDOM_MODULES:
                continue
            if func in self._SEEDED_CONSTRUCTORS:
                if node.args or node.keywords:
                    continue  # explicitly seeded/parameterized construction
                yield self.finding(
                    node,
                    context,
                    f"{name}() constructed without a seed; inject a seeded "
                    "generator instead (parallel-merge determinism)",
                )
                continue
            yield self.finding(
                node,
                context,
                f"module-level {name}() draws from shared global state; "
                "use an injected seeded random.Random/np Generator",
            )


#: Identifier fragments that mark an expression as score-valued.
_SCORE_NAME_RE = re.compile(
    r"(?:^|_)(sim|similarity|score|scores|trust|rating|ratings|pearson|"
    r"cosine|overlap|correlation|rank|weight|precision|recall|f1)(?:$|_)",
    re.IGNORECASE,
)

#: Calls whose return value is score-valued by construction.
_SCORE_FUNCTIONS = frozenset(
    {
        "pearson",
        "cosine",
        "profile_overlap",
        "intra_list_similarity",
        "validate_score",
    }
)


class FloatEqualityOnScoresRule(Rule):
    """RL002: ``==`` / ``!=`` between a score expression and a float.

    The two similarity engines agree within 1e-9, not exactly, so exact
    float comparison on similarity/trust/score values is either dead
    (always false) or engine-dependent.  Use
    ``repro.core.similarity.isclose`` (the single source of truth for the
    tolerance) instead.  Integer-literal comparisons and comparisons
    against ``None`` are untouched.
    """

    code = "RL002"
    summary = "exact float comparison on score values; use similarity.isclose"

    def _is_score_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return bool(_SCORE_NAME_RE.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(_SCORE_NAME_RE.search(node.attr))
        if isinstance(node, ast.Subscript):
            return self._is_score_expr(node.value)
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            if name is None:
                return False
            return name.rpartition(".")[2] in _SCORE_FUNCTIONS or bool(
                _SCORE_NAME_RE.search(name.rpartition(".")[2])
            )
        if isinstance(node, ast.BinOp):
            return self._is_score_expr(node.left) or self._is_score_expr(node.right)
        return False

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            ops = node.ops
            for index, op in enumerate(ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                score_side = self._is_score_expr(left) or self._is_score_expr(right)
                float_side = self._is_float_literal(left) or self._is_float_literal(right)
                if score_side and float_side:
                    yield self.finding(
                        node,
                        context,
                        "exact float comparison on a score expression; "
                        "use repro.core.similarity.isclose (1e-9 contract)",
                    )
                    break  # one finding per Compare node


#: Attribute/name fragments that count as "recording" a swallowed error.
_RECORDING_RE = re.compile(
    r"report|record|log|error|fault|quarantine|degrad|warn|metric|stat|counter",
    re.IGNORECASE,
)


class SilentOverbroadExceptRule(Rule):
    """RL003: bare/overbroad ``except`` that swallows silently.

    ``except:``, ``except Exception:`` and ``except BaseException:`` are
    flagged unless the handler re-raises or visibly records the failure
    (touches a name/attribute matching report/record/log/error/fault/…).
    The resilience layer's accounting (CrawlReport, breaker statistics)
    only works if no path eats faults invisibly.
    """

    code = "RL003"
    summary = "overbroad except neither re-raises nor records the failure"

    _OVERBROAD = frozenset({"Exception", "BaseException"})

    def _is_overbroad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        name = _dotted_name(handler.type)
        return name is not None and name.rpartition(".")[2] in self._OVERBROAD

    def _handler_accounts(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Name) and _RECORDING_RE.search(node.id):
                return True
            if isinstance(node, ast.Attribute) and _RECORDING_RE.search(node.attr):
                return True
        return False

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_overbroad(node) and not self._handler_accounts(node):
                label = (
                    "bare except"
                    if node.type is None
                    else f"except {_dotted_name(node.type)}"
                )
                yield self.finding(
                    node,
                    context,
                    f"{label} swallows errors without re-raising or "
                    "recording to a report object",
                )


class MutableDefaultArgRule(Rule):
    """RL004: ``def f(x=[])`` / ``={}`` / ``=set()`` / ``=dict()`` / ``=list()``."""

    code = "RL004"
    summary = "mutable default argument is shared across calls"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "Counter"})

    def _is_mutable_default(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return (
                name is not None
                and name.rpartition(".")[2] in self._MUTABLE_CALLS
            )
        return False

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [
                *node.args.defaults,
                *[d for d in node.args.kw_defaults if d is not None],
            ]
            for default in defaults:
                if self._is_mutable_default(default):
                    yield self.finding(
                        default,
                        context,
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the function",
                    )


class UnsortedSetIterationRule(Rule):
    """RL005: iterating a set without ``sorted()`` feeds nondeterminism.

    String-set iteration order depends on ``PYTHONHASHSEED``, so a set
    flowing into a ranking, a serialized table, or a joined string makes
    EX tables differ across runs.  Flagged sites: ``for x in {…}`` /
    ``set(...)`` / set comprehensions / set-algebra on ``.keys()`` views,
    the same expressions inside comprehensions, and ``list()`` /
    ``tuple()`` / ``enumerate()`` / ``str.join()`` over them.  Wrapping
    the expression in ``sorted(...)`` — or aggregating with ``len`` /
    ``sum`` / ``min`` / ``max`` / ``any`` / ``all`` / ``frozenset`` —
    is order-insensitive and therefore fine.
    """

    code = "RL005"
    summary = "unsorted set iteration yields nondeterministic order"

    _SET_CALLS = frozenset({"set", "frozenset"})
    _ORDERING_SINKS = frozenset({"list", "tuple", "enumerate", "iter"})
    _SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)

    def _is_keys_view(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
        )

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            return name is not None and name.rpartition(".")[2] in self._SET_CALLS
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_BINOPS):
            # set algebra over keys views or other set expressions
            sides = (node.left, node.right)
            return any(
                self._is_keys_view(side) or self._is_set_expr(side)
                for side in sides
            )
        return False

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name is not None and name.rpartition(".")[2] in self._ORDERING_SINKS:
                    iters.extend(node.args[:1])
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                ):
                    iters.append(node.args[0])
            for candidate in iters:
                if self._is_set_expr(candidate):
                    yield self.finding(
                        candidate,
                        context,
                        "iteration over an unsorted set; wrap in sorted() "
                        "to keep rankings/serialized output deterministic",
                    )


#: Keyword names whose literal values must respect the §3.1 score range.
_SCORE_KEYWORDS = frozenset({"value", "trust", "rating", "score"})

#: Constructors/validators whose numeric literal arguments are scores.
_SCORE_CALLABLES = frozenset({"TrustStatement", "Rating", "validate_score"})


class ScoreLiteralRangeRule(Rule):
    """RL006: trust/rating literal outside the paper's ``[-1, +1]`` scale.

    Flags numeric literals outside ``[-1, +1]`` when they appear as the
    score argument of :class:`~repro.core.models.TrustStatement`,
    :class:`~repro.core.models.Rating`, or
    :func:`~repro.core.models.validate_score` — or as any keyword named
    ``value=`` / ``trust=`` / ``rating=`` / ``score=``.  These raise
    :class:`ValueError` at runtime at best; caught earlier, they never
    reach an energy-flow computation.
    """

    code = "RL006"
    summary = "trust/rating literal outside the §3.1 [-1, +1] range"

    @staticmethod
    def _literal_value(node: ast.expr) -> float | None:
        sign = 1.0
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
            node = node.operand
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            if isinstance(node.value, bool):
                return None
            return sign * float(node.value)
        return None

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            short = name.rpartition(".")[2] if name else ""
            candidates: list[tuple[ast.expr, str]] = []
            if short in _SCORE_CALLABLES:
                # TrustStatement(source, target, value) / Rating(agent,
                # product, value) / validate_score(value, kind): the score
                # is the last non-string positional argument.
                for arg in node.args:
                    candidates.append((arg, f"argument of {short}()"))
            for keyword in node.keywords:
                if keyword.arg in _SCORE_KEYWORDS:
                    candidates.append(
                        (keyword.value, f"keyword {keyword.arg}=")
                    )
            for expr, where in candidates:
                value = self._literal_value(expr)
                if value is not None and not -1.0 <= value <= 1.0:
                    yield self.finding(
                        expr,
                        context,
                        f"score literal {value:g} as {where} lies outside "
                        "the paper's [-1, +1] trust/rating scale (§3.1)",
                    )


class WallClockDurationRule(Rule):
    """RL007: ``time.time()`` used where a duration is being measured.

    The wall clock is not monotonic — NTP corrections and DST moves can
    step it backwards mid-run — so differences of ``time.time()`` values
    make EX tables unreproducible and occasionally negative.  Durations
    belong on the monotonic clock: :class:`repro.obs.Stopwatch` (the
    repo's single timing helper) or ``time.perf_counter()`` directly.
    ``time.time()`` is flagged wherever it is *called*; code that
    genuinely needs a calendar timestamp (none in this repo does) can
    suppress with ``# reprolint: disable=RL007``.
    """

    code = "RL007"
    summary = "time.time() for durations; use repro.obs.Stopwatch"

    _WALL_CLOCKS = frozenset({"time.time"})

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name in self._WALL_CLOCKS:
                yield self.finding(
                    node,
                    context,
                    f"{name}() reads the non-monotonic wall clock; measure "
                    "durations with repro.obs.Stopwatch (monotonic) instead",
                )


#: Dataset methods that mutate in place, and the dict fields behind them.
_DATASET_MUTATORS = frozenset({"add_agent", "add_product", "add_trust", "add_rating"})
_DATASET_FIELDS = frozenset({"agents", "products", "trust", "ratings"})
_DICT_MUTATORS = frozenset({"pop", "popitem", "update", "clear", "setdefault"})

#: Function names bound by the copy-before-mutate invariant: the public
#: experiment and attack entry points.  Underscore helpers are exempt —
#: they legitimately receive the already-copied dataset to build on.
_ENTRY_POINT_RE = re.compile(r"^(run_ex|inject_)")


class SharedDatasetMutationRule(Rule):
    """RL008: entry point mutates its shared ``Dataset`` parameter.

    :mod:`repro.evaluation.attacks` documents the invariant: attack and
    experiment entry points "mutate a *copy* of the input dataset".
    Communities are expensive to generate and shared across experiments
    (the ``community`` fixture, ``default_community()`` reuse), so a
    ``run_ex*`` / ``inject_*`` function writing through its dataset
    parameter silently corrupts every later experiment run on the same
    object.  Flagged mutations: ``dataset.add_agent(...)``-style calls,
    assignment / deletion / dict-mutator calls on
    ``dataset.agents|products|trust|ratings``.  A parameter the function
    rebinds (``dataset = copy_dataset(dataset)``) is treated as a local
    copy and exempt.
    """

    code = "RL008"
    summary = "experiment/attack entry point mutates a shared Dataset in place"

    def _dataset_params(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Parameter names that look dataset-valued (name or annotation)."""
        params: set[str] = set()
        args = [*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs]
        for arg in args:
            annotated = False
            if arg.annotation is not None:
                if isinstance(arg.annotation, ast.Constant) and isinstance(
                    arg.annotation.value, str
                ):
                    annotated = "Dataset" in arg.annotation.value
                else:
                    name = _dotted_name(arg.annotation)
                    annotated = (
                        name is not None and name.rpartition(".")[2] == "Dataset"
                    )
            if annotated or arg.arg == "dataset" or arg.arg.endswith("_dataset"):
                params.add(arg.arg)
        return params

    @staticmethod
    def _rebound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Names assigned anywhere in the body (local copies, not shared)."""
        rebound: set[str] = set()
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            while targets:
                target = targets.pop()
                if isinstance(target, ast.Name):
                    rebound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                elif isinstance(target, ast.Starred):
                    targets.append(target.value)
        return rebound

    @staticmethod
    def _field_receiver(node: ast.expr) -> tuple[str, str] | None:
        """``(param, field)`` for a bare ``param.field`` attribute."""
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return node.value.id, node.attr
        return None

    def _mutations(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, params: set[str]
    ) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in params
                    and node.func.attr in _DATASET_MUTATORS
                ):
                    yield node, f"{base.id}.{node.func.attr}(...)"
                    continue
                receiver = self._field_receiver(base)
                if (
                    receiver is not None
                    and receiver[0] in params
                    and receiver[1] in _DATASET_FIELDS
                    and node.func.attr in _DICT_MUTATORS
                ):
                    yield node, f"{receiver[0]}.{receiver[1]}.{node.func.attr}(...)"
                    continue
            targets: list[ast.expr] = []
            if isinstance(node, (ast.Assign, ast.Delete)):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                receiver = self._field_receiver(target)
                if (
                    receiver is not None
                    and receiver[0] in params
                    and receiver[1] in _DATASET_FIELDS
                ):
                    yield node, f"{receiver[0]}.{receiver[1]}"

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _ENTRY_POINT_RE.match(func.name):
                continue
            params = self._dataset_params(func) - self._rebound_names(func)
            if not params:
                continue
            for node, what in self._mutations(func, params):
                yield self.finding(
                    node,
                    context,
                    f"{func.name}() mutates shared dataset parameter via "
                    f"{what}; operate on a copy "
                    "(repro.evaluation.dynamics.copy_dataset)",
                )


#: Trust metric classes whose constructor takes the ``engine=`` switch.
_ENGINE_METRICS = frozenset({"Appleseed", "Advogato", "PersonalizedPageRank"})

#: Modules bound by the resolver contract: the evaluation entry points
#: and the CLI.  Library layers (trust itself, core defaults) stay free
#: to pin the oracle — that *is* the resolver's fallback.
_ENGINE_SCOPE_RE = re.compile(r"(?:^|[/\\])(?:evaluation[/\\][^/\\]+|cli)\.py$|[/\\]evaluation[/\\]")


class HardwiredTrustEngineRule(Rule):
    """RL009: evaluation/CLI code computes a trust metric with the engine pinned.

    ``repro.trust.engine`` resolves ``engine="auto"|"numpy"|"python"``
    (mirroring ``repro.perf.engine``), and the metric constructors
    default to the pure-python oracle so that direct library use stays
    bit-identical.  Entry points — the EX experiment runners and the
    CLI — must therefore *opt in* by threading an ``engine=`` argument;
    a chained ``Appleseed(...).compute(...)`` without one silently pins
    the oracle and loses the vectorized path at community scale.
    Constructions handed to :func:`repro.trust.engine.rank_many` (which
    resolves the engine itself) are not chained and are not flagged.
    Deliberate oracle pins (e.g. a baseline measurement) suppress with
    ``# reprolint: disable=RL009``.
    """

    code = "RL009"
    summary = "trust metric bypasses the engine resolver; pass engine="

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        if not _ENGINE_SCOPE_RE.search(context.path):
            return
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "compute"
            ):
                continue
            ctor = node.func.value
            if not isinstance(ctor, ast.Call):
                continue
            name = _dotted_name(ctor.func)
            short = name.rpartition(".")[2] if name else ""
            if short not in _ENGINE_METRICS:
                continue
            if any(keyword.arg == "engine" for keyword in ctor.keywords):
                continue
            yield self.finding(
                ctor,
                context,
                f"{short}(...).compute(...) without engine= pins the "
                "python oracle; thread an engine argument through "
                "(resolve via repro.trust.engine)",
            )


#: ``BENCH_<name>.json`` — the benchmark-trajectory filename family.
_BENCH_FILE_RE = re.compile(r"^BENCH_[\w.-]*\.json$")

#: Path methods that write file contents directly.
_BENCH_WRITER_ATTRS = frozenset({"write_text", "write_bytes"})


class BenchSchemaBypassRule(Rule):
    """RL010: a ``BENCH_*.json`` writer that bypasses ``write_bench``.

    ``repro.evaluation.benchtrack.write_bench`` is the single sanctioned
    writer of benchmark-trajectory documents: it validates the
    ``repro-bench/1`` schema before anything touches disk, which is what
    keeps ``scripts/check_bench_regression.py`` able to read every
    baseline ever committed.  Flagged: ``X.write_text(...)`` /
    ``X.write_bytes(...)`` / ``json.dump(...)`` / ``open(…, "w"|"a")``
    whose argument subtree mentions a ``BENCH_*.json`` string constant —
    directly, or through a module-level name (``OUTPUT = … /
    "BENCH_foo.json"``) bound to one.  Pre-``repro-bench/1`` trajectories
    with their own frozen schemas suppress with
    ``# reprolint: disable=RL010``.
    """

    code = "RL010"
    summary = "BENCH_*.json written around benchtrack.write_bench"

    @staticmethod
    def _bench_constant(node: ast.AST) -> str | None:
        for child in ast.walk(node):
            if isinstance(child, ast.Constant) and isinstance(child.value, str):
                if _BENCH_FILE_RE.match(child.value):
                    return child.value
        return None

    @staticmethod
    def _bench_names(tree: ast.Module) -> dict[str, str]:
        """Module-level names bound to expressions naming a BENCH file."""
        names: dict[str, str] = {}
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            constant = BenchSchemaBypassRule._bench_constant(value)
            if constant is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names[target.id] = constant
        return names

    @staticmethod
    def _open_writes(node: ast.Call) -> bool:
        """``open(..., "w"/"a"/"x")`` — reading a BENCH file is fine."""
        mode: ast.expr | None = node.args[1] if len(node.args) > 1 else None
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and any(flag in mode.value for flag in "wax")
        )

    def _writer_label(self, node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in _BENCH_WRITER_ATTRS:
            return f".{node.func.attr}(...)"
        name = _dotted_name(node.func)
        short = name.rpartition(".")[2] if name else ""
        if short == "dump" and name in {"json.dump", "dump"}:
            return "json.dump(...)"
        if short == "open":
            return "open(..., 'w')" if self._open_writes(node) else None
        return None

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        bench_names = self._bench_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._writer_label(node)
            if label is None:
                continue
            target = self._bench_constant(node)
            if target is None:
                for child in ast.walk(node):
                    if isinstance(child, ast.Name) and child.id in bench_names:
                        target = bench_names[child.id]
                        break
            if target is None:
                continue
            yield self.finding(
                node,
                context,
                f"{target} written via {label}, bypassing the repro-bench/1 "
                "schema; route through repro.evaluation.benchtrack.write_bench",
            )


DEFAULT_RULES: tuple[Rule, ...] = (
    UnseededRandomRule(),
    FloatEqualityOnScoresRule(),
    SilentOverbroadExceptRule(),
    MutableDefaultArgRule(),
    UnsortedSetIterationRule(),
    ScoreLiteralRangeRule(),
    WallClockDurationRule(),
    SharedDatasetMutationRule(),
    HardwiredTrustEngineRule(),
    BenchSchemaBypassRule(),
)

#: Whole-program rules `repro lint` runs alongside the per-file set.
DEFAULT_GRAPH_RULES: tuple[GraphRule, ...] = (
    ArchitectureContractRule(),
    TaintRule(),
    ForkSafetyRule(),
    DeadModuleRule(),
    ImportCycleRule(),
    CacheCoherenceRule(),
    PurityContractRule(),
    SeededRandomnessRule(),
    LayerPurityRule(),
    SharedStateRaceRule(),
    CheckThenActRule(),
    AtomicPublishRule(),
    BlockingUnderGuardRule(),
)


def all_rule_codes() -> tuple[str, ...]:
    """Stable tuple of every registered rule code (file + graph)."""
    return tuple(rule.code for rule in DEFAULT_RULES) + tuple(
        rule.code for rule in DEFAULT_GRAPH_RULES
    )
