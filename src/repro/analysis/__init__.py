"""Domain-aware static analysis for the reproduction (**reprolint**).

The paper's information model (§3.1) is built on partial functions with
hard range invariants — trust ``T: A → [-1,+1]⊥`` and ratings
``R: B → [-1,+1]⊥`` — and several subsystems (seeded fault injection,
position-derived parallel seeds, the 1e-9 dual-engine equivalence
contract) depend on invariants that no test can exhaustively check.
This package enforces them at analysis time with an AST-based lint pass:

* :mod:`repro.analysis.engine` — the rule registry, per-file AST visitor,
  ``# reprolint: disable=RLxxx`` suppression handling, and JSON/human
  output formatting.
* :mod:`repro.analysis.rules` — the domain rules (``RL001``–``RL009``),
  each keyed to a paper section or an inter-subsystem contract.

On top of the per-file pass sits **reprograph**, the whole-program
layer (``RL100``–``RL104``):

* :mod:`repro.analysis.symbols` — module names, import records, name
  bindings, functions and classified globals for every linted file.
* :mod:`repro.analysis.graph` — the module import graph, dead-module
  (``RL103``) and import-cycle (``RL104``) rules.
* :mod:`repro.analysis.contracts` — the declarative layering contract
  (``core`` imports nothing internal, ``trust``/``perf``/``semweb`` sit
  on ``core``, ...) enforced as ``RL100``.
* :mod:`repro.analysis.dataflow` — the §3.2/§4 taint pass (untrusted
  web content must pass ``validate_score``/``clamp_score`` before any
  scoring sink, ``RL101``) and process-pool fork-safety (``RL102``).
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 output for CI code scanning.
* :mod:`repro.analysis.baseline` — committed baselines so new findings
  fail CI while tracked legacy debt does not.
* :mod:`repro.analysis.effects` — interprocedural effect inference
  (``mutates:<Class.field>``, ``io``, ``clock``, ``rng``, ``spawns``)
  and the cache-coherence/purity rules ``RL200``–``RL203``, plus the
  ``repro lint --effects`` table (schema ``reprolint-effects/2`` with a
  per-function ``guards`` lock-set column).
* :mod:`repro.analysis.concurrency` — RacerD-style lock-set inference
  over the effect fixpoint and the concurrency-safety rules
  ``RL300``–``RL303`` (shared-state race, check-then-act, non-atomic
  invalidate/rebuild, blocking-under-guard), treating the
  :mod:`repro.util.sync` primitives (``GuardedCache``, ``AtomicSwap``,
  ``ReentrantGuard``) as sanitizers.

Run it as ``repro lint <paths>`` or ``python -m repro.analysis <paths>``;
see :mod:`docs/ANALYSIS.md <docs>` for the rule catalogue.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry, BaselineResult
from .concurrency import (
    CONCURRENT_ROOTS,
    SWAP_PUBLISHED_FIELDS,
    AtomicPublishRule,
    BlockingUnderGuardRule,
    CheckThenActRule,
    ConcurrencyAnalysis,
    SharedStateRaceRule,
    analyze_concurrency,
)
from .effects import (
    DEFAULT_CACHE_REGISTRY,
    EFFECT_TABLE_SCHEMA,
    CacheSpec,
    EffectAnalysis,
    analyze_effects,
    effect_table,
    format_effect_table,
)
from .engine import (
    Finding,
    GraphRule,
    LintEngine,
    Rule,
    RuleContext,
    format_findings,
    format_findings_json,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
)
from .rules import DEFAULT_GRAPH_RULES, DEFAULT_RULES, all_rule_codes
from .sarif import findings_to_sarif, format_findings_sarif
from .symbols import ProjectIndex

__all__ = [
    "AtomicPublishRule",
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "BlockingUnderGuardRule",
    "CONCURRENT_ROOTS",
    "CacheSpec",
    "CheckThenActRule",
    "ConcurrencyAnalysis",
    "DEFAULT_CACHE_REGISTRY",
    "DEFAULT_GRAPH_RULES",
    "DEFAULT_RULES",
    "EFFECT_TABLE_SCHEMA",
    "EffectAnalysis",
    "Finding",
    "GraphRule",
    "LintEngine",
    "ProjectIndex",
    "Rule",
    "RuleContext",
    "SWAP_PUBLISHED_FIELDS",
    "SharedStateRaceRule",
    "all_rule_codes",
    "analyze_concurrency",
    "analyze_effects",
    "effect_table",
    "findings_to_sarif",
    "format_effect_table",
    "format_findings",
    "format_findings_json",
    "format_findings_sarif",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
]
