"""Domain-aware static analysis for the reproduction (**reprolint**).

The paper's information model (§3.1) is built on partial functions with
hard range invariants — trust ``T: A → [-1,+1]⊥`` and ratings
``R: B → [-1,+1]⊥`` — and several subsystems (seeded fault injection,
position-derived parallel seeds, the 1e-9 dual-engine equivalence
contract) depend on invariants that no test can exhaustively check.
This package enforces them at analysis time with an AST-based lint pass:

* :mod:`repro.analysis.engine` — the rule registry, per-file AST visitor,
  ``# reprolint: disable=RLxxx`` suppression handling, and JSON/human
  output formatting.
* :mod:`repro.analysis.rules` — the domain rules (``RL001``–``RL006``),
  each keyed to a paper section or an inter-subsystem contract.

Run it as ``repro lint <paths>`` or ``python -m repro.analysis <paths>``;
see :mod:`docs/ANALYSIS.md <docs>` for the rule catalogue.
"""

from __future__ import annotations

from .engine import (
    Finding,
    LintEngine,
    Rule,
    RuleContext,
    format_findings,
    format_findings_json,
    lint_file,
    lint_paths,
    lint_source,
)
from .rules import DEFAULT_RULES, all_rule_codes

__all__ = [
    "DEFAULT_RULES",
    "Finding",
    "LintEngine",
    "Rule",
    "RuleContext",
    "all_rule_codes",
    "format_findings",
    "format_findings_json",
    "lint_file",
    "lint_paths",
    "lint_source",
]
