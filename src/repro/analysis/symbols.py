"""Whole-program symbol table for the reprograph pass.

The file-at-a-time rules of :mod:`repro.analysis.rules` cannot see that a
trust weight parsed in :mod:`repro.web.crawler` flows unclamped into
Appleseed, or that :mod:`repro.core` quietly grew an import of
:mod:`repro.perf`.  This module builds the shared substrate those
whole-program checks need:

* a dotted **module name** for every linted file (derived from the
  ``__init__.py`` chain, so ``src/repro/web/crawler.py`` becomes
  ``repro.web.crawler`` and a test file stays ``tests.test_foo``);
* every **import record**, classified by scope — executed at module
  import time (``module``), deferred into a function body (``lazy``), or
  guarded by ``if TYPE_CHECKING:`` (``type-checking``);
* per-module **name bindings** (imported name → fully qualified target)
  so call sites can be resolved across module boundaries;
* every **function** with its qualified name and AST, the raw material
  of the taint and fork-safety passes;
* module-level **global bindings** classified as mutable containers or
  RNG state, which is what the fork-safety check hunts for.

Everything here is best-effort static resolution: dynamic dispatch,
``getattr`` and star imports stay unresolved rather than guessed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FunctionInfo",
    "GlobalBinding",
    "ImportRecord",
    "ModuleInfo",
    "ProjectIndex",
    "dotted_name",
    "module_name_for_path",
]

#: Import scopes, in decreasing order of runtime impact.
SCOPE_MODULE = "module"
SCOPE_LAZY = "lazy"
SCOPE_TYPE_CHECKING = "type-checking"

#: Call targets that construct RNG state (module-level instances of these
#: are fork hazards: every worker inherits the same stream position).
_RNG_CONSTRUCTORS = frozenset({"Random", "SystemRandom", "default_rng", "Generator"})

#: Call targets that construct mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "Counter", "OrderedDict", "deque"}
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for_path(path: Path) -> str:
    """Dotted module name of *path*, following the ``__init__.py`` chain.

    ``<root>/repro/web/crawler.py`` → ``repro.web.crawler`` as long as
    ``repro`` and ``repro/web`` are packages; a stray script outside any
    package keeps its bare stem.  ``__init__.py`` names the package
    itself.
    """
    path = path.resolve()
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:  # filesystem root; defensive
            break
        parent = parent.parent
    if not parts:  # a lone __init__.py outside any package
        parts = [path.parent.name]
    return ".".join(parts)


@dataclass(frozen=True, slots=True)
class ImportRecord:
    """One import statement, resolved to a project-relative target."""

    importer: str  #: dotted name of the importing module
    target: str  #: dotted name of the imported module (best-effort)
    names: tuple[str, ...]  #: names bound by ``from target import ...``
    scope: str  #: ``module`` | ``lazy`` | ``type-checking``
    line: int
    column: int
    path: str  #: file path of the importer, for findings


@dataclass(frozen=True, slots=True)
class GlobalBinding:
    """A module-level assignment, classified for fork-safety."""

    name: str
    kind: str  #: ``mutable`` | ``rng`` | ``other``
    line: int
    column: int


@dataclass(slots=True)
class FunctionInfo:
    """A function or method with its location and body."""

    qualname: str  #: ``repro.web.crawler.Crawler.crawl``
    module: str
    name: str  #: local qualified name within the module (``Crawler.crawl``)
    node: ast.FunctionDef | ast.AsyncFunctionDef
    line: int


@dataclass(slots=True)
class ModuleInfo:
    """Everything the graph rules need to know about one module."""

    name: str
    path: str
    tree: ast.Module
    imports: list[ImportRecord] = field(default_factory=list)
    #: local name → fully qualified target (``parse_ntriples`` →
    #: ``repro.semweb.serializer.parse_ntriples``; ``heapq`` → ``heapq``).
    bindings: dict[str, str] = field(default_factory=dict)
    #: local qualified name (``Crawler.crawl``) → function info.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name → AST node, for method resolution.
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: module-level assignments by name.
    globals: dict[str, GlobalBinding] = field(default_factory=dict)


def _classify_global(value: ast.expr) -> str:
    """``mutable`` / ``rng`` / ``other`` for a module-level assignment."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        short = name.rpartition(".")[2] if name else ""
        if short in _RNG_CONSTRUCTORS:
            return "rng"
        if short in _MUTABLE_CONSTRUCTORS:
            return "mutable"
    return "other"


def _is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` guard."""
    name = dotted_name(test)
    return name is not None and name.rpartition(".")[2] == "TYPE_CHECKING"


class _ModuleScanner(ast.NodeVisitor):
    """Single pass over one module collecting imports, defs, and globals."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._scope_stack: list[str] = []  # function nesting → lazy imports
        self._class_stack: list[str] = []
        self._type_checking_depth = 0

    # -- scope helpers -----------------------------------------------------

    @property
    def _scope(self) -> str:
        if self._type_checking_depth:
            return SCOPE_TYPE_CHECKING
        if self._scope_stack:
            return SCOPE_LAZY
        return SCOPE_MODULE

    @property
    def _at_module_level(self) -> bool:
        return not self._scope_stack and not self._class_stack

    # -- imports -----------------------------------------------------------

    def _record(self, target: str, names: tuple[str, ...], node: ast.stmt) -> None:
        self.info.imports.append(
            ImportRecord(
                importer=self.info.name,
                target=target,
                names=names,
                scope=self._scope,
                line=node.lineno,
                column=node.col_offset + 1,
                path=self.info.path,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record(alias.name, (), node)
            if alias.asname:
                self.info.bindings[alias.asname] = alias.name
            else:
                head = alias.name.partition(".")[0]
                self.info.bindings.setdefault(head, head)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = self._resolve_from(node)
        names = tuple(alias.name for alias in node.names)
        self._record(target, names, node)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.info.bindings[local] = f"{target}.{alias.name}" if target else alias.name

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb from the importer's package.
        parts = self.info.name.split(".")
        if self.info.path.endswith("__init__.py"):
            package_parts = parts  # the module *is* its package
        else:
            package_parts = parts[:-1]
        ascent = node.level - 1
        base = package_parts[: len(package_parts) - ascent] if ascent else package_parts
        if node.module:
            return ".".join([*base, node.module]) if base else node.module
        return ".".join(base)

    # -- TYPE_CHECKING guards ----------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    # -- definitions ---------------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        local = ".".join([*self._class_stack, node.name])
        if not self._scope_stack:  # module-level functions and methods only
            self.info.functions[local] = FunctionInfo(
                qualname=f"{self.info.name}.{local}",
                module=self.info.name,
                name=local,
                node=node,
                line=node.lineno,
            )
        self._scope_stack.append(node.name)
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._at_module_level:
            self.info.classes[node.name] = node
            self.info.bindings.setdefault(node.name, f"{self.info.name}.{node.name}")
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- module-level globals ------------------------------------------------

    def _record_global(self, target: ast.expr, value: ast.expr | None) -> None:
        if value is None or not isinstance(target, ast.Name):
            return
        self.info.globals[target.id] = GlobalBinding(
            name=target.id,
            kind=_classify_global(value),
            line=target.lineno,
            column=target.col_offset + 1,
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._at_module_level:
            for target in node.targets:
                self._record_global(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._at_module_level:
            self._record_global(node.target, node.value)
        self.generic_visit(node)


class ProjectIndex:
    """Symbol tables and import records for a set of linted files."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules

    @classmethod
    def build(cls, files: Iterable[str | Path]) -> "ProjectIndex":
        """Parse and index every file; unparseable files are skipped.

        (The per-file rules surface the :class:`SyntaxError`; the graph
        pass works with whatever else is indexable.)
        """
        modules: dict[str, ModuleInfo] = {}
        for file_path in sorted(Path(f) for f in files):
            try:
                source = file_path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(file_path))
            except (OSError, SyntaxError, ValueError):
                continue
            name = module_name_for_path(file_path)
            info = ModuleInfo(name=name, path=str(file_path), tree=tree)
            _ModuleScanner(info).visit(tree)
            modules[name] = info
        index = cls(modules)
        index._canonicalize_targets()
        return index

    def _canonicalize_targets(self) -> None:
        """Rewrite ``from pkg import sub`` records to point at ``pkg.sub``.

        At scan time we cannot know whether an imported name is a
        submodule or an attribute; once every module is indexed, records
        whose target+name matches a known module are split per name, and
        name bindings are upgraded to module bindings.
        """
        for info in self.modules.values():
            rewritten: list[ImportRecord] = []
            for record in info.imports:
                split = False
                if record.names and record.names != ("*",):
                    submodule_names = [
                        name
                        for name in record.names
                        if f"{record.target}.{name}" in self.modules
                    ]
                    if submodule_names:
                        split = True
                        for name in record.names:
                            full = f"{record.target}.{name}"
                            target = full if full in self.modules else record.target
                            rewritten.append(
                                ImportRecord(
                                    importer=record.importer,
                                    target=target,
                                    names=(name,),
                                    scope=record.scope,
                                    line=record.line,
                                    column=record.column,
                                    path=record.path,
                                )
                            )
                if not split:
                    rewritten.append(record)
            info.imports = rewritten

    # -- lookups ---------------------------------------------------------------

    def functions(self) -> Iterator[FunctionInfo]:
        """Every module-level function and method in the project."""
        for module in self._sorted_modules():
            yield from (module.functions[k] for k in sorted(module.functions))

    def _sorted_modules(self) -> Sequence[ModuleInfo]:
        return [self.modules[name] for name in sorted(self.modules)]

    def function(self, qualname: str) -> FunctionInfo | None:
        """Look a function up by fully qualified dotted name."""
        # The local part may itself be Class.method; walk candidate splits.
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is not None:
                found = module.functions.get(".".join(parts[cut:]))
                if found is not None:
                    return found
        return None

    def resolve_call(
        self, module: ModuleInfo, node: ast.expr, class_name: str | None = None
    ) -> str | None:
        """Fully qualified name of a call target, best effort.

        Resolves local definitions, imported names (including dotted
        attribute access on imported modules), and ``self.method`` /
        ``cls.method`` within *class_name*.  Returns ``None`` when the
        target cannot be determined statically.
        """
        if isinstance(node, ast.Name):
            name = node.id
            if name in module.functions:
                return f"{module.name}.{name}"
            if name in module.bindings:
                return module.bindings[name]
            return name  # builtin or unknown global — return bare name
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls") and class_name:
                return f"{module.name}.{class_name}.{node.attr}"
            dotted = dotted_name(node)
            if dotted is None:
                return None
            head, _, rest = dotted.partition(".")
            resolved_head = module.bindings.get(head, head)
            return f"{resolved_head}.{rest}" if rest else resolved_head
        return None
