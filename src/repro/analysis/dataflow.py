"""Interprocedural taint and fork-safety passes (RL101/RL102).

**Taint (RL101).**  The paper's information model (§3.1) keeps every
trust and rating value in ``[-1, +1]``, and §3.2/§4 insist that all
content arrives from *untrusted, machine-readable homepages*.  In code
terms: any number parsed out of a crawled document
(:mod:`repro.web.crawler`, :mod:`repro.web.weblog`,
:mod:`repro.semweb.rdf`) is attacker-controlled until it passes through
a recognized clamp/validate call.  This pass marks parse results
(``literal.to_python()``, ``float(text)``) as tainted, propagates taint
through assignments, containers, arithmetic and function returns (a
fixpoint over ``returns_tainted``), treats
``validate_score``/``clamp_score`` and the validating model
constructors (``TrustStatement``, ``Rating``) as sanitizers, and flags
any call that hands a still-tainted value to the scoring sinks
(``repro.trust.appleseed``, ``repro.trust.advogato``,
``repro.core.similarity``, ``repro.core.profiles``).

**Fork safety (RL102).**  :mod:`repro.perf.parallel` dispatches worker
functions into a process pool.  A worker that reads a module-global RNG
or mutable cache sees a *copy* under ``fork`` (every worker inherits the
same RNG stream position; cache writes silently vanish) and a *fresh,
empty* module under ``spawn`` — either way the global is a correctness
trap.  This pass resolves the callable handed to ``map``/``map_seeded``/
``map_chunked``/``submit`` (unwrapping ``functools.partial``) and flags
workers that read module-level globals classified as RNG state or
mutable containers.

Both passes are best-effort static analysis: dynamic dispatch and
``getattr`` stay unresolved rather than guessed, so the rules err toward
silence, never toward noise.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .engine import Finding, GraphRule
from .symbols import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "FORK_DISPATCH_METHODS",
    "ForkSafetyRule",
    "SANITIZER_NAMES",
    "SINK_PREFIXES",
    "SOURCE_MODULES",
    "TaintRule",
]

#: Modules whose parse results are untrusted input (§3.2/§4 boundary).
SOURCE_MODULES = frozenset(
    {"repro.web.crawler", "repro.web.weblog", "repro.semweb.rdf"}
)

#: Callables that launder a tainted number into the §3.1 value model —
#: matched on the last dotted component of the resolved call target, so
#: ``validate_score(x)``, ``models.clamp_score(x)`` and the validating
#: constructors all count.
SANITIZER_NAMES = frozenset(
    {"validate_score", "clamp_score", "TrustStatement", "Rating"}
)

#: Dotted prefixes of the scoring sinks tainted values must not reach.
SINK_PREFIXES = (
    "repro.trust.appleseed",
    "repro.trust.advogato",
    "repro.core.similarity",
    "repro.core.profiles",
)

#: Methods that hand a callable to other processes.
FORK_DISPATCH_METHODS = frozenset({"map", "map_seeded", "map_chunked", "submit"})


def _sink_prefix(qualname: str) -> str | None:
    for prefix in SINK_PREFIXES:
        if qualname == prefix or qualname.startswith(prefix + "."):
            return prefix
    return None


def _is_sanitizer(qualname: str) -> bool:
    return qualname.rpartition(".")[2] in SANITIZER_NAMES


class _FunctionTaint:
    """Intra-function taint propagation for one function body.

    A forward pass (run twice, so loop-carried taint converges on these
    small bodies) tracks the set of tainted local names, records whether
    any ``return`` expression is tainted, and collects calls that pass a
    tainted argument into a sink module.
    """

    def __init__(
        self,
        project: ProjectIndex,
        module: ModuleInfo,
        func: FunctionInfo,
        returns_tainted: frozenset[str],
    ) -> None:
        self.project = project
        self.module = module
        self.func = func
        self.returns_tainted = returns_tainted
        self.class_name = func.name.rpartition(".")[0] or None
        self.tainted: set[str] = set()
        self.returns_taint = False
        #: (call node, resolved sink qualname) pairs with a tainted arg.
        self.sink_hits: list[tuple[ast.Call, str]] = []
        self._seen_hits: set[tuple[int, int]] = set()

    # -- expression taint ---------------------------------------------------

    def _resolve(self, node: ast.expr) -> str | None:
        return self.project.resolve_call(self.module, node, self.class_name)

    def _is_source_call(self, node: ast.Call) -> bool:
        if self.func.module not in SOURCE_MODULES:
            return False
        if isinstance(node.func, ast.Attribute) and node.func.attr == "to_python":
            return True
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            return bool(node.args) and not isinstance(node.args[0], ast.Constant)
        return False

    def expr_taint(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.IfExp)):
            return any(
                self.expr_taint(child)
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            )
        if isinstance(node, ast.Subscript):
            return self.expr_taint(node.value)
        if isinstance(node, ast.Attribute):
            return self.expr_taint(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_taint(elt) for elt in node.elts)
        if isinstance(node, ast.Dict):
            return any(
                self.expr_taint(part)
                for part in (*node.keys, *node.values)
                if part is not None
            )
        if isinstance(node, ast.Starred):
            return self.expr_taint(node.value)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return self.expr_taint(node.elt) or any(
                self.expr_taint(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.DictComp):
            return (
                self.expr_taint(node.key)
                or self.expr_taint(node.value)
                or any(self.expr_taint(gen.iter) for gen in node.generators)
            )
        if isinstance(node, ast.Await):
            return self.expr_taint(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.expr_taint(node.value)
        return False

    def _call_args_taint(self, node: ast.Call) -> bool:
        return any(self.expr_taint(arg) for arg in node.args) or any(
            self.expr_taint(kw.value) for kw in node.keywords
        )

    def _call_taint(self, node: ast.Call) -> bool:
        resolved = self._resolve(node.func)
        if resolved is not None and _is_sanitizer(resolved):
            return False  # the whole point of the sanitizer
        if self._is_source_call(node):
            return True
        if resolved is not None and resolved in self.returns_tainted:
            return True
        # Unknown or pass-through callable (str(), dict(), min(), bound
        # methods...): taint flows through its arguments.  Method calls on
        # a tainted receiver (``weights.items()``) stay tainted too.
        if self._call_args_taint(node):
            return True
        if isinstance(node.func, ast.Attribute) and self.expr_taint(node.func.value):
            return True
        return False

    # -- sink detection -----------------------------------------------------

    def _check_sink(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is None:
            return
        prefix = _sink_prefix(resolved)
        if prefix is None or _is_sanitizer(resolved):
            return
        if self._call_args_taint(node):
            key = (node.lineno, node.col_offset)
            if key not in self._seen_hits:
                self._seen_hits.add(key)
                self.sink_hits.append((node, resolved))

    # -- statement walk -----------------------------------------------------

    def _bind_target(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tainted)
        elif isinstance(target, (ast.Subscript, ast.Attribute)) and tainted:
            # Storing a tainted value into a container taints the container.
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                self.tainted.add(base.id)

    def _visit_stmts(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        for call in self._calls_in(stmt):
            self._check_sink(call)
        if isinstance(stmt, ast.Assign):
            taint = self.expr_taint(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self.expr_taint(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            if self.expr_taint(stmt.value):
                self._bind_target(stmt.target, True)
        elif isinstance(stmt, ast.Return):
            if self.expr_taint(stmt.value):
                self.returns_taint = True
        elif isinstance(stmt, ast.For):
            self._bind_target(stmt.target, self.expr_taint(stmt.iter))
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self._visit_stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_stmts(stmt.body)
            for handler in stmt.handlers:
                self._visit_stmts(handler.body)
            self._visit_stmts(stmt.orelse)
            self._visit_stmts(stmt.finalbody)
        # Nested defs/classes: skipped (analyzed as their own functions).

    def _calls_in(self, stmt: ast.stmt) -> Iterator[ast.Call]:
        """Calls in *stmt*'s own expressions, not its nested statements."""
        nested: set[int] = set()
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(id(child))
        for child in ast.iter_child_nodes(stmt):
            if id(child) in nested or not isinstance(child, (ast.expr, ast.keyword)):
                continue
            for node in ast.walk(child):
                if isinstance(node, ast.Call):
                    yield node

    def analyze(self) -> None:
        # Two passes let taint assigned late in a loop body reach uses
        # earlier in that body on the second sweep; sink hits accumulate
        # across passes and dedupe by location via ``_seen_hits``.
        for _ in range(2):
            self._visit_stmts(list(self.func.node.body))


class TaintRule(GraphRule):
    """RL101: untrusted parsed value reaches a scoring sink unclamped.

    Runs a ``returns_tainted`` fixpoint over every indexed function so a
    helper that merely *forwards* a parsed value (``_extract_weighted_links``
    returning a dict of floats) carries its taint to the caller, then
    reports each call that passes tainted data into
    ``repro.trust.appleseed``/``advogato`` or
    ``repro.core.similarity``/``profiles`` without a recognized
    ``validate_score``/``clamp_score``/model-constructor sanitizer.
    """

    code = "RL101"
    summary = "untrusted parsed value reaches a scoring sink without clamp/validate"

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        functions = list(project.functions())
        returns_tainted: set[str] = set()
        # Fixpoint on which functions return tainted values.
        for _ in range(len(functions) + 1):
            changed = False
            for func in functions:
                if func.qualname in returns_tainted:
                    continue
                module = project.modules[func.module]
                analysis = _FunctionTaint(
                    project, module, func, frozenset(returns_tainted)
                )
                analysis.analyze()
                if analysis.returns_taint:
                    returns_tainted.add(func.qualname)
                    changed = True
            if not changed:
                break

        frozen = frozenset(returns_tainted)
        for func in functions:
            module = project.modules[func.module]
            analysis = _FunctionTaint(project, module, func, frozen)
            analysis.analyze()
            for call, resolved in analysis.sink_hits:
                yield self.finding(
                    path=module.path,
                    line=call.lineno,
                    column=call.col_offset + 1,
                    message=(
                        f"value parsed from untrusted web content flows into "
                        f"{resolved} without passing validate_score/clamp_score "
                        f"or a validating model constructor (§3.1 range contract)"
                    ),
                )


class ForkSafetyRule(GraphRule):
    """RL102: pool worker reads module-global RNG or mutable cache.

    Finds ``runner.map(...)``/``map_seeded``/``map_chunked``/``submit``
    dispatch sites, resolves the worker callable (through
    ``functools.partial``), and checks the worker's body for reads of
    module-level names classified as RNG state or mutable containers.
    Under ``fork`` each worker inherits a copy (identical RNG streams,
    lost cache writes); under ``spawn`` the module re-initializes empty.
    """

    code = "RL102"
    summary = "process-pool worker references fork-unsafe module-global state"

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for name in sorted(project.modules):
            module = project.modules[name]
            for local_name in sorted(module.functions):
                func = module.functions[local_name]
                class_name = local_name.rpartition(".")[0] or None
                for node in ast.walk(func.node):
                    if not isinstance(node, ast.Call):
                        continue
                    if not isinstance(node.func, ast.Attribute):
                        continue
                    if node.func.attr not in FORK_DISPATCH_METHODS:
                        continue
                    if not node.args:
                        continue
                    worker = self._resolve_worker(
                        project, module, node.args[0], class_name
                    )
                    if worker is None:
                        continue
                    yield from self._check_worker(project, module, node, worker)

    def _resolve_worker(
        self,
        project: ProjectIndex,
        module: ModuleInfo,
        arg: ast.expr,
        class_name: str | None,
    ) -> FunctionInfo | None:
        """The FunctionInfo a dispatch argument refers to, if resolvable."""
        node = arg
        if isinstance(node, ast.Call):
            target = project.resolve_call(module, node.func, class_name)
            is_partial = target is not None and (
                target.rpartition(".")[2] == "partial"
            )
            if not is_partial or not node.args:
                return None
            node = node.args[0]
        qualname = project.resolve_call(module, node, class_name)
        if qualname is None:
            return None
        return project.function(qualname)

    def _check_worker(
        self,
        project: ProjectIndex,
        dispatch_module: ModuleInfo,
        dispatch: ast.Call,
        worker: FunctionInfo,
    ) -> Iterator[Finding]:
        worker_module = project.modules[worker.module]
        hazards = {
            name: binding
            for name, binding in worker_module.globals.items()
            if binding.kind in ("mutable", "rng")
        }
        if not hazards:
            return
        bound = self._locally_bound_names(worker.node)
        reported: set[str] = set()
        for node in ast.walk(worker.node):
            if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
                continue
            name = node.id
            if name in bound or name not in hazards or name in reported:
                continue
            reported.add(name)
            binding = hazards[name]
            kind = "RNG state" if binding.kind == "rng" else "mutable cache"
            yield self.finding(
                path=dispatch_module.path,
                line=dispatch.lineno,
                column=dispatch.col_offset + 1,
                message=(
                    f"worker {worker.qualname} reads module-global {kind} "
                    f"'{name}' ({worker_module.path}:{binding.line}); each "
                    f"pool process gets its own copy, so RNG streams repeat "
                    f"and cache writes are lost — pass the state as an "
                    f"argument instead"
                ),
            )

    @staticmethod
    def _locally_bound_names(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        """Parameter and locally-assigned names of a function."""
        bound: set[str] = set()
        args = node.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            bound.add(arg.arg)
        declared_global: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                bound.add(child.id)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child is not node:
                    bound.add(child.name)
            elif isinstance(child, ast.Global):
                declared_global.update(child.names)
        # ``global X`` makes every access hit the module — X is NOT local.
        return bound - declared_global
