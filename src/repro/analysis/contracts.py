"""Declarative architecture contracts over the package layering (RL100).

The reproduction's packages form a layered architecture that mirrors the
paper's system picture: the §3.1 information model and the §3.2–§3.4
pipeline mathematics sit at the bottom (``repro.core``), the trust
metrics and vectorized engines build directly on it, the Semantic Web
substrate and the simulated Web ingest *into* it, and evaluation /
orchestration sit on top::

            cli / agent / repro (root)          ── orchestration
                      │
                 evaluation                      ── experiments
            ┌────┬────┴────┬─────────┐
          trust perf   datasets     web          ── subsystems
            │    │        │        ┌─┴─┐
            │    │        │      semweb│
            └────┴────┬───┴────────┴───┘
                    core                         ── §3.1 model + pipeline
                  obs util                       ── tracing / sync primitives
                  (analysis: self-contained)

``obs`` (tracing, metrics, the monotonic stopwatch) and ``util`` (the
sanctioned concurrency primitives of :mod:`repro.util.sync`) sit *below*
core: instrumentation and guarded-cache plumbing must be importable from
every layer without creating an upward edge, and both depend on nothing
but the standard library.

A contract names, for each layer, the set of *internal* layers it may
import at module scope.  Violations are RL100 findings anchored at the
offending import.  Two refinements keep the contract honest instead of
aspirational:

* ``TYPE_CHECKING`` imports are always allowed — they cost nothing at
  runtime and exist precisely to type cross-layer seams;
* a small set of **lazy-allowed** edges names the deliberate inversions:
  ``core`` resolves its optional numpy engine out of ``perf`` at call
  time (``engine="auto"``), which is a plugin lookup, not a layering
  dependency.  Any *other* lazy import across a forbidden edge is still
  a violation — deferring an import does not change the architecture.

Known legacy violations (``core.neighborhood``/``core.recommender``
importing ``repro.trust`` at module scope) are deliberately *not*
exempted here; they live in the committed reprolint baseline
(``.reprolint-baseline.json``) as tracked debt, so any new edge of the
same shape fails CI while the old ones await the planned inversion.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from .engine import Finding, GraphRule
from .graph import ROOT_PACKAGE
from .symbols import SCOPE_LAZY, SCOPE_TYPE_CHECKING, ProjectIndex

__all__ = [
    "ArchitectureContractRule",
    "DEFAULT_CONTRACT",
    "LayerContract",
    "layer_of",
]

#: Every layer below the orchestration tier, for the layers allowed to
#: import anything.
_SUBSYSTEMS = frozenset(
    {
        "obs",
        "util",
        "core",
        "trust",
        "perf",
        "semweb",
        "web",
        "datasets",
        "evaluation",
        "analysis",
    }
)


@dataclass(frozen=True)
class LayerContract:
    """Allowed internal imports per layer of one root package.

    ``allowed`` maps layer → the internal layers it may import at module
    scope (its own layer is always allowed).  ``lazy_allowed`` lists
    ``(importer_layer, target_layer)`` edges additionally permitted for
    function-scoped imports, each one a documented inversion.
    ``top_layers`` may import every internal layer.
    """

    package: str = ROOT_PACKAGE
    allowed: dict[str, frozenset[str]] = field(
        default_factory=lambda: {
            # Tracing/metrics/stopwatch: stdlib only, importable from all.
            "obs": frozenset(),
            # Sanctioned sync primitives: stdlib only, importable from all.
            "util": frozenset(),
            # The §3.1 information model and pipeline math; may emit
            # telemetry but depends on no other subsystem.
            "core": frozenset({"obs", "util"}),
            # Trust metrics operate on core's models and score contract.
            "trust": frozenset({"core", "obs", "util"}),
            # The vectorized engines reproduce core's numeric conventions.
            "perf": frozenset({"core", "obs", "util"}),
            # RDF/FOAF documents serialize core models.
            "semweb": frozenset({"core", "obs", "util"}),
            # The simulated Web ingests documents into core models.
            "web": frozenset({"core", "semweb", "obs", "util"}),
            # Synthetic stand-ins for the crawled §4 datasets.
            "datasets": frozenset({"core", "obs", "util"}),
            # reprolint/reprograph: self-contained, imports nothing internal.
            "analysis": frozenset(),
            # Experiments drive every subsystem.
            "evaluation": _SUBSYSTEMS - {"evaluation", "analysis"},
        }
    )
    lazy_allowed: frozenset[tuple[str, str]] = frozenset(
        {
            # engine="auto" resolution: core looks its optional numpy
            # accelerator up at call time; perf imports core, not vice
            # versa, for everything that matters at import time.
            ("core", "perf"),
            # Same inversion one layer down: the group trust metrics
            # resolve their packed-CSR engines (repro.perf.trustmatrix)
            # at compute time, keeping the trust package importable —
            # python oracle intact — on numpy-less installs.
            ("trust", "perf"),
        }
    )
    top_layers: frozenset[str] = frozenset({"cli", "agent", ""})

    def permits(self, importer_layer: str, target_layer: str, scope: str) -> bool:
        """Whether the contract allows this edge at this scope."""
        if importer_layer == target_layer:
            return True
        if importer_layer in self.top_layers:
            return True
        if scope == SCOPE_TYPE_CHECKING:
            return True
        if target_layer in self.allowed.get(importer_layer, frozenset()):
            return True
        if scope == SCOPE_LAZY and (importer_layer, target_layer) in self.lazy_allowed:
            return True
        return False


def layer_of(module: str, package: str = ROOT_PACKAGE) -> str | None:
    """The layer a module belongs to, or ``None`` for external modules.

    ``repro.web.crawler`` → ``web``; ``repro.cli`` → ``cli``; the package
    root ``repro`` itself → ``""`` (top).  Modules outside *package*
    (tests, benchmarks, stdlib) return ``None`` and are never checked.
    """
    if module == package:
        return ""
    prefix = package + "."
    if not module.startswith(prefix):
        return None
    return module[len(prefix):].split(".", 1)[0]


#: The contract `repro lint` enforces by default.
DEFAULT_CONTRACT = LayerContract()


class ArchitectureContractRule(GraphRule):
    """RL100: import that crosses the package layering the wrong way.

    The §3.1 invariants survive only if data enters ``repro.core``
    through its validated constructors — which is a statement about the
    *direction* of dependencies, not about any single file.  This rule
    pins that direction: ``core`` imports nothing internal, subsystems
    import only what sits below them, orchestration imports freely.
    """

    code = "RL100"
    summary = "import violates the package layering contract"

    def __init__(self, contract: LayerContract | None = None) -> None:
        self.contract = contract or DEFAULT_CONTRACT

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        contract = self.contract
        for name in sorted(project.modules):
            info = project.modules[name]
            importer_layer = layer_of(name, contract.package)
            if importer_layer is None:
                continue
            for record in info.imports:
                target_layer = layer_of(record.target, contract.package)
                if target_layer is None:
                    continue
                if contract.permits(importer_layer, target_layer, record.scope):
                    continue
                where = "lazily " if record.scope == SCOPE_LAZY else ""
                importer_label = importer_layer or contract.package
                allowed = contract.allowed.get(importer_layer, frozenset())
                permitted = (
                    ", ".join(sorted(allowed)) if allowed else "no internal layer"
                )
                yield self.finding(
                    path=record.path,
                    line=record.line,
                    column=record.column,
                    message=(
                        f"layer '{importer_label}' {where}imports "
                        f"'{record.target}' (layer '{target_layer}'), but the "
                        f"architecture contract allows it {permitted} only"
                    ),
                )
