"""Finding baselines: ratchet CI without rewriting history first.

A baseline is a committed JSON file listing the findings a repository
has *accepted as legacy debt*.  With ``repro lint --baseline FILE``:

* a finding matching a baseline entry is **suppressed** (it is tracked
  debt, not a regression);
* a finding with no matching entry is **new** and fails the run;
* a baseline entry that no longer matches any finding is **stale** and
  also fails the run — the debt was paid, so the entry must be deleted
  (``--write-baseline`` regenerates the file).  This is the "expire"
  half of the add/expire workflow: baselines only ever shrink unless a
  human deliberately regenerates them.

Entries are matched by *fingerprint*: ``(path, code, stripped source
line text)``.  Using the line's text instead of its number keeps the
baseline stable across unrelated edits that shift line numbers, while
still expiring the entry when the offending line itself changes.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from .engine import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "fingerprint",
]

_FORMAT_VERSION = 1


def _line_text(path: str, line: int, cache: dict[str, tuple[str, ...]]) -> str:
    """Stripped text of ``path:line``, or ``""`` when unreadable."""
    if path not in cache:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            cache[path] = ()
        else:
            cache[path] = tuple(text.splitlines())
    lines = cache[path]
    if 1 <= line <= len(lines):
        return lines[line - 1].strip()
    return ""


def fingerprint(
    finding: Finding, cache: dict[str, tuple[str, ...]]
) -> tuple[str, str, str]:
    """``(path, code, stripped line text)`` — survives line drift."""
    return (
        finding.path.replace("\\", "/"),
        finding.code,
        _line_text(finding.path, finding.line, cache),
    )


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One accepted legacy finding."""

    path: str
    code: str
    text: str  #: stripped source line the finding anchors to

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.path, self.code, self.text)


@dataclass(slots=True)
class BaselineResult:
    """Outcome of applying a baseline to a finding list."""

    new: list[Finding]  #: findings not covered by the baseline — fail CI
    suppressed: list[Finding]  #: tracked legacy findings — reported, pass
    stale: list[BaselineEntry]  #: entries nothing matched — must be removed

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale


class Baseline:
    """A set of accepted findings, loadable from / writable to JSON."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        payload = json.loads(file_path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {file_path} "
                f"(expected {_FORMAT_VERSION})"
            )
        entries = [
            BaselineEntry(
                path=str(entry["path"]),
                code=str(entry["code"]),
                text=str(entry["text"]),
            )
            for entry in payload.get("entries", [])
        ]
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        cache: dict[str, tuple[str, ...]] = {}
        seen: set[tuple[str, str, str]] = set()
        entries: list[BaselineEntry] = []
        for finding in findings:
            path, code, text = fingerprint(finding, cache)
            key = (path, code, text)
            if key in seen:
                continue
            seen.add(key)
            entries.append(BaselineEntry(path=path, code=code, text=text))
        entries.sort(key=lambda e: e.key)
        return cls(entries)

    def apply(self, findings: Sequence[Finding]) -> BaselineResult:
        """Split findings into new vs. suppressed; detect stale entries."""
        cache: dict[str, tuple[str, ...]] = {}
        matched: set[tuple[str, str, str]] = set()
        known = {entry.key for entry in self.entries}
        new: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            key = fingerprint(finding, cache)
            if key in known:
                matched.add(key)
                suppressed.append(finding)
            else:
                new.append(finding)
        stale = [entry for entry in self.entries if entry.key not in matched]
        return BaselineResult(new=new, suppressed=suppressed, stale=stale)

    def dump(self) -> str:
        """The baseline as stable, committable JSON."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {"path": e.path, "code": e.code, "text": e.text}
                for e in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.dump(), encoding="utf-8")
