"""Interprocedural effect inference and the cache-coherence rules (RL200–RL203).

The paper's architecture assumes long-lived machine agents that keep
ingesting trust statements and ratings *while* serving recommendations
(§2, §4.1).  Our runtime caches — :class:`ProfileStore`'s profile dict
and packed matrix, the taxonomy builder's path/descriptor memos, the
rating predictor's weight cache, :class:`TrustGraph`'s positive-successor
index — are invalidated by convention only, which makes "incremental
everything" a stale-read minefield: one missed ``invalidate()`` in a
daemon silently serves yesterday's scores forever.

This module computes, per function, a conservative **effect set** over a
small vocabulary of atoms:

``mutates:<Class.field>``
    an attribute of ``self`` or of a typed parameter/attribute is
    (re)assigned, deleted, or container-mutated (``.clear()``,
    ``[k] = v``, ``+=``, ...); ``Class`` is the fully-qualified class.
``mutates:global``
    a module-level binding is rebound (``global``) or container-mutated.
``io`` / ``clock`` / ``rng`` / ``spawns``
    file/stream traffic, wall/monotonic clock reads, module-level RNG
    draws (seeded ``random.Random``/``default_rng`` construction and
    draws on injected generator objects are *not* effects — that is the
    RL001 contract), and process/thread pool creation.

Direct effects are extracted from each body, then propagated to callers
via a fixpoint over the :class:`~repro.analysis.symbols.ProjectIndex`
call graph (the RL101 ``returns_tainted`` pattern), resolving
``self.attr.method()`` chains through a lightweight type environment
(dataclass field annotations, ``self.x = param`` in ``__init__``,
constructor-typed locals) and unwrapping ``functools.partial`` plus the
``map``/``map_seeded``/``map_chunked``/``submit`` dispatchers exactly as
RL102 does.  Constructing a class does **not** import its ``__init__``
effects: initializing a fresh object is not a mutation of pre-existing
state.  Like every reprograph pass this is best-effort static analysis —
dynamic dispatch and untyped receivers stay unresolved, erring toward
silence, never toward noise.

On top of the inferred table sit four graph rules:

``RL200``
    cache coherence — a declarative :data:`DEFAULT_CACHE_REGISTRY` maps
    cache fields to the backing state they derive from; any function
    that mutates backing state while a registered cache owner is in
    scope (``self``, a typed attribute, a typed parameter) must also
    reach the paired invalidation, and anything *named* like an
    invalidator must clear every registered field of every visible
    owner (no partial invalidation).
``RL201``
    purity contract — query entry points (``recommend``,
    ``peer_weights``, ``top_similar``, ``predict``, the trust metrics'
    ``compute``, the perf kernels) must carry no ``mutates:*`` effect
    outside the declared cache fields.
``RL202``
    seeded randomness, interprocedurally — no ``rng`` effect may reach a
    query/experiment entry point; randomness must arrive as a seeded
    ``random.Random`` parameter (RL001 generalized across calls).
``RL203``
    layer hygiene — no ``io``/``clock`` effects inside ``repro.core``/
    ``repro.trust``/``repro.perf``; instrumentation through
    :mod:`repro.obs` (Stopwatch, tracer, metrics) is allowlisted by
    recomputing the fixpoint with ``repro.obs.*`` callees ignored.

``repro lint --effects FILE`` serializes the table as deterministic JSON
(:data:`EFFECT_TABLE_SCHEMA`, sorted keys) so future PRs can diff purity
regressions.  Schema ``reprolint-effects/2`` carries, per function, both
the effect atoms and the inferred lock set (``guards``) computed by the
RL300-series pass in :mod:`repro.analysis.concurrency`.

The sanctioned primitives of :mod:`repro.util.sync` get special
classification: ``cache.get_or_build``/``store``/``invalidate``/
``swap``/``clear`` on a typed :class:`GuardedCache`/:class:`AtomicSwap`
attribute count as mutations of *that field* (so the RL200/RL201
registry pairings keep their ``ProfileStore._cache``-style atom names
instead of leaking ``GuardedCache._data`` internals), and the builder
passed to ``get_or_build`` becomes a call edge so its effects propagate.
"""

from __future__ import annotations

import ast
import json
import re
import weakref
from collections.abc import Iterator
from dataclasses import dataclass

from .dataflow import FORK_DISPATCH_METHODS, ForkSafetyRule
from .engine import Finding, GraphRule
from .symbols import FunctionInfo, ModuleInfo, ProjectIndex, dotted_name

__all__ = [
    "CacheCoherenceRule",
    "CacheSpec",
    "DEFAULT_CACHE_REGISTRY",
    "EFFECT_TABLE_SCHEMA",
    "EffectAnalysis",
    "LayerPurityRule",
    "PURE_ENTRY_POINTS",
    "PurityContractRule",
    "SYNC_MODULE",
    "SYNC_GUARDED_METHODS",
    "SYNC_MUTATOR_METHODS",
    "SYNC_PRIMITIVE_CLASSES",
    "SeededRandomnessRule",
    "analyze_effects",
    "effect_table",
    "format_effect_table",
    "is_sync_primitive",
]

#: Schema identifier stamped into every serialized effect table; CI
#: fails on drift (scripts/check_effect_table.py).  ``/2`` added the
#: per-function ``guards`` lock set next to ``effects``.
EFFECT_TABLE_SCHEMA = "reprolint-effects/2"

EFFECT_IO = "io"
EFFECT_CLOCK = "clock"
EFFECT_RNG = "rng"
EFFECT_SPAWNS = "spawns"
MUTATES_GLOBAL = "mutates:global"

#: Seeded RNG construction is fine (the RL001 convention); drawing from
#: the module-level generators is the effect.
_SEEDED_CONSTRUCTORS = frozenset({"Random", "SystemRandom", "default_rng", "Generator"})
_RANDOM_MODULES = frozenset({"random", "np.random", "numpy.random"})

#: Wall/monotonic clock reads (the RL007 set plus sleeps and datetime).
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.thread_time",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Bare builtins that touch streams.
_IO_CALLS = frozenset({"open", "print", "input", "breakpoint"})
#: Unambiguous IO method names (pathlib/urllib); deliberately *not*
#: bare ``write``/``read``, which collide with domain methods.
_IO_METHOD_NAMES = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "urlopen",
        "urlretrieve",
        "makedirs",
    }
)
_IO_PREFIXES = ("shutil.", "socket.", "sys.stdout.", "sys.stderr.", "os.")
#: ``os.`` calls that only read process-local facts, not the world.
_IO_EXEMPT = frozenset({"os.cpu_count", "os.getpid", "os.getcwd"})

_SPAWN_PREFIXES = ("subprocess.", "multiprocessing.")
_SPAWN_NAMES = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool", "Process", "Popen", "fork"}
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)

#: Functions whose *name* promises invalidation (RL200's partial-
#: invalidation check only applies to these, so cache *fills* like
#: ``ProfileStore.profile`` are never mistaken for incomplete clears).
_INVALIDATOR_RE = re.compile(r"invalidate|_reset_cache|drop_cache", re.IGNORECASE)

#: Instrumentation layer whose callees RL201/RL203 ignore.
_OBS_PREFIX = "repro.obs"

#: The sanctioned concurrency primitives (sanitizers for RL300–RL303).
SYNC_MODULE = "repro.util.sync"
SYNC_PRIMITIVE_CLASSES = frozenset({"GuardedCache", "AtomicSwap", "ReentrantGuard"})
#: Primitive methods that (re)write the owning field's contents in a
#: caller-visible way.  ``get_or_build`` is deliberately absent: a
#: memoized fill through the sanctioned primitive is semantically a
#: guarded *read* (idempotent, invisible to any caller), so memoizing a
#: reader must not turn it into a writer in the effect lattice.
SYNC_MUTATOR_METHODS = frozenset({"store", "invalidate", "swap", "clear"})
#: Primitive methods that enter the guard's critical section — what the
#: concurrency analysis treats as implicit lock acquisitions.
SYNC_GUARDED_METHODS = SYNC_MUTATOR_METHODS | frozenset({"get_or_build"})


def is_sync_primitive(class_qualname: str) -> bool:
    """Whether *class_qualname* names one of the ``repro.util.sync`` primitives."""
    module_part, _, short = class_qualname.rpartition(".")
    return module_part == SYNC_MODULE and short in SYNC_PRIMITIVE_CLASSES


# ---------------------------------------------------------------------------
# The declarative cache registry (RL200/RL201).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheSpec:
    """One coherence pairing: cache fields and the state they mirror.

    ``backing`` lists fully-qualified *fields* whose mutation invalidates
    the caches; ``caches`` maps each owner class to its cache fields.  A
    spec with empty ``backing`` declares caches over immutable state
    (coherent by construction) purely so RL201 can allowlist the fills.
    """

    name: str
    backing: tuple[str, ...]
    caches: tuple[tuple[str, tuple[str, ...]], ...]
    invalidate_hint: str

    @property
    def backing_atoms(self) -> frozenset[str]:
        return frozenset(f"mutates:{field}" for field in self.backing)

    def cache_atoms(self, owner: str) -> frozenset[str]:
        for candidate, fields in self.caches:
            if candidate == owner:
                return frozenset(f"mutates:{owner}.{field}" for field in fields)
        return frozenset()

    @property
    def owners(self) -> tuple[str, ...]:
        return tuple(owner for owner, _ in self.caches)

    @property
    def all_cache_atoms(self) -> frozenset[str]:
        atoms: set[str] = set()
        for owner, _ in self.caches:
            atoms |= self.cache_atoms(owner)
        return frozenset(atoms)


_DATASET = "repro.core.models.Dataset"
_PROFILE_STORE = "repro.core.recommender.ProfileStore"
_PURE_CF = "repro.core.recommender.PureCFRecommender"
_PREDICTOR = "repro.core.prediction.RatingPredictor"
_TRUST_GRAPH = "repro.trust.graph.TrustGraph"
_TAXONOMY = "repro.core.taxonomy.Taxonomy"
_BUILDER = "repro.core.profiles.TaxonomyProfileBuilder"
_DIVERSIFIER = "repro.core.diversify.TopicDiversifier"
_PROFILE_MATRIX = "repro.perf.matrix.ProfileMatrix"

#: The repository's cache-coherence pairings.  Every cache field named
#: here is also RL201's allowlist: filling a declared cache is not a
#: purity violation.
DEFAULT_CACHE_REGISTRY: tuple[CacheSpec, ...] = (
    CacheSpec(
        name="profile-caches",
        backing=(
            f"{_DATASET}.agents",
            f"{_DATASET}.products",
            f"{_DATASET}.ratings",
            f"{_DATASET}.trust",
        ),
        caches=(
            (_PROFILE_STORE, ("_cache", "_matrix")),
            (_PURE_CF, ("_product_profiles", "_product_matrix")),
            (_PREDICTOR, ("_weight_cache",)),
        ),
        invalidate_hint=(
            "ProfileStore.invalidate() / PureCFRecommender.invalidate_cache() "
            "(a RatingPredictor must be rebuilt)"
        ),
    ),
    CacheSpec(
        name="trust-successor-cache",
        backing=(f"{_TRUST_GRAPH}._succ", f"{_TRUST_GRAPH}._pred"),
        caches=((_TRUST_GRAPH, ("_pos_succ",)),),
        invalidate_hint=(
            "maintain _pos_succ in the same mutator, as add_edge/remove_edge do"
        ),
    ),
    CacheSpec(
        name="taxonomy-caches",
        backing=(
            f"{_TAXONOMY}._parent",
            f"{_TAXONOMY}._children",
            f"{_TAXONOMY}._labels",
            f"{_TAXONOMY}._depth",
        ),
        caches=(
            (_BUILDER, ("_path_cache", "_descriptor_cache")),
            (_DIVERSIFIER, ("_profile_cache",)),
        ),
        invalidate_hint=(
            "TaxonomyProfileBuilder.invalidate() / TopicDiversifier.invalidate()"
        ),
    ),
    CacheSpec(
        name="packed-matrix-lazy-fields",
        backing=(),
        caches=((_PROFILE_MATRIX, ("_dense_sq", "_topic_rows")),),
        invalidate_hint=(
            "ProfileMatrix is immutable after construction; its lazily "
            "derived fields are coherent by construction"
        ),
    ),
)


#: Query entry points bound by the RL201 purity contract and the RL202
#: randomness contract: (module prefix, method/function names).
PURE_ENTRY_POINTS: tuple[tuple[str, frozenset[str]], ...] = (
    ("repro.core.neighborhood", frozenset({"form"})),
    ("repro.core.prediction", frozenset({"predict", "predict_many"})),
    ("repro.core.recommender", frozenset({"recommend", "peer_weights"})),
    ("repro.core.similarity", frozenset({"top_similar"})),
    ("repro.core.diversify", frozenset({"rerank", "ils"})),
    (
        "repro.perf.engine",
        frozenset({"community_scores", "rank_profiles"}),
    ),
    (
        "repro.perf.kernels",
        frozenset(
            {"pearson_many", "cosine_many", "similarity_many", "top_k", "top_k_pairs"}
        ),
    ),
    ("repro.trust", frozenset({"compute", "rank_many"})),
)

#: Layers that must stay free of io/clock effects (RL203).
_PURE_LAYER_PREFIXES = ("repro.core", "repro.trust", "repro.perf")


def _module_in(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def _is_entry_point(func: FunctionInfo) -> bool:
    short = func.name.rpartition(".")[2]
    return any(
        _module_in(func.module, prefix) and short in names
        for prefix, names in PURE_ENTRY_POINTS
    )


# ---------------------------------------------------------------------------
# Effect inference.
# ---------------------------------------------------------------------------


@dataclass
class _ScanContext:
    """Per-function environment for direct-effect extraction."""

    module: ModuleInfo
    class_name: str | None  #: enclosing ``Class`` (dotted for nesting)
    self_class: str | None  #: fully qualified, when a method
    params: dict[str, str]  #: parameter name → class qualname
    locals: dict[str, str]  #: constructor-typed locals → class qualname
    bound: set[str]  #: locally bound names (params, stores, nested defs)
    global_decls: set[str]  #: names declared ``global``


class EffectAnalysis:
    """Direct effects + call edges for one project, with cached fixpoints.

    Shared by all four RL2xx rules through :func:`analyze_effects`, so
    one lint invocation pays for one inference pass regardless of how
    many rules consume it.
    """

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        #: class qualname → attribute name → type qualname.
        self.class_attr_types: dict[str, dict[str, str]] = {}
        self._class_names: set[str] = {
            f"{module.name}.{cls}"
            for module in project.modules.values()
            for cls in module.classes
        }
        self.direct: dict[str, set[str]] = {}
        self.callees: dict[str, set[str]] = {}
        #: caller → callee → class qualnames whose ``mutates:`` atoms do
        #: NOT propagate along that edge: every call site invokes the
        #: method on a locally-constructed receiver, so its
        #: self-mutations are invisible to the caller's callers
        #: (``sub = TrustGraph(); sub.add_edge(...)`` builds fresh state,
        #: it doesn't mutate shared state).  io/clock/rng/spawns always
        #: propagate.
        self.edge_masks: dict[str, dict[str, frozenset[str]]] = {}
        #: function → effect → human-readable origin ("time.perf_counter").
        self.origins: dict[str, dict[str, str]] = {}
        self.param_types: dict[str, dict[str, str]] = {}
        self._tables: dict[bool, dict[str, frozenset[str]]] = {}
        self._build_class_table()
        for func in project.functions():
            self._scan(func)

    # -- the type environment ------------------------------------------------

    def _build_class_table(self) -> None:
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            for cls_name in sorted(module.classes):
                node = module.classes[cls_name]
                qual = f"{module.name}.{cls_name}"
                attrs: dict[str, str] = {}
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        typed = self._annotation_class(module, stmt.annotation)
                        if typed is not None:
                            attrs[stmt.target.id] = typed
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if stmt.name in ("__init__", "__post_init__"):
                            self._harvest_init(module, stmt, attrs)
                self.class_attr_types[qual] = attrs

    def _harvest_init(
        self,
        module: ModuleInfo,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        attrs: dict[str, str],
    ) -> None:
        """``self.x = <typed thing>`` assignments type the attribute."""
        param_types = self._parameter_types(module, init)
        for stmt in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                if isinstance(target, ast.Attribute):
                    typed = self._annotation_class(module, stmt.annotation)
                    if (
                        typed is not None
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.setdefault(target.attr, typed)
                        continue
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            typed = self._value_class(module, value, param_types)
            if typed is not None:
                attrs.setdefault(target.attr, typed)

    def _value_class(
        self,
        module: ModuleInfo,
        value: ast.expr | None,
        param_types: dict[str, str],
    ) -> str | None:
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        if isinstance(value, ast.Call):
            resolved = self.project.resolve_call(module, value.func)
            if resolved in self._class_names:
                return resolved
        if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
            for operand in value.values:
                typed = self._value_class(module, operand, param_types)
                if typed is not None:
                    return typed
        return None

    def _parameter_types(
        self, module: ModuleInfo, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        types: dict[str, str] = {}
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("self", "cls") or arg.annotation is None:
                continue
            typed = self._annotation_class(module, arg.annotation)
            if typed is not None:
                types[arg.arg] = typed
        return types

    def _annotation_class(
        self, module: ModuleInfo, annotation: ast.expr
    ) -> str | None:
        """Resolve an annotation to a class qualname, unwrapping unions.

        ``ProfileStore | None``, ``Optional[TrustGraph]``, string
        annotations, and subscripted generics all resolve —
        ``GuardedCache[str, Profile]`` types the attribute as
        ``repro.util.sync.GuardedCache`` so the sync-primitive
        classification below sees through parameterized fields.  A base
        that is not a project class (``dict[str, float]``) resolves to a
        name no downstream table knows, which is equivalent to ``None``.
        """
        node: ast.expr | None = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                typed = self._annotation_class(module, side)
                if typed is not None:
                    return typed
            return None
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base is not None and base.rpartition(".")[2] == "Optional":
                inner = node.slice
                return self._annotation_class(module, inner)
            return self._annotation_class(module, node.value)
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_name(node)
            if dotted is None or dotted in ("None",):
                return None
            head, _, rest = dotted.partition(".")
            resolved = module.bindings.get(head, head)
            full = f"{resolved}.{rest}" if rest else resolved
            return full if full != "None" else None
        return None

    # -- per-function scan ---------------------------------------------------

    def _context(self, func: FunctionInfo) -> _ScanContext:
        """The per-function scan environment.

        Shared with :mod:`repro.analysis.concurrency`, whose block-level
        walk re-classifies the same accesses with lock-set context.
        """
        module = self.project.modules[func.module]
        class_name = func.name.rpartition(".")[0] or None
        ctx = _ScanContext(
            module=module,
            class_name=class_name,
            self_class=f"{module.name}.{class_name}" if class_name else None,
            params=self._parameter_types(module, func.node),
            locals={},
            bound=ForkSafetyRule._locally_bound_names(func.node),
            global_decls=set(),
        )
        self._type_locals(ctx, func.node)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Global):
                ctx.global_decls.update(node.names)
        return ctx

    def _scan(self, func: FunctionInfo) -> None:
        ctx = self._context(func)
        direct: set[str] = set()
        origins: dict[str, str] = {}
        callees: dict[str, set[str]] = {}
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._write_target(target, ctx, direct, origins)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if not (isinstance(node, ast.AnnAssign) and node.value is None):
                    self._write_target(node.target, ctx, direct, origins)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._write_target(target, ctx, direct, origins)
            elif isinstance(node, ast.Call):
                self._classify_call(node, ctx, direct, origins, callees)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                binding = ctx.module.globals.get(node.id)
                if (
                    binding is not None
                    and binding.kind == "rng"
                    and node.id not in ctx.bound
                ):
                    direct.add(EFFECT_RNG)
                    origins.setdefault(EFFECT_RNG, f"module global {node.id!r}")
        self.direct[func.qualname] = direct
        self.origins[func.qualname] = origins
        self.callees[func.qualname] = set(callees)
        self.edge_masks[func.qualname] = {
            callee: frozenset(mask) for callee, mask in callees.items() if mask
        }
        self.param_types[func.qualname] = ctx.params

    def _type_locals(
        self, ctx: _ScanContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """One forward pass typing constructor-assigned locals."""
        for stmt in ast.walk(node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(stmt.value, ast.Call):
                resolved = self.project.resolve_call(
                    ctx.module, stmt.value.func, ctx.class_name
                )
                if resolved in self._class_names:
                    ctx.locals[target.id] = resolved

    # -- receivers -----------------------------------------------------------

    def _stateful_receiver(self, expr: ast.expr, ctx: _ScanContext) -> str | None:
        """Class qualname when *expr* names caller-visible state.

        ``self``, typed parameters, and typed-attribute chains rooted in
        them qualify.  Locals do **not**: mutating a freshly constructed
        object is not an effect on pre-existing state.
        """
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return ctx.self_class
            return ctx.params.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._stateful_receiver(expr.value, ctx)
            if base is not None:
                return self.class_attr_types.get(base, {}).get(expr.attr)
        return None

    def _receiver_class(self, expr: ast.expr, ctx: _ScanContext) -> str | None:
        """Like :meth:`_stateful_receiver` but also types locals and
        constructor results — used only for *call* resolution."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return ctx.self_class
            return ctx.params.get(expr.id) or ctx.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._receiver_class(expr.value, ctx)
            if base is not None:
                return self.class_attr_types.get(base, {}).get(expr.attr)
        if isinstance(expr, ast.Call):
            resolved = self.project.resolve_call(ctx.module, expr.func, ctx.class_name)
            if resolved in self._class_names:
                return resolved
        return None

    # -- writes --------------------------------------------------------------

    def _write_target(
        self,
        target: ast.expr,
        ctx: _ScanContext,
        direct: set[str],
        origins: dict[str, str],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_target(elt, ctx, direct, origins)
        elif isinstance(target, ast.Starred):
            self._write_target(target.value, ctx, direct, origins)
        elif isinstance(target, ast.Name):
            if target.id in ctx.global_decls:
                direct.add(MUTATES_GLOBAL)
                origins.setdefault(MUTATES_GLOBAL, f"global {target.id}")
        elif isinstance(target, ast.Subscript):
            self._write_through(target.value, ctx, direct, origins)
        elif isinstance(target, ast.Attribute):
            cls = self._stateful_receiver(target.value, ctx)
            if cls is not None:
                atom = f"mutates:{cls}.{target.attr}"
                direct.add(atom)
                origins.setdefault(atom, f"assignment to .{target.attr}")
            else:
                self._write_through(target.value, ctx, direct, origins)

    def _write_through(
        self,
        container: ast.expr,
        ctx: _ScanContext,
        direct: set[str],
        origins: dict[str, str],
    ) -> None:
        """A store *through* a container expression mutates the container."""
        if isinstance(container, ast.Subscript):
            self._write_through(container.value, ctx, direct, origins)
        elif isinstance(container, ast.Attribute):
            cls = self._stateful_receiver(container.value, ctx)
            if cls is not None:
                atom = f"mutates:{cls}.{container.attr}"
                direct.add(atom)
                origins.setdefault(atom, f"store through .{container.attr}")
        elif isinstance(container, ast.Name):
            name = container.id
            if name in ctx.global_decls or (
                name in ctx.module.globals and name not in ctx.bound
            ):
                direct.add(MUTATES_GLOBAL)
                origins.setdefault(MUTATES_GLOBAL, f"store through global {name!r}")

    # -- calls ---------------------------------------------------------------

    def _resolve_call_target(self, call: ast.Call, ctx: _ScanContext) -> str | None:
        """Type-aware call resolution: typed receivers beat name lookup."""
        if isinstance(call.func, ast.Attribute):
            receiver = self._receiver_class(call.func.value, ctx)
            if receiver is not None:
                candidate = f"{receiver}.{call.func.attr}"
                if self.project.function(candidate) is not None:
                    return candidate
        return self.project.resolve_call(ctx.module, call.func, ctx.class_name)

    def _function_ref(self, expr: ast.expr, ctx: _ScanContext) -> str | None:
        """A bare function reference (worker arg), through ``partial``."""
        node = expr
        if isinstance(node, ast.Call):
            target = self.project.resolve_call(ctx.module, node.func, ctx.class_name)
            if target is None or target.rpartition(".")[2] != "partial":
                return None
            if not node.args:
                return None
            node = node.args[0]
        if isinstance(node, ast.Attribute):
            receiver = self._receiver_class(node.value, ctx)
            if receiver is not None:
                candidate = f"{receiver}.{node.attr}"
                if self.project.function(candidate) is not None:
                    return candidate
        qualname = self.project.resolve_call(ctx.module, node, ctx.class_name)
        if qualname is not None and self.project.function(qualname) is not None:
            return qualname
        return None

    @staticmethod
    def _add_edge(
        callees: dict[str, set[str]], callee: str, mask: frozenset[str] = frozenset()
    ) -> None:
        """Record a call edge; the mask survives only if *every* call
        site of this callee is masked (intersection semantics)."""
        if callee in callees:
            callees[callee] &= mask
        else:
            callees[callee] = set(mask)

    def _classify_call(
        self,
        call: ast.Call,
        ctx: _ScanContext,
        direct: set[str],
        origins: dict[str, str],
        callees: dict[str, set[str]],
    ) -> None:
        resolved = self._resolve_call_target(call, ctx)

        # functools.partial(worker, ...) defers the worker's effects to
        # whoever calls the partial; attribute dispatchers (map/submit)
        # definitely run it — either way the edge is real.
        if (
            resolved is not None
            and resolved.rpartition(".")[2] == "partial"
            and call.args
        ):
            ref = self._function_ref(call.args[0], ctx)
            if ref is not None:
                self._add_edge(callees, ref)
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in FORK_DISPATCH_METHODS
            and call.args
        ):
            ref = self._function_ref(call.args[0], ctx)
            if ref is not None:
                self._add_edge(callees, ref)
                direct.add(EFFECT_SPAWNS)
                origins.setdefault(EFFECT_SPAWNS, f".{call.func.attr}() dispatch")

        # Calls on a repro.util.sync primitive: classify against the
        # *owning field* and never descend into the primitive's body, so
        # registry atoms keep their domain names (ProfileStore._cache,
        # not GuardedCache._data).
        if isinstance(call.func, ast.Attribute):
            receiver_cls = self._receiver_class(call.func.value, ctx)
            if receiver_cls is not None and is_sync_primitive(receiver_cls):
                self._classify_sync_call(call, ctx, direct, origins, callees)
                return

        if resolved is not None:
            if self.project.function(resolved) is not None:
                mask: frozenset[str] = frozenset()
                if isinstance(call.func, ast.Attribute):
                    receiver = self._receiver_class(call.func.value, ctx)
                    if (
                        receiver is not None
                        and self._stateful_receiver(call.func.value, ctx) is None
                    ):
                        # A method on a freshly-constructed local object:
                        # its self-mutations stay local to this function.
                        mask = frozenset({receiver})
                self._add_edge(callees, resolved, mask)
                return
            if resolved in self._class_names:
                # Constructing a fresh object: its __init__ writes are
                # initialization, not mutation of caller-visible state.
                return
            self._classify_external(call, resolved, direct, origins)
        self._classify_mutator_call(call, ctx, direct, origins)

    def _classify_sync_call(
        self,
        call: ast.Call,
        ctx: _ScanContext,
        direct: set[str],
        origins: dict[str, str],
        callees: dict[str, set[str]],
    ) -> None:
        """A method call on a ``repro.util.sync`` primitive.

        Overwriting or clearing the primitive mutates the *field that
        holds it* (when that field is caller-visible state); the builder
        callable handed to ``get_or_build`` is a real call edge, but the
        memoized fill itself is a guarded read, not a mutation.  Plain
        reads (``get``/``peek``/``snapshot``/``held``) are effect-free.
        """
        assert isinstance(call.func, ast.Attribute)
        method = call.func.attr
        receiver = call.func.value
        if method in SYNC_MUTATOR_METHODS and isinstance(receiver, ast.Attribute):
            cls = self._stateful_receiver(receiver.value, ctx)
            if cls is not None:
                atom = f"mutates:{cls}.{receiver.attr}"
                direct.add(atom)
                origins.setdefault(atom, f".{receiver.attr}.{method}()")
        if method == "get_or_build" and call.args:
            ref = self._function_ref(call.args[-1], ctx)
            if ref is not None:
                self._add_edge(callees, ref)

    def _classify_external(
        self,
        call: ast.Call,
        resolved: str,
        direct: set[str],
        origins: dict[str, str],
    ) -> None:
        module_part, _, last = resolved.rpartition(".")
        if module_part in _RANDOM_MODULES:
            seeded = last in _SEEDED_CONSTRUCTORS and bool(
                call.args or call.keywords
            )
            if not seeded:
                direct.add(EFFECT_RNG)
                origins.setdefault(EFFECT_RNG, resolved)
            return
        if resolved in _CLOCK_CALLS:
            direct.add(EFFECT_CLOCK)
            origins.setdefault(EFFECT_CLOCK, resolved)
            return
        if last in _SPAWN_NAMES or resolved.startswith(_SPAWN_PREFIXES):
            direct.add(EFFECT_SPAWNS)
            origins.setdefault(EFFECT_SPAWNS, resolved)
            if resolved.startswith("subprocess."):
                direct.add(EFFECT_IO)
                origins.setdefault(EFFECT_IO, resolved)
            return
        if resolved in _IO_EXEMPT:
            return
        if (
            resolved in _IO_CALLS
            or last in _IO_METHOD_NAMES
            or resolved.startswith(_IO_PREFIXES)
        ):
            direct.add(EFFECT_IO)
            origins.setdefault(EFFECT_IO, resolved)

    def _classify_mutator_call(
        self,
        call: ast.Call,
        ctx: _ScanContext,
        direct: set[str],
        origins: dict[str, str],
    ) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        if call.func.attr not in _MUTATOR_METHODS:
            return
        base = call.func.value
        # self._pos_succ[source].pop(...) mutates _pos_succ: peel the
        # subscripts off to reach the attribute that names the container.
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute):
            cls = self._stateful_receiver(base.value, ctx)
            if cls is not None:
                atom = f"mutates:{cls}.{base.attr}"
                direct.add(atom)
                origins.setdefault(atom, f".{base.attr}.{call.func.attr}()")
        elif isinstance(base, ast.Name):
            name = base.id
            if name in ctx.global_decls or (
                name in ctx.module.globals and name not in ctx.bound
            ):
                direct.add(MUTATES_GLOBAL)
                origins.setdefault(
                    MUTATES_GLOBAL, f"{name}.{call.func.attr}() on a module global"
                )

    # -- the fixpoint --------------------------------------------------------

    def effects(self, ignore_obs: bool = False) -> dict[str, frozenset[str]]:
        """Transitive effects per function.

        With ``ignore_obs`` the propagation skips callees inside
        :mod:`repro.obs` — the RL201/RL203 allowlist: routing timing and
        metrics through the observability layer is sanctioned, calling
        the clock directly is not.
        """
        cached = self._tables.get(ignore_obs)
        if cached is not None:
            return cached
        effects = {name: set(atoms) for name, atoms in self.direct.items()}
        order = sorted(effects)
        # Monotone fixpoint, same bound as the RL101 taint pass: atoms
        # only accumulate, so len(functions)+1 rounds always suffice.
        for _ in range(len(order) + 1):
            changed = False
            for name in order:
                accumulated = effects[name]
                for callee in self.callees.get(name, ()):
                    if callee == name:
                        continue
                    if ignore_obs and _module_in_obs(callee):
                        continue
                    callee_effects = effects.get(callee)
                    if not callee_effects:
                        continue
                    contribution = self._mask_edge(name, callee, callee_effects)
                    if not contribution <= accumulated:
                        accumulated |= contribution
                        changed = True
            if not changed:
                break
        table = {name: frozenset(atoms) for name, atoms in effects.items()}
        self._tables[ignore_obs] = table
        return table

    def _mask_edge(
        self, caller: str, callee: str, atoms: set[str] | frozenset[str]
    ) -> set[str]:
        """Atoms flowing from *callee* into *caller*, minus self-mutations
        of locally-constructed receivers (see :attr:`edge_masks`)."""
        mask = self.edge_masks.get(caller, {}).get(callee)
        if not mask:
            return set(atoms)
        prefixes = tuple(f"mutates:{cls}." for cls in mask)
        return {atom for atom in atoms if not atom.startswith(prefixes)}

    # -- rule support ----------------------------------------------------------

    def visible_owners(self, func: FunctionInfo, owners: tuple[str, ...]) -> list[str]:
        """Registered cache owners in *func*'s static scope, sorted.

        In scope means: *func* is a method of the owner, its class holds
        a typed attribute of the owner, or a parameter is annotated with
        the owner.  Locals are excluded — a function that builds its own
        recommender sees only fresh caches.
        """
        visible: set[str] = set()
        class_name = func.name.rpartition(".")[0] or None
        self_class = f"{func.module}.{class_name}" if class_name else None
        if self_class in owners:
            visible.add(self_class)
        if self_class is not None:
            for typed in self.class_attr_types.get(self_class, {}).values():
                if typed in owners:
                    visible.add(typed)
        for typed in self.param_types.get(func.qualname, {}).values():
            if typed in owners:
                visible.add(typed)
        return sorted(visible)

    def witness_path(
        self, start: str, effect: str, ignore_obs: bool = False
    ) -> list[str]:
        """A deterministic call chain from *start* to a direct source of
        *effect* — the part of the message that makes RL202/RL203
        actionable."""
        table = self.effects(ignore_obs)
        path = [start]
        current = start
        while effect not in self.direct.get(current, ()):
            candidates = [
                callee
                for callee in sorted(self.callees.get(current, ()))
                if callee not in path
                and not (ignore_obs and _module_in_obs(callee))
                and effect
                in self._mask_edge(current, callee, table.get(callee, frozenset()))
            ]
            if not candidates:
                break
            current = candidates[0]
            path.append(current)
        return path

    def origin_of(self, qualname: str, effect: str) -> str:
        return self.origins.get(qualname, {}).get(effect, effect)


def _module_in_obs(qualname: str) -> bool:
    return qualname == _OBS_PREFIX or qualname.startswith(_OBS_PREFIX + ".")


#: One analysis per ProjectIndex: all four rules (and the effect table)
#: share a single inference pass within a lint invocation.
_ANALYSES: "weakref.WeakKeyDictionary[ProjectIndex, EffectAnalysis]" = (
    weakref.WeakKeyDictionary()
)


def analyze_effects(project: ProjectIndex) -> EffectAnalysis:
    """The (memoized) effect analysis for *project*."""
    analysis = _ANALYSES.get(project)
    if analysis is None:
        analysis = EffectAnalysis(project)
        _ANALYSES[project] = analysis
    return analysis


# ---------------------------------------------------------------------------
# The serialized effect table (``repro lint --effects``).
# ---------------------------------------------------------------------------


def effect_table(project: ProjectIndex) -> dict[str, object]:
    """Deterministic JSON-ready effect + lock-set table per function."""
    from .concurrency import analyze_concurrency  # circular at module scope

    effects = analyze_effects(project).effects()
    guards = analyze_concurrency(project).acquired_guards()
    return {
        "schema": EFFECT_TABLE_SCHEMA,
        "functions": {
            qualname: {
                "effects": sorted(atoms),
                "guards": sorted(guards.get(qualname, frozenset())),
            }
            for qualname, atoms in sorted(effects.items())
        },
    }


def format_effect_table(project: ProjectIndex) -> str:
    return json.dumps(effect_table(project), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# RL200 — cache coherence.
# ---------------------------------------------------------------------------


class CacheCoherenceRule(GraphRule):
    """RL200: backing-state mutation must reach the paired invalidation.

    Two checks per :class:`CacheSpec`:

    * a function whose effects mutate the spec's backing state, with a
      cache owner statically in scope, must also (transitively) mutate
      **all** of that owner's cache fields — reaching the owner's
      ``invalidate`` confers exactly those effects;
    * a function *named* like an invalidator that clears some of the
      spec's cache fields must clear every field of every visible owner
      — partial invalidation is how the packed matrix goes stale while
      the profile dict looks fresh.
    """

    code = "RL200"
    summary = "backing-state mutation leaves a registered cache stale"

    def __init__(self, registry: tuple[CacheSpec, ...] = DEFAULT_CACHE_REGISTRY):
        self.registry = registry

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_effects(project)
        effects = analysis.effects()
        for func in project.functions():
            atoms = effects.get(func.qualname, frozenset())
            module = project.modules[func.module]
            for spec in self.registry:
                yield from self._check_backing(
                    analysis, spec, func, atoms, module.path
                )
                yield from self._check_invalidator(
                    analysis, spec, func, atoms, module.path
                )

    def _check_backing(
        self,
        analysis: EffectAnalysis,
        spec: CacheSpec,
        func: FunctionInfo,
        atoms: frozenset[str],
        path: str,
    ) -> Iterator[Finding]:
        touched = atoms & spec.backing_atoms
        if not touched:
            return
        for owner in analysis.visible_owners(func, spec.owners):
            cache_atoms = spec.cache_atoms(owner)
            missing = cache_atoms - atoms
            if not missing:
                continue
            fields = ", ".join(sorted(a.rpartition(".")[2] for a in missing))
            backing = ", ".join(sorted(a.rpartition(":")[2] for a in touched))
            yield self.finding(
                path=path,
                line=func.line,
                column=func.node.col_offset + 1,
                message=(
                    f"{func.qualname} mutates {backing} while a "
                    f"{_short(owner)} is in scope but never invalidates "
                    f"its cache field(s) {fields} [{spec.name}] — stale "
                    f"reads follow; call {spec.invalidate_hint}"
                ),
            )

    def _check_invalidator(
        self,
        analysis: EffectAnalysis,
        spec: CacheSpec,
        func: FunctionInfo,
        atoms: frozenset[str],
        path: str,
    ) -> Iterator[Finding]:
        short = func.name.rpartition(".")[2]
        if not _INVALIDATOR_RE.search(short):
            return
        if not atoms & spec.all_cache_atoms:
            return
        for owner in analysis.visible_owners(func, spec.owners):
            missing = spec.cache_atoms(owner) - atoms
            if not missing:
                continue
            fields = ", ".join(sorted(a.rpartition(".")[2] for a in missing))
            yield self.finding(
                path=path,
                line=func.line,
                column=func.node.col_offset + 1,
                message=(
                    f"{func.qualname} invalidates only part of the "
                    f"{spec.name} pairing: {_short(owner)}.{{{fields}}} "
                    f"stay stale — clear every registered field "
                    f"({spec.invalidate_hint})"
                ),
            )


def _short(qualname: str) -> str:
    return qualname.rpartition(".")[2]


# ---------------------------------------------------------------------------
# RL201 — purity contract on query entry points.
# ---------------------------------------------------------------------------


class PurityContractRule(GraphRule):
    """RL201: query entry points mutate nothing beyond declared caches.

    Effects are computed with :mod:`repro.obs` callees ignored (metric
    counters are sanctioned instrumentation); every remaining
    ``mutates:*`` atom outside :data:`DEFAULT_CACHE_REGISTRY`'s declared
    cache fields is a contract violation.
    """

    code = "RL201"
    summary = "query entry point carries an undeclared mutation effect"

    def __init__(self, registry: tuple[CacheSpec, ...] = DEFAULT_CACHE_REGISTRY):
        self.allowed = frozenset().union(
            *(spec.all_cache_atoms for spec in registry)
        )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_effects(project)
        effects = analysis.effects(ignore_obs=True)
        for func in project.functions():
            if not _is_entry_point(func):
                continue
            atoms = effects.get(func.qualname, frozenset())
            undeclared = sorted(
                atom
                for atom in atoms
                if atom.startswith("mutates:") and atom not in self.allowed
            )
            if not undeclared:
                continue
            module = project.modules[func.module]
            yield self.finding(
                path=module.path,
                line=func.line,
                column=func.node.col_offset + 1,
                message=(
                    f"query entry point {func.qualname} has undeclared "
                    f"mutation effect(s) {', '.join(undeclared)} — queries "
                    f"must be pure apart from the registered caches "
                    f"(docs/ANALYSIS.md cache registry)"
                ),
            )


# ---------------------------------------------------------------------------
# RL202 — seeded randomness, interprocedurally.
# ---------------------------------------------------------------------------


class SeededRandomnessRule(GraphRule):
    """RL202: no ``rng`` effect may reach a query/experiment entry point.

    RL001 bans module-level draws per file; this closes the loophole of
    hiding one behind a helper.  Drawing from an injected, seeded
    ``random.Random`` parameter produces no ``rng`` atom at all, so the
    sanctioned pattern passes by construction.
    """

    code = "RL202"
    summary = "entry point transitively draws from the module-level RNG"

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_effects(project)
        effects = analysis.effects()
        for func in project.functions():
            if not self._covered(func):
                continue
            if EFFECT_RNG not in effects.get(func.qualname, frozenset()):
                continue
            path = analysis.witness_path(func.qualname, EFFECT_RNG)
            origin = analysis.origin_of(path[-1], EFFECT_RNG)
            module = project.modules[func.module]
            via = " -> ".join(path)
            yield self.finding(
                path=module.path,
                line=func.line,
                column=func.node.col_offset + 1,
                message=(
                    f"{func.qualname} reaches module-level randomness "
                    f"({origin}) via {via} — thread a seeded "
                    f"random.Random through instead (RL001's contract, "
                    f"across calls)"
                ),
            )

    @staticmethod
    def _covered(func: FunctionInfo) -> bool:
        if _is_entry_point(func):
            return True
        short = func.name.rpartition(".")[2]
        return _module_in(func.module, "repro.evaluation") and bool(
            re.match(r"run_ex\d", short)
        )


# ---------------------------------------------------------------------------
# RL203 — no io/clock in the pure layers.
# ---------------------------------------------------------------------------


class LayerPurityRule(GraphRule):
    """RL203: ``repro.core``/``trust``/``perf`` stay io- and clock-free.

    Timing belongs to :class:`repro.obs.Stopwatch` and tracer spans —
    the obs layer is allowlisted by ignoring its callees in the fixpoint.
    Only the function that *introduces* the effect into the layer is
    flagged (direct use, or a call into an impure module elsewhere), so
    one offender yields one finding instead of flagging every caller up
    the chain.
    """

    code = "RL203"
    summary = "io/clock effect inside the core/trust/perf layers"

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_effects(project)
        effects = analysis.effects(ignore_obs=True)
        for func in project.functions():
            if not any(
                _module_in(func.module, prefix) for prefix in _PURE_LAYER_PREFIXES
            ):
                continue
            atoms = effects.get(func.qualname, frozenset())
            for effect in (EFFECT_CLOCK, EFFECT_IO):
                if effect not in atoms:
                    continue
                if self._inherited_in_layer(analysis, effects, func, effect):
                    continue  # the in-layer callee is the one flagged
                path = analysis.witness_path(func.qualname, effect, ignore_obs=True)
                origin = analysis.origin_of(path[-1], effect)
                module = project.modules[func.module]
                hint = (
                    "route timing through repro.obs.Stopwatch / tracer spans"
                    if effect == EFFECT_CLOCK
                    else "move the io to datasets/web/cli or inject the data"
                )
                yield self.finding(
                    path=module.path,
                    line=func.line,
                    column=func.node.col_offset + 1,
                    message=(
                        f"{func.qualname} acquires a '{effect}' effect "
                        f"({origin}, via {' -> '.join(path)}) inside the "
                        f"pure layers — {hint}"
                    ),
                )

    @staticmethod
    def _inherited_in_layer(
        analysis: EffectAnalysis,
        effects: dict[str, frozenset[str]],
        func: FunctionInfo,
        effect: str,
    ) -> bool:
        for callee in analysis.callees.get(func.qualname, ()):
            if _module_in_obs(callee):
                continue
            if effect not in effects.get(callee, frozenset()):
                continue
            if callee.startswith(tuple(p + "." for p in _PURE_LAYER_PREFIXES)):
                return True
        return False
