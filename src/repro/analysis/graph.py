"""Module-level import graph and the graph hygiene rules (RL103/RL104).

Built on the :class:`~repro.analysis.symbols.ProjectIndex`, the
:class:`ModuleGraph` gives every reprograph rule the same two views:

* **explicit edges** — one per import statement, with scope (``module``,
  ``lazy``, ``type-checking``), used by layering contracts and cycle
  detection;
* **reachability edges** — explicit edges plus the implicit
  parent-package edges Python adds at runtime (importing
  ``repro.web.crawler`` executes ``repro/__init__.py`` and
  ``repro/web/__init__.py`` first), used by dead-module detection.

The distinction matters: parent-package edges would report every
``package ↔ subpackage`` pair as a cycle even though Python's partial
initialization tolerates them, while reachability without them would
declare re-exporting ``__init__`` modules dead.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from .engine import Finding, GraphRule
from .symbols import SCOPE_MODULE, ImportRecord, ProjectIndex

__all__ = [
    "DeadModuleRule",
    "ImportCycleRule",
    "ModuleGraph",
    "ROOT_PACKAGE",
    "ENTRY_POINTS",
]

#: The package the architecture rules reason about.
ROOT_PACKAGE = "repro"

#: Modules that are reachable by construction: the package root (public
#: API), the console-script entry point, and ``python -m`` mains.
ENTRY_POINTS = (
    "repro",
    "repro.cli",
    "repro.analysis.__main__",
)


def _in_root_package(module: str) -> bool:
    return module == ROOT_PACKAGE or module.startswith(ROOT_PACKAGE + ".")


class ModuleGraph:
    """Import edges between the modules of a :class:`ProjectIndex`."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        #: importer → {target → [records]}, explicit edges only, targets
        #: restricted to modules present in the index.
        self.edges: dict[str, dict[str, list[ImportRecord]]] = {}
        for name in sorted(project.modules):
            info = project.modules[name]
            outgoing: dict[str, list[ImportRecord]] = {}
            for record in info.imports:
                if record.target in project.modules and record.target != name:
                    outgoing.setdefault(record.target, []).append(record)
            self.edges[name] = outgoing

    # -- reachability -------------------------------------------------------

    def _parent_packages(self, module: str) -> Iterator[str]:
        parts = module.split(".")
        for cut in range(1, len(parts)):
            parent = ".".join(parts[:cut])
            if parent in self.project.modules:
                yield parent

    def reachable(self, roots: Iterator[str] | tuple[str, ...]) -> set[str]:
        """Modules reachable from *roots* over explicit + package edges."""
        seen: set[str] = set()
        queue = deque(root for root in roots if root in self.project.modules)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            neighbors: set[str] = set(self.edges.get(current, ()))
            # Importing a submodule executes its parent packages, and a
            # package's __init__ is what makes its re-exports live.
            for target in list(neighbors):
                neighbors.update(self._parent_packages(target))
            neighbors.update(self._parent_packages(current))
            for neighbor in sorted(neighbors):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    # -- cycles -------------------------------------------------------------

    def cycles(self) -> list[tuple[str, ...]]:
        """Cycles among *module-scope* explicit edges, deterministically.

        Lazy and ``TYPE_CHECKING`` imports are excluded: deferring an
        import into a function body is exactly how a runtime cycle is
        broken, so only import-time edges can deadlock module init.
        Returns each strongly connected component with more than one
        module (or a self-loop), rotated to start at its smallest name.
        """
        graph: dict[str, list[str]] = {
            src: sorted(
                dst
                for dst, records in targets.items()
                if any(r.scope == SCOPE_MODULE for r in records)
            )
            for src, targets in self.edges.items()
        }
        # Iterative Tarjan SCC.
        index_counter = 0
        indices: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[tuple[str, ...]] = []

        for start in sorted(graph):
            if start in indices:
                continue
            work: list[tuple[str, int]] = [(start, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    indices[node] = lowlink[node] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = graph.get(node, [])
                for offset in range(child_index, len(children)):
                    child = children[offset]
                    if child not in indices:
                        work[-1] = (node, offset + 1)
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], indices[child])
                if recurse:
                    continue
                work.pop()
                if lowlink[node] == indices[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    is_self_loop = len(component) == 1 and node in graph.get(node, [])
                    if len(component) > 1 or is_self_loop:
                        pivot = component.index(min(component))
                        rotated = tuple(component[pivot:] + component[:pivot])
                        components.append(rotated)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sorted(components)


class ImportCycleRule(GraphRule):
    """RL104: import-time cycle between modules.

    A cycle among module-scope imports makes initialization order
    load-bearing: whichever module happens to be imported first sees a
    half-initialized partner.  Break the cycle by moving one edge into a
    function body (a lazy import) or by extracting the shared piece into
    a lower-level module.
    """

    code = "RL104"
    summary = "import-time cycle makes module initialization order load-bearing"

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        graph = ModuleGraph(project)
        for cycle in graph.cycles():
            chain = " -> ".join([*cycle, cycle[0]])
            # Anchor at the first edge of the cycle: the import in the
            # smallest-named module that points into the cycle.
            head, successor = cycle[0], cycle[1 % len(cycle)]
            records = [
                r
                for r in graph.edges[head].get(successor, [])
                if r.scope == SCOPE_MODULE
            ]
            anchor = records[0] if records else None
            info = project.modules[head]
            yield self.finding(
                path=anchor.path if anchor else info.path,
                line=anchor.line if anchor else 1,
                column=anchor.column if anchor else 1,
                message=(
                    f"import cycle {chain}; defer one import into a "
                    "function body or extract the shared piece downward"
                ),
            )


class DeadModuleRule(GraphRule):
    """RL103: a ``repro`` module no entry point can reach.

    Reachability starts from the public package root (``repro``), the
    console script (``repro.cli``) and ``python -m`` mains, and follows
    every import — module-scope, lazy, and ``TYPE_CHECKING`` — plus the
    implicit parent-package edges.  A module nothing reaches is shipped,
    maintained, and never executed: delete it or wire it into the API.

    The rule only runs when the linted set contains the ``repro`` package
    root itself, so linting a subdirectory never produces spurious
    corpses.
    """

    code = "RL103"
    summary = "module is unreachable from every entry point (dead code)"

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        if ROOT_PACKAGE not in project.modules:
            return
        graph = ModuleGraph(project)
        live = graph.reachable(ENTRY_POINTS)
        for name in sorted(project.modules):
            if not _in_root_package(name) or name in live:
                continue
            if name.rpartition(".")[2] == "__main__":
                continue  # runnable via ``python -m``
            info = project.modules[name]
            yield self.finding(
                path=info.path,
                line=1,
                column=1,
                message=(
                    f"module {name} is not reachable from any entry point "
                    f"({', '.join(ENTRY_POINTS)}); delete it or re-export it"
                ),
            )
