"""Lock-set inference and the concurrency-safety rules (RL300–RL303).

The ROADMAP's next tenant is a query-serving daemon: long-lived threads
answering recommendation queries out of the caches that
:mod:`repro.analysis.effects` already tracks (``ProfileStore._cache``/
``_matrix``, ``TrustGraph._pos_succ``, the taxonomy memos).  All of that
state was written single-threaded.  This module adds the RacerD-style
compositional layer that proves which of it is safe to share: per
function, a **lock set** is inferred by walking ``with`` contexts and
the sanctioned primitives of :mod:`repro.util.sync`, and held-sets are
threaded through the call-graph fixpoint exactly as effects are — so
every report is compositional and comes with a call-chain witness.

Guard tokens are canonicalized strings:

``guard:<Class>.<attr>``
    a ``with self._guard:`` block over a typed
    :class:`~repro.util.sync.ReentrantGuard` attribute (or any attribute
    whose name says lock/guard/mutex), a ``with cache.held():`` block,
    or the *implicit* guard taken by ``cache.get_or_build``/``store``/
    ``invalidate``/``swap``/``clear`` on a sync-primitive field — the
    primitive's own critical section;
``guard:<module>.<name>`` / ``guard:local:<name>``
    module-level and function-local locks.

The meet over multiple paths is **intersection** (the "common lock"
convention): a function reached both guarded and unguarded is
effectively unguarded, and a field is consistently locked only if one
token protects every access.

On the inferred facts sit four graph rules, wired through
``lint_project``/SARIF/baseline/suppressions/``--select`` like the
RL1xx/RL2xx series:

``RL300``
    shared-state race — a :data:`DEFAULT_CACHE_REGISTRY` field is
    mutated by a function reachable from a concurrent entry point
    (:data:`CONCURRENT_ROOTS`, plus anything that directly ``spawns``)
    with an empty effective guard set;
``RL301``
    check-then-act — an ``if key not in cache:`` / ``if self._f is
    None:`` test on a registry cache field outside any guard, paired
    with an (interprocedurally reachable) unguarded fill;
``RL302``
    non-atomic invalidate/rebuild — in-place mutation of a
    publish-by-replacement field (:data:`SWAP_PUBLISHED_FIELDS`), or
    accessors of one cache field holding guard sets with no common
    token (the classic inconsistent-lock-set report);
``RL303``
    blocking-under-guard — an ``io``/``clock``/``spawns`` effect
    reachable while a guard is held (``repro.obs`` instrumentation is
    allowlisted, as in RL203).

Like every reprograph pass this is best-effort static analysis: dynamic
dispatch and untyped receivers stay unresolved, erring toward silence.
The declarative :data:`CONCURRENT_ROOTS` list is the extension point the
daemon PR will grow — registering its request handlers there puts every
cache they reach under these rules.
"""

from __future__ import annotations

import ast
import re
import weakref
from collections.abc import Iterator
from dataclasses import dataclass, field

from .effects import (
    DEFAULT_CACHE_REGISTRY,
    EFFECT_CLOCK,
    EFFECT_IO,
    EFFECT_SPAWNS,
    SYNC_GUARDED_METHODS,
    CacheSpec,
    EffectAnalysis,
    _module_in_obs,
    _ScanContext,
    analyze_effects,
    is_sync_primitive,
)
from .engine import Finding, GraphRule
from .symbols import FunctionInfo, ProjectIndex

__all__ = [
    "AtomicPublishRule",
    "BlockingUnderGuardRule",
    "CONCURRENT_ROOTS",
    "CheckThenActRule",
    "ConcurrencyAnalysis",
    "SWAP_PUBLISHED_FIELDS",
    "SharedStateRaceRule",
    "analyze_concurrency",
]

#: Declared concurrent entry points: (module, module-relative function
#: names).  Functions listed here — plus anything with a direct
#: ``spawns`` effect — seed the RL300 reachability closure with an empty
#: entry lock set.  The query-serving daemon extends this list with its
#: request handlers.
CONCURRENT_ROOTS: tuple[tuple[str, frozenset[str]], ...] = (
    (
        "repro.perf.parallel",
        frozenset(
            {
                "ParallelExperimentRunner.map",
                "ParallelExperimentRunner.map_seeded",
                "ParallelExperimentRunner.map_chunked",
                "ParallelExperimentRunner.submit",
            }
        ),
    ),
    ("repro.trust.engine", frozenset({"rank_many"})),
)

#: Fields whose contract is publish-by-replacement: derive a complete
#: new value and swap the reference (:class:`repro.util.sync.AtomicSwap`).
#: RL302 flags any in-place mutation (store-through or container method)
#: of these; plain reassignment *is* publication and stays legal.
SWAP_PUBLISHED_FIELDS = frozenset(
    {
        "repro.core.recommender.ProfileStore._matrix",
        "repro.core.recommender.PureCFRecommender._product_matrix",
        "repro.perf.matrix.ProfileMatrix._dense_sq",
        "repro.perf.matrix.ProfileMatrix._topic_rows",
    }
)

#: Attribute/variable names that read as locks even without a type.
_GUARD_NAME_RE = re.compile(r"lock|guard|mutex", re.IGNORECASE)

#: Effects that must not run while a guard is held (RL303).
_BLOCKING_EFFECTS = (EFFECT_CLOCK, EFFECT_IO, EFFECT_SPAWNS)

#: Access kinds that write the field (``sync`` writes are self-guarded).
_WRITE_KINDS = frozenset({"assign", "store", "mutator", "sync"})

#: Functions that own their instance outright: nothing else can hold a
#: reference while they run, so their field accesses are race-free
#: (RacerD's ownership rule) and exempt from lock-set consistency.
_CONSTRUCTOR_NAMES = frozenset({"__init__", "__post_init__"})


@dataclass(frozen=True, slots=True)
class _Access:
    """One write to caller-visible state, with its lexical lock set."""

    atom: str  #: ``mutates:<Class.field>``
    guards: frozenset[str]
    line: int
    kind: str  #: assign | store | mutator | sync


@dataclass(frozen=True, slots=True)
class _GuardedCall:
    """One call edge, with the lock set held at the call site."""

    callee: str
    guards: frozenset[str]
    line: int
    masked: frozenset[str]  #: receiver classes whose self-mutations stay local


@dataclass(frozen=True, slots=True)
class _BlockingSite:
    """One direct ``io``/``clock``/``spawns`` site and its lock set."""

    effect: str
    guards: frozenset[str]
    line: int  #: the innermost ``with`` line when guarded (anchor)
    origin: str


@dataclass(frozen=True, slots=True)
class _CheckAct:
    """One ``is None`` / ``not in`` test on a stateful field."""

    atom: str
    guards: frozenset[str]
    line: int


@dataclass
class _FunctionFacts:
    """Everything the four rules need to know about one function."""

    accesses: list[_Access] = field(default_factory=list)
    calls: list[_GuardedCall] = field(default_factory=list)
    blocking: list[_BlockingSite] = field(default_factory=list)
    checks: list[_CheckAct] = field(default_factory=list)
    acquires: set[str] = field(default_factory=set)


@dataclass(frozen=True, slots=True)
class _BlockState:
    """Lock-set context while walking one function's statement tree."""

    guards: frozenset[str]
    anchor: int | None  #: line of the innermost guard-taking ``with``


class ConcurrencyAnalysis:
    """Per-function lock-set facts over one :class:`ProjectIndex`.

    Reuses :class:`EffectAnalysis`'s type environment and per-node
    classification so an access means exactly the same thing to the
    effect fixpoint and to the lock-set walk; what this pass adds is the
    block structure (``with`` nesting, branch tests, statement order)
    that the flat effect scan deliberately ignores.
    """

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self.eff: EffectAnalysis = analyze_effects(project)
        self.facts: dict[str, _FunctionFacts] = {}
        self._unguarded: dict[str, frozenset[str]] | None = None
        for func in project.functions():
            self.facts[func.qualname] = self._collect(func)

    # -- collection ----------------------------------------------------------

    def _collect(self, func: FunctionInfo) -> _FunctionFacts:
        ctx = self.eff._context(func)
        facts = _FunctionFacts()
        alias: dict[str, str] = {}
        state = _BlockState(guards=frozenset(), anchor=None)
        self._walk_block(func.node.body, state, ctx, facts, alias)
        return facts

    def _walk_block(
        self,
        body: list[ast.stmt],
        state: _BlockState,
        ctx: _ScanContext,
        facts: _FunctionFacts,
        alias: dict[str, str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # Nested defs are flattened into the parent, matching the
                # effect scan; their bodies inherit the lexical lock set.
                self._walk_block(stmt.body, state, ctx, facts, alias)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                tokens: set[str] = set()
                for item in stmt.items:
                    self._leaf_exprs([item.context_expr], state, ctx, facts)
                    token = self._guard_token(item.context_expr, ctx)
                    if token is not None:
                        tokens.add(token)
                inner = state
                if tokens:
                    facts.acquires |= tokens
                    inner = _BlockState(
                        guards=state.guards | tokens, anchor=stmt.lineno
                    )
                self._walk_block(stmt.body, inner, ctx, facts, alias)
            elif isinstance(stmt, ast.If):
                self._record_checks(stmt.test, state, ctx, facts, alias)
                self._leaf_exprs([stmt.test], state, ctx, facts)
                self._walk_block(stmt.body, state, ctx, facts, alias)
                self._walk_block(stmt.orelse, state, ctx, facts, alias)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._leaf_exprs([stmt.iter], state, ctx, facts)
                self._walk_block(stmt.body, state, ctx, facts, alias)
                self._walk_block(stmt.orelse, state, ctx, facts, alias)
            elif isinstance(stmt, ast.While):
                self._leaf_exprs([stmt.test], state, ctx, facts)
                self._walk_block(stmt.body, state, ctx, facts, alias)
                self._walk_block(stmt.orelse, state, ctx, facts, alias)
            elif isinstance(stmt, ast.Try):
                self._walk_block(stmt.body, state, ctx, facts, alias)
                for handler in stmt.handlers:
                    self._walk_block(handler.body, state, ctx, facts, alias)
                self._walk_block(stmt.orelse, state, ctx, facts, alias)
                self._walk_block(stmt.finalbody, state, ctx, facts, alias)
            elif isinstance(stmt, ast.Match):
                self._leaf_exprs([stmt.subject], state, ctx, facts)
                for case in stmt.cases:
                    if case.guard is not None:
                        self._leaf_exprs([case.guard], state, ctx, facts)
                    self._walk_block(case.body, state, ctx, facts, alias)
            else:
                self._leaf_exprs([stmt], state, ctx, facts)
                self._track_alias(stmt, ctx, alias)

    def _leaf_exprs(
        self,
        roots: list[ast.stmt] | list[ast.expr],
        state: _BlockState,
        ctx: _ScanContext,
        facts: _FunctionFacts,
    ) -> None:
        """Classify every write/call inside *roots* with the current lock set."""
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        self._record_write(target, node.lineno, state, ctx, facts)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if not (isinstance(node, ast.AnnAssign) and node.value is None):
                        self._record_write(
                            node.target, node.lineno, state, ctx, facts
                        )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        self._record_write(target, node.lineno, state, ctx, facts)
                elif isinstance(node, ast.Call):
                    self._record_call(node, state, ctx, facts)

    def _record_write(
        self,
        target: ast.expr,
        line: int,
        state: _BlockState,
        ctx: _ScanContext,
        facts: _FunctionFacts,
    ) -> None:
        direct: set[str] = set()
        origins: dict[str, str] = {}
        self.eff._write_target(target, ctx, direct, origins)
        self._append_accesses(direct, origins, line, state.guards, facts)

    def _record_call(
        self,
        call: ast.Call,
        state: _BlockState,
        ctx: _ScanContext,
        facts: _FunctionFacts,
    ) -> None:
        if isinstance(call.func, ast.Attribute):
            receiver_cls = self.eff._receiver_class(call.func.value, ctx)
            if receiver_cls is not None and is_sync_primitive(receiver_cls):
                self._record_sync_call(call, receiver_cls, state, ctx, facts)
                return
        direct: set[str] = set()
        origins: dict[str, str] = {}
        callees: dict[str, set[str]] = {}
        self.eff._classify_call(call, ctx, direct, origins, callees)
        self._append_accesses(direct, origins, call.lineno, state.guards, facts)
        for effect in _BLOCKING_EFFECTS:
            if effect in direct:
                facts.blocking.append(
                    _BlockingSite(
                        effect=effect,
                        guards=state.guards,
                        line=state.anchor or call.lineno,
                        origin=origins.get(effect, effect),
                    )
                )
        for callee, mask in callees.items():
            facts.calls.append(
                _GuardedCall(
                    callee=callee,
                    guards=state.guards,
                    line=call.lineno,
                    masked=frozenset(mask),
                )
            )

    def _record_sync_call(
        self,
        call: ast.Call,
        receiver_cls: str,
        state: _BlockState,
        ctx: _ScanContext,
        facts: _FunctionFacts,
    ) -> None:
        """A ``repro.util.sync`` primitive call: self-guarded by definition."""
        assert isinstance(call.func, ast.Attribute)
        method = call.func.attr
        direct: set[str] = set()
        origins: dict[str, str] = {}
        callees: dict[str, set[str]] = {}
        self.eff._classify_sync_call(call, ctx, direct, origins, callees)
        token = self._sync_receiver_token(call.func.value, ctx)
        if token is None:
            token = f"guard:{receiver_cls}"  # unresolvable receiver, stay guarded
        if method in SYNC_GUARDED_METHODS:
            facts.acquires.add(token)
        guards = state.guards | {token}
        for atom in sorted(direct):
            if atom.startswith("mutates:"):
                facts.accesses.append(
                    _Access(atom=atom, guards=guards, line=call.lineno, kind="sync")
                )
        for callee in callees:
            # get_or_build builders run inside the primitive's section.
            facts.calls.append(
                _GuardedCall(
                    callee=callee,
                    guards=guards,
                    line=call.lineno,
                    masked=frozenset(),
                )
            )

    def _append_accesses(
        self,
        direct: set[str],
        origins: dict[str, str],
        line: int,
        guards: frozenset[str],
        facts: _FunctionFacts,
    ) -> None:
        for atom in sorted(direct):
            if not atom.startswith("mutates:") or atom == "mutates:global":
                continue
            origin = origins.get(atom, "")
            if origin.startswith("assignment to"):
                kind = "assign"
            elif origin.startswith("store through"):
                kind = "store"
            else:
                kind = "mutator"
            facts.accesses.append(
                _Access(atom=atom, guards=guards, line=line, kind=kind)
            )

    # -- guard tokens --------------------------------------------------------

    def _guard_token(self, expr: ast.expr, ctx: _ScanContext) -> str | None:
        """The canonical token when *expr* is a lock being acquired."""
        node = expr
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "held"
        ):
            receiver = self.eff._receiver_class(node.func.value, ctx)
            if receiver is not None and is_sync_primitive(receiver):
                node = node.func.value  # with cache.held(): → the cache's token
        if isinstance(node, ast.Attribute):
            return self._attribute_guard_token(node, ctx)
        if isinstance(node, ast.Name):
            name = node.id
            typed = ctx.locals.get(name) or ctx.params.get(name)
            if name in ctx.module.globals and name not in ctx.bound:
                if _GUARD_NAME_RE.search(name):
                    return f"guard:{ctx.module.name}.{name}"
                return None
            if (typed is not None and is_sync_primitive(typed)) or (
                _GUARD_NAME_RE.search(name)
            ):
                return f"guard:local:{name}"
        return None

    def _attribute_guard_token(
        self, node: ast.Attribute, ctx: _ScanContext
    ) -> str | None:
        base_cls = self.eff._stateful_receiver(node.value, ctx)
        if base_cls is None:
            return None
        attr_type = self.eff.class_attr_types.get(base_cls, {}).get(node.attr)
        if (attr_type is not None and is_sync_primitive(attr_type)) or (
            _GUARD_NAME_RE.search(node.attr)
        ):
            return f"guard:{base_cls}.{node.attr}"
        return None

    def _sync_receiver_token(
        self, receiver: ast.expr, ctx: _ScanContext
    ) -> str | None:
        """Implicit guard token for a sync-primitive *receiver* expression."""
        if isinstance(receiver, ast.Attribute):
            base_cls = self.eff._stateful_receiver(receiver.value, ctx)
            if base_cls is not None:
                return f"guard:{base_cls}.{receiver.attr}"
            return None
        if isinstance(receiver, ast.Name):
            return f"guard:local:{receiver.id}"
        return None

    # -- check-then-act ------------------------------------------------------

    def _track_alias(
        self, stmt: ast.stmt, ctx: _ScanContext, alias: dict[str, str]
    ) -> None:
        """``x = self._cache.get(k)`` / ``x = self._f`` alias the field."""
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        atom = self._value_field_atom(stmt.value, ctx)
        if atom is not None:
            alias[target.id] = atom
        else:
            alias.pop(target.id, None)

    def _value_field_atom(
        self, value: ast.expr, ctx: _ScanContext
    ) -> str | None:
        node = value
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("get", "peek"):
                node = node.func.value
            else:
                return None
        if isinstance(node, ast.Subscript):
            node = node.value
        return self._field_atom(node, ctx)

    def _field_atom(self, node: ast.expr, ctx: _ScanContext) -> str | None:
        if not isinstance(node, ast.Attribute):
            return None
        cls = self.eff._stateful_receiver(node.value, ctx)
        if cls is None:
            return None
        return f"mutates:{cls}.{node.attr}"

    def _record_checks(
        self,
        test: ast.expr,
        state: _BlockState,
        ctx: _ScanContext,
        facts: _FunctionFacts,
        alias: dict[str, str],
    ) -> None:
        for node in ast.walk(test):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            op = node.ops[0]
            atom: str | None = None
            if isinstance(op, ast.Is):
                right = node.comparators[0]
                if not (
                    isinstance(right, ast.Constant) and right.value is None
                ):
                    continue
                left = node.left
                if isinstance(left, ast.Name):
                    atom = alias.get(left.id)
                else:
                    atom = self._field_atom(left, ctx)
            elif isinstance(op, ast.NotIn):
                atom = self._field_atom(node.comparators[0], ctx)
            if atom is not None:
                facts.checks.append(
                    _CheckAct(atom=atom, guards=state.guards, line=node.lineno)
                )

    # -- fixpoints -----------------------------------------------------------

    def unguarded_atoms(self) -> dict[str, frozenset[str]]:
        """Per function: atoms written with an empty lock set, transitively.

        A callee's unguarded writes propagate through call sites that are
        themselves unguarded (a guarded call site protects everything
        below it) and not masked for the atom's owner class.
        """
        if self._unguarded is not None:
            return self._unguarded
        table: dict[str, set[str]] = {}
        for name, facts in self.facts.items():
            table[name] = {
                access.atom
                for access in facts.accesses
                if access.kind in _WRITE_KINDS and not access.guards
            }
        order = sorted(table)
        for _ in range(len(order) + 1):
            changed = False
            for name in order:
                accumulated = table[name]
                for call in self.facts[name].calls:
                    if call.guards or call.callee == name:
                        continue
                    callee_atoms = table.get(call.callee)
                    if not callee_atoms:
                        continue
                    contribution = {
                        atom
                        for atom in callee_atoms
                        if _owner_class(atom) not in call.masked
                    }
                    if not contribution <= accumulated:
                        accumulated |= contribution
                        changed = True
            if not changed:
                break
        self._unguarded = {name: frozenset(atoms) for name, atoms in table.items()}
        return self._unguarded

    def unguarded_witness(self, start: str, atom: str) -> list[str]:
        """Deterministic call chain from *start* to an unguarded write."""
        table = self.unguarded_atoms()
        path = [start]
        current = start
        while not self._writes_unguarded(current, atom):
            nxt = None
            for call in sorted(self.facts[current].calls, key=lambda c: c.callee):
                if call.guards or call.callee in path:
                    continue
                if _owner_class(atom) in call.masked:
                    continue
                if atom in table.get(call.callee, frozenset()):
                    nxt = call.callee
                    break
            if nxt is None:
                break
            path.append(nxt)
            current = nxt
        return path

    def _writes_unguarded(self, name: str, atom: str) -> bool:
        return any(
            access.atom == atom and not access.guards
            for access in self.facts.get(name, _FunctionFacts()).accesses
        )

    def concurrent_entry_states(
        self, roots: tuple[tuple[str, frozenset[str]], ...] = CONCURRENT_ROOTS
    ) -> tuple[
        dict[str, tuple[frozenset[str], frozenset[str]]],
        dict[str, tuple[str, int] | None],
    ]:
        """Entry lock sets on every function reachable from a concurrent root.

        Returns ``(entry, parent)``: ``entry[f]`` is the intersection
        over all discovered paths of ``(guards held at entry, receiver
        classes constructed locally along the path)``; ``parent`` holds
        deterministic predecessor pointers for witness chains.
        """
        entry: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        parent: dict[str, tuple[str, int] | None] = {}
        worklist: list[str] = []
        for func in self.project.functions():
            if self._is_root(func, roots):
                entry[func.qualname] = (frozenset(), frozenset())
                parent[func.qualname] = None
                worklist.append(func.qualname)
        while worklist:
            worklist.sort()
            name = worklist.pop(0)
            guards, masked = entry[name]
            for call in self.facts.get(name, _FunctionFacts()).calls:
                if call.callee == name or call.callee not in self.facts:
                    continue
                reached = (guards | call.guards, masked | call.masked)
                known = entry.get(call.callee)
                merged = (
                    reached
                    if known is None
                    else (known[0] & reached[0], known[1] & reached[1])
                )
                if known is None:
                    parent[call.callee] = (name, call.line)
                if known != merged:
                    entry[call.callee] = merged
                    if call.callee not in worklist:
                        worklist.append(call.callee)
        return entry, parent

    def _is_root(
        self,
        func: FunctionInfo,
        roots: tuple[tuple[str, frozenset[str]], ...],
    ) -> bool:
        for module, names in roots:
            if func.module == module and func.name in names:
                return True
        return EFFECT_SPAWNS in self.eff.direct.get(func.qualname, frozenset())

    # -- the effect-table column ---------------------------------------------

    def acquired_guards(self) -> dict[str, frozenset[str]]:
        """Per function, every guard token it acquires (the lock set column)."""
        return {
            name: frozenset(facts.acquires)
            for name, facts in self.facts.items()
            if facts.acquires
        }


def _owner_class(atom: str) -> str:
    """``mutates:pkg.Class.field`` → ``pkg.Class``."""
    return atom[len("mutates:"):].rpartition(".")[0]


def _atom_field(atom: str) -> str:
    return atom[len("mutates:"):]


#: One analysis per ProjectIndex, mirroring ``analyze_effects``.
_ANALYSES: "weakref.WeakKeyDictionary[ProjectIndex, ConcurrencyAnalysis]" = (
    weakref.WeakKeyDictionary()
)


def analyze_concurrency(project: ProjectIndex) -> ConcurrencyAnalysis:
    """The (memoized) concurrency analysis for *project*."""
    analysis = _ANALYSES.get(project)
    if analysis is None:
        analysis = ConcurrencyAnalysis(project)
        _ANALYSES[project] = analysis
    return analysis


def _registry_cache_atoms(registry: tuple[CacheSpec, ...]) -> frozenset[str]:
    atoms: set[str] = set()
    for spec in registry:
        atoms |= spec.all_cache_atoms
    return frozenset(atoms)


def _registry_atoms(registry: tuple[CacheSpec, ...]) -> frozenset[str]:
    atoms = set(_registry_cache_atoms(registry))
    for spec in registry:
        atoms |= spec.backing_atoms
    return frozenset(atoms)


# ---------------------------------------------------------------------------
# RL300 — shared-state race.
# ---------------------------------------------------------------------------


class SharedStateRaceRule(GraphRule):
    """RL300: registry field mutated on a concurrent path without a guard.

    The closure starts at :data:`CONCURRENT_ROOTS` (plus direct
    spawners) with an empty entry lock set and propagates held-sets
    through call sites, meeting by intersection.  A write whose
    effective guards (entry ∪ lexical) are empty, on a field owner not
    locally constructed along the path, races.
    """

    code = "RL300"
    summary = "shared-state race on a registered cache field"

    def __init__(
        self,
        registry: tuple[CacheSpec, ...] = DEFAULT_CACHE_REGISTRY,
        roots: tuple[tuple[str, frozenset[str]], ...] = CONCURRENT_ROOTS,
    ) -> None:
        self.registry = registry
        self.roots = roots

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_concurrency(project)
        entry, parent = analysis.concurrent_entry_states(self.roots)
        atoms = _registry_atoms(self.registry)
        for func in project.functions():
            state = entry.get(func.qualname)
            if state is None:
                continue
            entry_guards, masked = state
            reported: set[str] = set()
            for access in analysis.facts[func.qualname].accesses:
                if access.atom not in atoms or access.atom in reported:
                    continue
                if entry_guards | access.guards:
                    continue
                if _owner_class(access.atom) in masked:
                    continue
                reported.add(access.atom)
                chain = _root_chain(parent, func.qualname)
                module = project.modules[func.module]
                yield self.finding(
                    path=module.path,
                    line=access.line,
                    column=1,
                    message=(
                        f"{func.qualname} mutates {_atom_field(access.atom)} "
                        f"with no guard held on the concurrent path "
                        f"{' -> '.join(chain)} — protect it with a "
                        f"GuardedCache/AtomicSwap or a shared ReentrantGuard "
                        f"(repro.util.sync)"
                    ),
                )


def _root_chain(parent: dict[str, tuple[str, int] | None], name: str) -> list[str]:
    chain = [name]
    seen = {name}
    current: str | None = name
    while current is not None:
        step = parent.get(current)
        if step is None:
            break
        current = step[0]
        if current in seen:
            break
        seen.add(current)
        chain.append(current)
    chain.reverse()
    return chain


# ---------------------------------------------------------------------------
# RL301 — check-then-act.
# ---------------------------------------------------------------------------


class CheckThenActRule(GraphRule):
    """RL301: unguarded check-then-act fill on a registry cache field.

    An ``if self._f is None:`` / ``if key not in cache:`` test (or an
    aliased form through ``x = cache.get(k)``) outside any guard, in a
    function that also reaches an unguarded write of the same field,
    leaves the classic window: two racers both see "absent" and both
    fill.  ``GuardedCache.get_or_build`` closes it; double-checked tests
    *inside* a guard are sanctioned and skipped.
    """

    code = "RL301"
    summary = "unguarded check-then-act fill on a registered cache field"

    def __init__(self, registry: tuple[CacheSpec, ...] = DEFAULT_CACHE_REGISTRY):
        self.registry = registry

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_concurrency(project)
        cache_atoms = _registry_cache_atoms(self.registry)
        unguarded = analysis.unguarded_atoms()
        for func in project.functions():
            facts = analysis.facts.get(func.qualname)
            if facts is None:
                continue
            reported: set[str] = set()
            for check in facts.checks:
                if check.atom not in cache_atoms or check.atom in reported:
                    continue
                if check.guards:
                    continue  # double-checked locking: sanctioned
                if check.atom not in unguarded.get(func.qualname, frozenset()):
                    continue
                reported.add(check.atom)
                witness = analysis.unguarded_witness(func.qualname, check.atom)
                via = (
                    f" (fill via {' -> '.join(witness)})"
                    if len(witness) > 1
                    else ""
                )
                module = project.modules[func.module]
                yield self.finding(
                    path=module.path,
                    line=check.line,
                    column=1,
                    message=(
                        f"check-then-act on {_atom_field(check.atom)} outside "
                        f"any guard{via} — two racers can both see 'absent' "
                        f"and both fill; use GuardedCache.get_or_build "
                        f"(repro.util.sync)"
                    ),
                )


# ---------------------------------------------------------------------------
# RL302 — non-atomic invalidate/rebuild.
# ---------------------------------------------------------------------------


class AtomicPublishRule(GraphRule):
    """RL302: publish-by-replacement violated, or inconsistent lock sets.

    Two checks:

    * in-place mutation (store-through / container method) of a
      :data:`SWAP_PUBLISHED_FIELDS` field — a reader holding the old
      reference must keep a consistent snapshot, so these fields are
      rebuilt and swapped, never patched;
    * for each registry cache field, every function writing it holds
      some guard set — if at least one holds a guard but no single token
      is common to all accessors, the locking is decorative (classic
      inconsistent-lock-set).  Constructors (``__init__`` /
      ``__post_init__``) are exempt: they install the field before the
      object can escape to another thread (RacerD's ownership rule), so
      their unguarded initial assignment must not poison the
      intersection.
    """

    code = "RL302"
    summary = "non-atomic invalidate/rebuild of a registered cache field"

    def __init__(
        self,
        registry: tuple[CacheSpec, ...] = DEFAULT_CACHE_REGISTRY,
        swap_fields: frozenset[str] = SWAP_PUBLISHED_FIELDS,
    ) -> None:
        self.registry = registry
        self.swap_atoms = frozenset(f"mutates:{name}" for name in swap_fields)

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_concurrency(project)
        yield from self._check_in_place(project, analysis)
        yield from self._check_lock_sets(project, analysis)

    def _check_in_place(
        self, project: ProjectIndex, analysis: ConcurrencyAnalysis
    ) -> Iterator[Finding]:
        for func in project.functions():
            for access in analysis.facts.get(func.qualname, _FunctionFacts()).accesses:
                if access.atom not in self.swap_atoms:
                    continue
                if access.kind not in ("store", "mutator"):
                    continue
                module = project.modules[func.module]
                yield self.finding(
                    path=module.path,
                    line=access.line,
                    column=1,
                    message=(
                        f"{func.qualname} mutates {_atom_field(access.atom)} "
                        f"in place — this field publishes by replacement: "
                        f"rebuild the value and AtomicSwap.swap() it so "
                        f"concurrent readers keep a consistent snapshot"
                    ),
                )

    def _check_lock_sets(
        self, project: ProjectIndex, analysis: ConcurrencyAnalysis
    ) -> Iterator[Finding]:
        cache_atoms = _registry_cache_atoms(self.registry)
        # atom → function qualname → intersection of guard sets over sites.
        per_atom: dict[str, dict[str, frozenset[str]]] = {}
        lines: dict[tuple[str, str], int] = {}
        for func in project.functions():
            if func.qualname.rsplit(".", 1)[-1] in _CONSTRUCTOR_NAMES:
                continue  # owned until the object escapes — see class docstring
            for access in analysis.facts.get(func.qualname, _FunctionFacts()).accesses:
                if access.atom not in cache_atoms:
                    continue
                held = per_atom.setdefault(access.atom, {})
                known = held.get(func.qualname)
                held[func.qualname] = (
                    access.guards if known is None else known & access.guards
                )
                key = (access.atom, func.qualname)
                lines[key] = min(lines.get(key, access.line), access.line)
        for atom in sorted(per_atom):
            held = per_atom[atom]
            if len(held) < 2 or all(not guards for guards in held.values()):
                continue  # single accessor, or nothing locked: RL300/301 turf
            common = frozenset.intersection(*held.values())
            if common:
                continue
            offenders = sorted(held)
            anchor = min(
                (name for name in offenders if not held[name]), default=offenders[0]
            )
            func = project.function(anchor)
            if func is None:
                continue
            detail = "; ".join(
                f"{name} holds "
                + (", ".join(sorted(held[name])) if held[name] else "no guard")
                for name in offenders
            )
            module = project.modules[func.module]
            yield self.finding(
                path=module.path,
                line=lines[(atom, anchor)],
                column=1,
                message=(
                    f"inconsistent lock sets on {_atom_field(atom)}: {detail} "
                    f"— no common token protects the field, so the locking "
                    f"is decorative; share one ReentrantGuard or go through "
                    f"the field's GuardedCache/AtomicSwap everywhere"
                ),
            )


# ---------------------------------------------------------------------------
# RL303 — blocking under a guard.
# ---------------------------------------------------------------------------


class BlockingUnderGuardRule(GraphRule):
    """RL303: ``io``/``clock``/``spawns`` reachable while a guard is held.

    Direct sites anchor at the innermost ``with`` line (RacerD's "lock
    held here"); effects inherited through a guarded call site come with
    the effect fixpoint's witness chain.  :mod:`repro.obs` callees are
    allowlisted exactly as in RL203 — counting a cache miss under the
    guard is instrumentation, not blocking.
    """

    code = "RL303"
    summary = "blocking effect while a guard is held"

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        analysis = analyze_concurrency(project)
        effects = analysis.eff.effects(ignore_obs=True)
        for func in project.functions():
            facts = analysis.facts.get(func.qualname)
            if facts is None:
                continue
            module = project.modules[func.module]
            for site in facts.blocking:
                if not site.guards:
                    continue
                yield self.finding(
                    path=module.path,
                    line=site.line,
                    column=1,
                    message=(
                        f"{func.qualname} has a blocking '{site.effect}' "
                        f"effect ({site.origin}) while holding "
                        f"{_render_guards(site.guards)} — move it outside "
                        f"the critical section"
                    ),
                )
            reported: set[tuple[str, str]] = set()
            for call in facts.calls:
                if not call.guards:
                    continue
                if _module_in_obs(call.callee):
                    continue
                callee_effects = effects.get(call.callee, frozenset())
                for effect in _BLOCKING_EFFECTS:
                    if effect not in callee_effects:
                        continue
                    if (call.callee, effect) in reported:
                        continue
                    reported.add((call.callee, effect))
                    witness = [func.qualname] + analysis.eff.witness_path(
                        call.callee, effect, ignore_obs=True
                    )
                    origin = analysis.eff.origin_of(witness[-1], effect)
                    yield self.finding(
                        path=module.path,
                        line=call.line,
                        column=1,
                        message=(
                            f"{func.qualname} reaches a blocking "
                            f"'{effect}' effect ({origin}) via "
                            f"{' -> '.join(witness)} while holding "
                            f"{_render_guards(call.guards)} — move it "
                            f"outside the critical section"
                        ),
                    )


def _render_guards(guards: frozenset[str]) -> str:
    return ", ".join(sorted(guards))
