"""Command-line front end for reprolint + reprograph.

Invoked as ``repro lint`` (via :mod:`repro.cli`) or directly as
``python -m repro.analysis``::

    python -m repro.analysis src/repro            # human output
    python -m repro.analysis src --format json    # machine output
    python -m repro.analysis src --format sarif   # SARIF 2.1.0 to stdout
    python -m repro.analysis src --sarif out.sarif
    python -m repro.analysis src --select RL001,RL100
    python -m repro.analysis src tests --baseline .reprolint-baseline.json
    python -m repro.analysis src --baseline b.json --write-baseline
    python -m repro.analysis src --effects effects.json

Every invocation runs the per-file rules (RL001–RL010) *and* the
whole-program rules (RL100–RL104 reprograph, RL200–RL203 effect
inference) in one pass.  ``--effects FILE`` additionally serializes the
inferred per-function effect table (``-`` for stdout) so purity
regressions show up as diffs.

With ``--baseline FILE``, findings matching the committed baseline are
reported as tracked legacy debt and do not fail the run; new findings
and stale baseline entries do.  ``--write-baseline`` regenerates the
file from the current findings and exits 0.

Exit status: 0 when clean (or all findings baselined), 1 when new
findings or stale baseline entries remain, 2 on usage errors (missing
paths, unknown rule codes, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from .baseline import Baseline
from .effects import format_effect_table
from .engine import Finding, LintEngine, format_findings, format_findings_json
from .rules import DEFAULT_GRAPH_RULES, DEFAULT_RULES, all_rule_codes
from .sarif import format_findings_sarif
from .symbols import ProjectIndex

__all__ = ["build_parser", "main", "run_lint"]


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "reprolint: domain-aware static analysis for the reproduction "
            "(score ranges, engine-equivalence tolerance, seeded "
            "randomness, deterministic ordering, layering contracts, "
            "web-content taint, fork safety)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to lint (``*.py`` under directories)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json", "sarif"],
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted legacy findings; matching findings "
            "don't fail the run, stale entries do"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate --baseline FILE from the current findings and exit",
    )
    parser.add_argument(
        "--effects",
        default=None,
        metavar="FILE",
        help=(
            "also write the inferred per-function effect table as "
            "deterministic JSON ('-' for stdout)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_report(args: argparse.Namespace, findings: list[Finding]) -> None:
    if args.format == "json":
        print(format_findings_json(findings))
    elif args.format == "sarif":
        print(format_findings_sarif(findings))
    else:
        print(format_findings(findings))


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in (*DEFAULT_RULES, *DEFAULT_GRAPH_RULES):
            print(f"{rule.code}  {rule.summary}")
        return 0

    select: frozenset[str] | None = None
    if args.select is not None:
        select = frozenset(
            code.strip() for code in args.select.split(",") if code.strip()
        )
        unknown = select - frozenset(all_rule_codes())
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.write_baseline and args.baseline is None:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    engine = LintEngine(
        DEFAULT_RULES, select=select, graph_rules=DEFAULT_GRAPH_RULES
    )
    findings = engine.lint_project(args.paths)

    if getattr(args, "effects", None) is not None:
        table = format_effect_table(
            ProjectIndex.build(LintEngine.discover(args.paths))
        )
        if args.effects == "-":
            print(table)
        else:
            Path(args.effects).write_text(table + "\n", encoding="utf-8")

    def write_sarif(reported: list[Finding]) -> None:
        if args.sarif is not None:
            Path(args.sarif).write_text(
                format_findings_sarif(reported) + "\n", encoding="utf-8"
            )

    if args.baseline is None:
        write_sarif(findings)
        _print_report(args, findings)
        return 1 if findings else 0

    if args.write_baseline:
        write_sarif(findings)
        Baseline.from_findings(findings).write(args.baseline)
        print(
            f"reprolint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.baseline}"
        )
        return 0

    try:
        baseline = Baseline.load(args.baseline)
    except (ValueError, OSError) as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    result = baseline.apply(findings)
    # SARIF mirrors the machine report: only the *new* findings fail CI,
    # so a fully-baselined run uploads an empty result list.
    write_sarif(result.new)

    # Machine formats carry only the *new* findings — exactly what CI
    # should annotate; suppressed debt stays visible in human output.
    _print_report(args, result.new)
    if args.format == "human":
        if result.suppressed:
            print(
                f"reprolint: {len(result.suppressed)} baselined legacy "
                f"finding(s) suppressed"
            )
        for entry in result.stale:
            print(
                f"reprolint: stale baseline entry {entry.code} at "
                f"{entry.path} ({entry.text!r}) — debt paid, remove it "
                f"(re-run with --write-baseline)"
            )
    elif result.stale:
        print(
            f"reprolint: {len(result.stale)} stale baseline entr"
            f"{'y' if len(result.stale) == 1 else 'ies'}",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    args = build_parser(prog="python -m repro.analysis").parse_args(argv)
    return run_lint(args)
