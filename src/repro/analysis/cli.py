"""Command-line front end for reprolint.

Invoked as ``repro lint`` (via :mod:`repro.cli`) or directly as
``python -m repro.analysis``::

    python -m repro.analysis src/repro            # human output
    python -m repro.analysis src --format json    # machine output
    python -m repro.analysis src --select RL001,RL005

Exit status: 0 when clean, 1 when findings remain, 2 on usage errors
(missing paths, unknown rule codes).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from .engine import LintEngine, format_findings, format_findings_json
from .rules import DEFAULT_RULES, all_rule_codes

__all__ = ["build_parser", "main", "run_lint"]


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "reprolint: domain-aware static analysis for the reproduction "
            "(score ranges, engine-equivalence tolerance, seeded "
            "randomness, deterministic ordering)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to lint (``*.py`` under directories)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    select: frozenset[str] | None = None
    if args.select is not None:
        select = frozenset(
            code.strip() for code in args.select.split(",") if code.strip()
        )
        unknown = select - frozenset(all_rule_codes())
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    engine = LintEngine(DEFAULT_RULES, select=select)
    findings = engine.lint_paths(args.paths)
    if args.format == "json":
        print(format_findings_json(findings))
    else:
        print(format_findings(findings))
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    args = build_parser(prog="python -m repro.analysis").parse_args(argv)
    return run_lint(args)
