"""SARIF 2.1.0 output for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the interchange
format CI systems ingest for code-scanning annotations.  This module
emits the minimal valid subset: one ``run`` with a ``tool.driver``
describing every rule that fired plus one ``result`` per finding, with
file locations as relative URIs.  The document is deterministic for a
given finding list (sorted keys, stable rule ordering), which is what
the golden-file test asserts.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from .engine import Finding

__all__ = ["SARIF_VERSION", "findings_to_sarif", "format_findings_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "reprolint"


def _rule_descriptor(code: str, summary: str) -> dict[str, object]:
    descriptor: dict[str, object] = {"id": code}
    if summary:
        descriptor["shortDescription"] = {"text": summary}
    return descriptor


def _result(finding: Finding) -> dict[str, object]:
    return {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
    }


def findings_to_sarif(findings: Sequence[Finding]) -> dict[str, object]:
    """The findings as a SARIF 2.1.0 document (as a plain dict)."""
    rules: dict[str, dict[str, object]] = {}
    for finding in findings:
        rules.setdefault(finding.code, _rule_descriptor(finding.code, finding.summary))
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://example.invalid/reprolint",
                        "rules": [rules[code] for code in sorted(rules)],
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }


def format_findings_sarif(findings: Sequence[Finding]) -> str:
    """Findings rendered as a SARIF JSON string (stable, indented)."""
    return json.dumps(findings_to_sarif(findings), indent=2, sort_keys=True)
