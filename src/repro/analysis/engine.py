"""The reprolint engine: rules, suppressions, file walking, reports.

Design: a :class:`Rule` is a small object with a stable ``code``
(``RLxxx``), a one-line ``summary``, and a ``check`` method that receives
a parsed module plus a :class:`RuleContext` and yields :class:`Finding`
objects.  The engine owns everything rule-independent:

* discovering ``*.py`` files under the given paths,
* parsing once per file and handing every rule the same tree,
* honouring ``# reprolint: disable=RL001[,RL002]`` / ``disable-all``
  suppression comments on the offending line,
* rendering findings as human-readable text or a JSON document.

Rules are deliberately *domain-aware* rather than general-purpose: each
encodes an invariant of this reproduction (score ranges from §3.1, the
1e-9 engine-equivalence contract, byte-identical parallel merges), so the
engine keeps the plumbing minimal and auditable instead of growing a
generic plugin ecosystem.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .symbols import ProjectIndex

__all__ = [
    "Finding",
    "GraphRule",
    "LintEngine",
    "Rule",
    "RuleContext",
    "format_findings",
    "format_findings_json",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
]

#: ``# reprolint: disable=RL001,RL002`` or ``# reprolint: disable-all``.
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+)|(?P<all>-all))",
)

#: Shape of one finding in ``--format json`` output (kept in sync with
#: :func:`format_findings_json`; tests assert against this).
JSON_SCHEMA_KEYS = ("path", "line", "column", "code", "message", "summary")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    column: int
    code: str
    message: str
    summary: str = ""

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human output line."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"


@dataclass(frozen=True, slots=True)
class RuleContext:
    """Everything a rule may consult besides the AST itself."""

    path: str
    source: str
    lines: tuple[str, ...]

    def line_text(self, lineno: int) -> str:
        """1-based source line, or ``""`` past EOF (synthesized nodes)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``code`` and ``summary`` and implement :meth:`check`.
    ``finding`` is a convenience that stamps the rule's code/summary onto
    a location taken from an AST node.
    """

    code: str = "RL000"
    summary: str = ""

    def check(self, tree: ast.Module, context: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, context: RuleContext, message: str) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            summary=self.summary,
        )


class GraphRule:
    """Base class for whole-program (reprograph) rules.

    Unlike :class:`Rule`, a graph rule runs once per lint invocation over
    the :class:`~repro.analysis.symbols.ProjectIndex` of every linted
    file, so it can see cross-module facts: layering violations, taint
    paths, fork hazards, dead modules, import cycles.  Findings still
    anchor to one ``(path, line)`` and honour the same
    ``# reprolint: disable=RLxxx`` suppressions.
    """

    code: str = "RL100"
    summary: str = ""

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, line: int, column: int, message: str
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            column=column,
            code=self.code,
            message=message,
            summary=self.summary,
        )


def _suppressed_codes(
    source: str, tree: ast.Module | None = None
) -> dict[int, frozenset[str] | None]:
    """Map line number → suppressed codes (``None`` = all codes).

    Comments are found with :mod:`tokenize` so string literals containing
    the magic text don't suppress anything.  A suppression applies to the
    physical line it sits on, which is also where multi-line statements
    report their findings (``node.lineno`` is the first line) — except
    ``with`` statements, whose parenthesized multi-line headers put the
    closing ``):`` (the natural comment spot) lines below the anchor.
    When *tree* is given, suppressions anywhere in a ``with`` header are
    additionally projected onto the statement's anchor line.
    """
    suppressions: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            if match.group("all") is not None:
                suppressions[line] = None
                continue
            codes = frozenset(
                code.strip()
                for code in (match.group("codes") or "").split(",")
                if code.strip()
            )
            existing = suppressions.get(line, frozenset())
            if existing is None:
                continue  # disable-all already wins on this line
            suppressions[line] = existing | codes
    except tokenize.TokenError:
        # Unparseable token stream: fall through with whatever was found;
        # the caller will surface the SyntaxError from ast.parse instead.
        pass
    if tree is not None and suppressions:
        _project_header_suppressions(tree, suppressions)
    return suppressions


def _project_header_suppressions(
    tree: ast.Module, suppressions: dict[int, frozenset[str] | None]
) -> None:
    """Anchor ``with``-header suppressions onto the statement line.

    Findings on a ``with`` statement (RL303 blocking-under-guard, most
    prominently) report ``node.lineno``, but a multi-line header's
    comment typically sits on a later physical line of the same header.
    Merge every suppression found between the anchor and the first body
    line onto the anchor.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not node.body:
            continue
        anchor = node.lineno
        header_end = max(anchor, node.body[0].lineno - 1)
        for line in range(anchor, header_end + 1):
            if line == anchor or line not in suppressions:
                continue
            found = suppressions[line]
            existing = suppressions.get(anchor, frozenset())
            if found is None or existing is None:
                suppressions[anchor] = None
            else:
                suppressions[anchor] = existing | found


def _is_suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    codes = suppressions.get(finding.line, frozenset())
    if codes is None:
        return True
    return finding.code in codes


class LintEngine:
    """Runs a set of rules over sources, files, and directory trees."""

    def __init__(
        self,
        rules: Sequence[Rule],
        select: Iterable[str] | None = None,
        graph_rules: Sequence[GraphRule] = (),
    ) -> None:
        selected = None if select is None else frozenset(select)
        self.rules: tuple[Rule, ...] = tuple(
            rule
            for rule in rules
            if selected is None or rule.code in selected
        )
        self.graph_rules: tuple[GraphRule, ...] = tuple(
            rule
            for rule in graph_rules
            if selected is None or rule.code in selected
        )

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one module's source text; honours suppression comments."""
        tree = ast.parse(source, filename=path)
        context = RuleContext(
            path=path, source=source, lines=tuple(source.splitlines())
        )
        suppressions = _suppressed_codes(source, tree)
        findings = [
            finding
            for rule in self.rules
            for finding in rule.check(tree, context)
            if not _is_suppressed(finding, suppressions)
        ]
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
        return findings

    def lint_file(self, path: str | Path) -> list[Finding]:
        file_path = Path(path)
        return self.lint_source(
            file_path.read_text(encoding="utf-8"), str(file_path)
        )

    @staticmethod
    def discover(paths: Iterable[str | Path]) -> list[Path]:
        """Every ``*.py`` file under *paths* (files or directories)."""
        files: list[Path] = []
        for path in paths:
            target = Path(path)
            if target.is_dir():
                files.extend(sorted(target.rglob("*.py")))
            else:
                files.append(target)
        return files

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Run the per-file rules over every ``*.py`` file under *paths*."""
        findings: list[Finding] = []
        for file_path in self.discover(paths):
            findings.extend(self.lint_file(file_path))
        return findings

    def lint_project(self, paths: Iterable[str | Path]) -> list[Finding]:
        """One-pass whole-project lint: per-file rules plus graph rules.

        The graph rules see a :class:`~repro.analysis.symbols.ProjectIndex`
        built from exactly the files the per-file rules visited, so
        ``repro lint src tests`` yields file findings and cross-module
        findings in a single report.  Graph findings honour the same
        per-line suppression comments as file findings.
        """
        files = self.discover(paths)
        findings: list[Finding] = []
        suppressions_by_path: dict[str, dict[int, frozenset[str] | None]] = {}
        for file_path in files:
            source = file_path.read_text(encoding="utf-8")
            findings.extend(self.lint_source(source, str(file_path)))
            try:
                tree: ast.Module | None = ast.parse(source, filename=str(file_path))
            except SyntaxError:
                tree = None
            suppressions_by_path[str(file_path)] = _suppressed_codes(source, tree)
        if self.graph_rules:
            from .symbols import ProjectIndex

            project = ProjectIndex.build(files)
            for rule in self.graph_rules:
                for finding in rule.check_project(project):
                    suppressions = suppressions_by_path.get(finding.path, {})
                    if not _is_suppressed(finding, suppressions):
                        findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
        return findings


def _default_engine(select: Iterable[str] | None = None) -> LintEngine:
    from .rules import DEFAULT_GRAPH_RULES, DEFAULT_RULES

    return LintEngine(DEFAULT_RULES, select=select, graph_rules=DEFAULT_GRAPH_RULES)


def lint_source(
    source: str, path: str = "<string>", select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint source text with the default rule set."""
    return _default_engine(select).lint_source(source, path)


def lint_file(
    path: str | Path, select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint one file with the default rule set."""
    return _default_engine(select).lint_file(path)


def lint_paths(
    paths: Iterable[str | Path], select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint files/directories with the default per-file rule set."""
    return _default_engine(select).lint_paths(paths)


def lint_project(
    paths: Iterable[str | Path], select: Iterable[str] | None = None
) -> list[Finding]:
    """Whole-project lint: per-file rules plus the reprograph rules."""
    return _default_engine(select).lint_project(paths)


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a tally."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_code: dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        tally = ", ".join(
            f"{code}×{count}" for code, count in sorted(by_code.items())
        )
        lines.append(f"reprolint: {len(findings)} finding(s) ({tally})")
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def format_findings_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N}``."""
    payload = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "column": f.column,
                "code": f.code,
                "message": f.message,
                "summary": f.summary,
            }
            for f in findings
        ],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
