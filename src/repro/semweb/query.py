"""Basic graph pattern (BGP) matching over the triple store.

A deliberately small SPARQL-like core: a query is a list of triple
patterns whose positions are RDF terms or :class:`Variable` objects;
:func:`select` returns every variable binding under which all patterns
hold simultaneously.  This is the conjunctive-query fragment agents need
to interrogate crawled documents ("which peers does X trust with value
above v, and what did they rate?") without a full SPARQL engine.

The solver orders patterns greedily by estimated selectivity (bound
terms first) and evaluates by backtracking over the store's indexes, so
typical star-shaped homepage queries run in time proportional to the
result size.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional, Union

from .rdf import Graph, Node

__all__ = ["Variable", "select", "select_one"]


class Variable(str):
    """A named query variable (``Variable("x")`` prints as ``?x``)."""

    def __repr__(self) -> str:
        return f"?{str(self)}"


Term = Union[Node, Variable]
Pattern = tuple[Term, Term, Term]
Binding = dict[Variable, Node]


def _resolve(term: Term, binding: Binding) -> Optional[Node]:
    """The concrete node for *term* under *binding*, or None if unbound."""
    if isinstance(term, Variable):
        return binding.get(term)
    return term


def _selectivity(pattern: Pattern, binding: Binding) -> int:
    """Bound positions count; higher is evaluated earlier."""
    return sum(1 for term in pattern if _resolve(term, binding) is not None)


def _match_pattern(
    graph: Graph, pattern: Pattern, binding: Binding
) -> Iterator[Binding]:
    subject, predicate, obj = (_resolve(term, binding) for term in pattern)
    for s, p, o in graph.triples((subject, predicate, obj)):
        extended = dict(binding)
        consistent = True
        for term, value in zip(pattern, (s, p, o)):
            if isinstance(term, Variable):
                bound = extended.get(term)
                if bound is None:
                    extended[term] = value
                elif bound != value:
                    # The same variable occurs twice in this pattern with
                    # conflicting values (e.g. (?x, p, ?x)).
                    consistent = False
                    break
        if consistent:
            yield extended


def _solve(
    graph: Graph, patterns: list[Pattern], binding: Binding
) -> Iterator[Binding]:
    if not patterns:
        yield binding
        return
    # Greedy: evaluate the currently most selective pattern next.
    index = max(range(len(patterns)), key=lambda i: _selectivity(patterns[i], binding))
    chosen = patterns[index]
    rest = patterns[:index] + patterns[index + 1:]
    for extended in _match_pattern(graph, chosen, binding):
        yield from _solve(graph, rest, extended)


def select(graph: Graph, patterns: list[Pattern]) -> list[Binding]:
    """All variable bindings satisfying every pattern (may be empty).

    Bindings are returned in a deterministic order (sorted by their
    N-Triples rendering) so query results are stable across runs.
    """
    if not patterns:
        return []
    results = list(_solve(graph, list(patterns), {}))
    # Deduplicate (two derivations can yield equal bindings) and sort.
    unique = {tuple(sorted((str(k), v.n3()) for k, v in b.items())): b for b in results}
    return [unique[key] for key in sorted(unique)]


def select_one(graph: Graph, patterns: list[Pattern]) -> Optional[Binding]:
    """The first solution, or ``None`` — for existence-style queries."""
    if not patterns:
        return None
    for binding in _solve(graph, list(patterns), {}):
        return binding
    return None
