"""Machine-readable agent homepages: FOAF + trust + ratings ↔ core models.

§4 of the paper grounds the information model in concrete Web artifacts:
FOAF homepages ("machine-readable homepages based upon RDF") extended with
weighted trust relationships (Golbeck's proposal, ref. [4]) and implicit
product ratings mined from weblogs keyed by ISBN.  This module converts
between :mod:`repro.core.models` objects and those documents:

* :func:`publish_agent` / :func:`parse_agent_homepage` — one document per
  agent holding its name, ``foaf:knows`` links (so crawlers can walk the
  acquaintance network even if they ignore the trust extension), reified
  trust statements with continuous values, and rating statements;
* :func:`publish_taxonomy` / :func:`parse_taxonomy` — the globally shared
  taxonomy ``C``, published as ``rdfs:subClassOf`` assertions;
* :func:`publish_catalog` / :func:`parse_catalog` — the product set ``B``
  with descriptor assignments ``f``.

Blank-node identifiers are deterministic (sorted by target/product), so
publish → serialize → parse round-trips reproduce identical graphs.
"""

from __future__ import annotations

from ..core.models import Agent, Rating, TrustStatement
from ..core.models import Product
from ..core.taxonomy import Taxonomy
from .namespace import FOAF, RDF, RDFS, REPRO, TRUST
from .rdf import BNode, Graph, Literal, URIRef

__all__ = [
    "parse_agent_homepage",
    "parse_catalog",
    "parse_taxonomy",
    "publish_agent",
    "publish_catalog",
    "publish_taxonomy",
]


def publish_agent(
    agent: Agent,
    trust: dict[str, float],
    ratings: dict[str, float],
) -> Graph:
    """Build the agent's machine-readable homepage graph.

    *trust* maps trusted/distrusted agent URIs to values; *ratings* maps
    product identifiers to rating values.
    """
    me = URIRef(agent.uri)
    graph = Graph()
    graph.add((me, RDF.type, FOAF.Person))
    if agent.name:
        graph.add((me, FOAF.name, Literal(agent.name)))
    for index, target in enumerate(sorted(trust)):
        value = trust[target]
        peer = URIRef(target)
        # foaf:knows keeps the document walkable for plain-FOAF crawlers.
        graph.add((me, FOAF.knows, peer))
        statement = BNode(f"t{index}")
        graph.add((me, TRUST.trusts, statement))
        graph.add((statement, TRUST.target, peer))
        graph.add((statement, TRUST.value, Literal(float(value))))
    for index, product in enumerate(sorted(ratings)):
        value = ratings[product]
        statement = BNode(f"r{index}")
        graph.add((me, REPRO.rates, statement))
        graph.add((statement, REPRO.product, URIRef(product)))
        graph.add((statement, REPRO.value, Literal(float(value))))
    return graph


def parse_agent_homepage(
    graph: Graph,
) -> tuple[Agent, list[TrustStatement], list[Rating]]:
    """Extract the agent, its trust statements and its ratings from a homepage.

    The document's principal is the unique subject typed ``foaf:Person``;
    a homepage with zero or several persons is rejected — crawled
    documents that merge several people's data cannot be attributed.
    Malformed statements (missing target/value, out-of-range values) are
    skipped rather than fatal: real crawls encounter broken metadata and
    must salvage the rest of the document.
    """
    persons = list(graph.subjects(RDF.type, FOAF.Person))
    if len(persons) != 1:
        raise ValueError(
            f"expected exactly one foaf:Person per homepage, found {len(persons)}"
        )
    me = persons[0]
    if not isinstance(me, URIRef):
        raise ValueError("the principal of a homepage must be a URI")
    name_term = graph.value(subject=me, predicate=FOAF.name)
    name = name_term.lexical if isinstance(name_term, Literal) else ""
    agent = Agent(uri=str(me), name=name)

    trust_statements: list[TrustStatement] = []
    for statement in graph.objects(me, TRUST.trusts):
        target = graph.value(subject=statement, predicate=TRUST.target)
        value = graph.value(subject=statement, predicate=TRUST.value)
        if not isinstance(target, URIRef) or not isinstance(value, Literal):
            continue
        try:
            trust_statements.append(
                TrustStatement(
                    source=agent.uri,
                    target=str(target),
                    value=float(value.to_python()),
                )
            )
        except (TypeError, ValueError):
            continue

    rating_statements: list[Rating] = []
    for statement in graph.objects(me, REPRO.rates):
        product = graph.value(subject=statement, predicate=REPRO.product)
        value = graph.value(subject=statement, predicate=REPRO.value)
        if not isinstance(product, URIRef) or not isinstance(value, Literal):
            continue
        try:
            rating_statements.append(
                Rating(
                    agent=agent.uri,
                    product=str(product),
                    value=float(value.to_python()),
                )
            )
        except (TypeError, ValueError):
            continue

    trust_statements.sort(key=lambda s: s.target)
    rating_statements.sort(key=lambda r: r.product)
    return agent, trust_statements, rating_statements


def _topic_uri(topic: str) -> URIRef:
    return URIRef(f"http://repro.example.org/topic/{topic}")


def _topic_id(term: URIRef) -> str:
    prefix = "http://repro.example.org/topic/"
    text = str(term)
    return text[len(prefix):] if text.startswith(prefix) else text


def publish_taxonomy(taxonomy: Taxonomy) -> Graph:
    """Publish the shared taxonomy ``C`` as ``rdfs:subClassOf`` assertions."""
    graph = Graph()
    root_term = _topic_uri(taxonomy.root)
    graph.add((root_term, RDF.type, REPRO.Topic))
    graph.add((root_term, RDFS.label, Literal(taxonomy.label(taxonomy.root))))
    for topic in taxonomy:
        parent = taxonomy.parent(topic)
        if parent is None:
            continue
        term = _topic_uri(topic)
        graph.add((term, RDF.type, REPRO.Topic))
        graph.add((term, RDFS.label, Literal(taxonomy.label(topic))))
        graph.add((term, RDFS.subClassOf, _topic_uri(parent)))
    return graph


def parse_taxonomy(graph: Graph) -> Taxonomy:
    """Rebuild a :class:`Taxonomy` from a published taxonomy graph."""
    edges: list[tuple[str, str]] = []
    labels: dict[str, str] = {}
    children: set[str] = set()
    topics: set[str] = set()
    for subject in graph.subjects(RDF.type, REPRO.Topic):
        if isinstance(subject, URIRef):
            topics.add(_topic_id(subject))
    for subject, _, obj in graph.triples((None, RDFS.subClassOf, None)):
        if isinstance(subject, URIRef) and isinstance(obj, URIRef):
            child = _topic_id(subject)
            parent = _topic_id(obj)
            edges.append((parent, child))
            children.add(child)
            topics.update((child, parent))
    for subject, _, obj in graph.triples((None, RDFS.label, None)):
        if isinstance(subject, URIRef) and isinstance(obj, Literal):
            labels[_topic_id(subject)] = obj.lexical
    roots = sorted(topics - children)
    if len(roots) != 1:
        raise ValueError(f"taxonomy graph must have exactly one root, found {roots}")
    return Taxonomy.from_edges(roots[0], edges, labels)


def publish_catalog(products: dict[str, Product]) -> Graph:
    """Publish the product set ``B`` with descriptor assignments ``f``."""
    graph = Graph()
    for identifier in sorted(products):
        product = products[identifier]
        term = URIRef(identifier)
        graph.add((term, RDF.type, REPRO.Product))
        if product.title:
            graph.add((term, RDFS.label, Literal(product.title)))
        for topic in sorted(product.descriptors):
            graph.add((term, REPRO.descriptor, _topic_uri(topic)))
    return graph


def parse_catalog(graph: Graph) -> dict[str, Product]:
    """Rebuild the product dictionary from a published catalog graph."""
    products: dict[str, Product] = {}
    for subject in graph.subjects(RDF.type, REPRO.Product):
        if not isinstance(subject, URIRef):
            continue
        label = graph.value(subject=subject, predicate=RDFS.label)
        descriptors = frozenset(
            _topic_id(obj)
            for obj in graph.objects(subject, REPRO.descriptor)
            if isinstance(obj, URIRef)
        )
        products[str(subject)] = Product(
            identifier=str(subject),
            title=label.lexical if isinstance(label, Literal) else "",
            descriptors=descriptors,
        )
    return products
