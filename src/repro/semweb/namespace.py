"""Namespace helpers and the vocabularies used by the system.

The paper's deployment section (§4) grounds the information model in FOAF
homepages extended with trust statements (Golbeck's trust module) and
rating/taxonomy statements.  With no network access we define the
vocabularies locally; URIs follow the real FOAF namespace plus two project
namespaces for the trust and rating extensions.
"""

from __future__ import annotations

from .rdf import URIRef

__all__ = ["Namespace", "RDF", "RDFS", "FOAF", "TRUST", "REPRO"]


class Namespace(str):
    """A URI prefix that mints :class:`URIRef` terms via attribute access.

    >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    >>> FOAF.knows
    URIRef('http://xmlns.com/foaf/0.1/knows')
    >>> FOAF["made"]
    URIRef('http://xmlns.com/foaf/0.1/made')
    """

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("__"):
            raise AttributeError(name)
        return URIRef(self + name)

    def __getitem__(self, name: str) -> URIRef:
        return URIRef(self + name)

    def term(self, name: str) -> URIRef:
        """Mint a term explicitly (useful for names shadowing str methods)."""
        return URIRef(self + name)


#: Core RDF vocabulary (``rdf:type`` is the only term the system needs).
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")

#: RDF Schema vocabulary — ``rdfs:label`` and ``rdfs:subClassOf`` model the
#: taxonomy's topic labels and the partial subset order ≤ of §3.1.
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")

#: Friend-of-a-Friend: agents, names, homepages and acquaintance links.
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: Trust extension in the spirit of Golbeck et al. [4]: weighted, signed
#: trust statements replacing FOAF's bare ``knows``.
TRUST = Namespace("http://repro.example.org/trust#")

#: Project vocabulary: products, ISBN-style identifiers, implicit ratings
#: and taxonomy descriptors (the sets B, R, C, D and function f of §3.1).
REPRO = Namespace("http://repro.example.org/schema#")
