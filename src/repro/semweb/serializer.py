"""N-Triples serialization and parsing, plus a Turtle-subset writer.

The decentralized infrastructure exchanges documents as flat RDF files
(§2: "messages are exchanged by publishing or updating documents encoded in
RDF, OWL, or similar formats").  N-Triples is the wire format because it is
line-oriented, trivially diffable and round-trip safe; the Turtle writer is
provided for human inspection only.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from .rdf import BNode, Graph, Literal, Node, Triple, URIRef

__all__ = [
    "ParseError",
    "parse_ntriples",
    "serialize_ntriples",
    "serialize_turtle",
]


class ParseError(ValueError):
    """Raised when an N-Triples document is malformed.

    Carries the 1-based line number to make crawler diagnostics useful.
    """

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def serialize_ntriples(graph: Graph) -> str:
    """Serialize *graph* to canonical (sorted) N-Triples text."""
    lines = [
        f"{s.n3()} {p.n3()} {o.n3()} ."
        for s, p, o in graph
    ]
    lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


# One N-Triples term: URI, blank node, or literal with optional suffix.
_TERM = re.compile(
    r"""
    \s*
    (?:
        <(?P<uri>[^>]*)>
      | _:(?P<bnode>[A-Za-z0-9_]+)
      | "(?P<lit>(?:[^"\\]|\\.)*)"
        (?:
            @(?P<lang>[A-Za-z][A-Za-z0-9-]*)
          | \^\^<(?P<dtype>[^>]*)>
        )?
    )
    """,
    re.VERBOSE,
)


def _parse_term(text: str, pos: int, line_number: int) -> tuple[Node, int]:
    match = _TERM.match(text, pos)
    if match is None:
        raise ParseError(f"expected RDF term at column {pos}", line_number)
    if match.group("uri") is not None:
        return URIRef(match.group("uri")), match.end()
    if match.group("bnode") is not None:
        return BNode(match.group("bnode")), match.end()
    lexical = Literal.unescape(match.group("lit"))
    lang = match.group("lang")
    dtype = match.group("dtype")
    if lang is not None:
        return Literal(lexical, language=lang), match.end()
    if dtype is not None:
        return Literal(lexical, datatype=URIRef(dtype)), match.end()
    return Literal(lexical), match.end()


def parse_ntriples(text: str) -> Graph:
    """Parse N-Triples *text* into a :class:`Graph`.

    Blank lines and ``#`` comment lines are skipped.  Raises
    :class:`ParseError` on the first malformed line.
    """
    graph = Graph()
    # Split on newline only: str.splitlines would also split on control
    # characters (U+001C-001E, U+0085, ...), which may legitimately occur
    # escaped inside literals but must never act as record separators.
    for line_number, raw_line in enumerate(text.split("\n"), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        subject, pos = _parse_term(line, 0, line_number)
        predicate, pos = _parse_term(line, pos, line_number)
        obj, pos = _parse_term(line, pos, line_number)
        tail = line[pos:].strip()
        if tail != ".":
            raise ParseError(f"expected terminating '.', got {tail!r}", line_number)
        if isinstance(subject, Literal):
            raise ParseError("literal in subject position", line_number)
        if not isinstance(predicate, URIRef):
            raise ParseError("predicate must be a URI", line_number)
        graph.add((subject, predicate, obj))
    return graph


def serialize_turtle(graph: Graph, prefixes: dict[str, str] | None = None) -> str:
    """Serialize *graph* to a readable Turtle subset.

    Groups triples by subject, abbreviates URIs against *prefixes*
    (mapping prefix label to namespace URI) and sorts everything for
    deterministic output.  The output targets human eyes; the parser only
    reads N-Triples.
    """
    prefixes = prefixes or {}

    def abbreviate(term: Node) -> str:
        if isinstance(term, URIRef):
            for label, base in prefixes.items():
                if term.startswith(base) and len(term) > len(base):
                    local = term[len(base):]
                    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.-]*", local):
                        return f"{label}:{local}"
        return term.n3()

    by_subject: dict[Node, list[Triple]] = {}
    for triple in graph:
        by_subject.setdefault(triple[0], []).append(triple)

    lines: list[str] = [
        f"@prefix {label}: <{base}> ."
        for label, base in sorted(prefixes.items())
    ]
    if lines:
        lines.append("")
    for subject in sorted(by_subject, key=lambda n: n.n3()):
        triples = sorted(by_subject[subject], key=lambda t: (t[1].n3(), t[2].n3()))
        lines.append(abbreviate(subject))
        for i, (_, predicate, obj) in enumerate(triples):
            terminator = " ." if i == len(triples) - 1 else " ;"
            lines.append(f"    {abbreviate(predicate)} {abbreviate(obj)}{terminator}")
        lines.append("")
    return "\n".join(lines)


def graphs_isomorphic_simple(left: Graph, right: Graph) -> bool:
    """Ground-triple equality check (no blank-node bijection search).

    Sufficient for this codebase because all published documents use
    deterministic blank-node labels.
    """
    return set(left) == set(right)


def load_ntriples(lines: Iterable[str]) -> Graph:
    """Parse an iterable of N-Triples *lines* (convenience for file objects)."""
    return parse_ntriples("\n".join(lines))
