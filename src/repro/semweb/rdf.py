"""A minimal RDF triple store.

The paper (§3.1) assumes all agent information lives in "machine-readable
homepages" encoded in RDF or OWL.  This module provides the substrate those
documents are built from: node types (:class:`URIRef`, :class:`Literal`,
:class:`BNode`) and an indexed, in-memory :class:`Graph` supporting triple
pattern matching.  It deliberately implements only the subset of RDF the
system needs — no inference, no named graphs — but implements that subset
carefully (hashable immutable terms, three complementary indexes, set
semantics for triples).

The design mirrors rdflib's public API closely enough that code written
against this module would port to rdflib with mechanical changes only.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from typing import Optional, Union

__all__ = [
    "BNode",
    "Graph",
    "Literal",
    "Node",
    "Triple",
    "TriplePattern",
    "URIRef",
]


class Node:
    """Abstract base class for RDF terms.

    Concrete terms are :class:`URIRef`, :class:`Literal` and :class:`BNode`.
    All terms are immutable and hashable so they can be used in set-based
    triple indexes.
    """

    __slots__ = ()

    def n3(self) -> str:
        """Return the N-Triples serialization of this term."""
        raise NotImplementedError


class URIRef(Node, str):
    """An RDF URI reference.

    Subclasses :class:`str` so URIs compare and hash as plain strings,
    which keeps index lookups allocation-free.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return f"URIRef({str.__repr__(self)})"

    def n3(self) -> str:
        return f"<{str(self)}>"


class BNode(Node, str):
    """A blank node with an explicit local identifier.

    Identifiers must be supplied by the caller (e.g. ``BNode("b0")``);
    determinism matters for round-trip serialization tests, so no global
    counter or randomness is involved.  Labels are restricted to
    ``[A-Za-z0-9_]+`` so every blank node serializes to a parseable
    N-Triples label.
    """

    __slots__ = ()

    def __new__(cls, label: str) -> "BNode":
        if not label or not all(
            c.isascii() and (c.isalnum() or c == "_") for c in label
        ):
            raise ValueError(
                f"blank node label must match [A-Za-z0-9_]+, got {label!r}"
            )
        return str.__new__(cls, label)

    def __repr__(self) -> str:
        return f"BNode({str.__repr__(self)})"

    def n3(self) -> str:
        return f"_:{str(self)}"


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}

_UNESCAPES = {v: k for k, v in _ESCAPES.items()}


def _escape_literal(value: str) -> str:
    out = []
    for ch in value:
        escaped = _ESCAPES.get(ch)
        if escaped is not None:
            out.append(escaped)
        elif ord(ch) < 0x20 or ord(ch) == 0x7F:
            # Control characters must not appear raw: several of them
            # (e.g. U+001E) are line separators for str.splitlines and
            # would corrupt the line-oriented N-Triples format.
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def _unescape_literal(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            pair = value[i : i + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                i += 2
                continue
            if value[i + 1] == "u" and i + 6 <= len(value):
                out.append(chr(int(value[i + 2 : i + 6], 16)))
                i += 6
                continue
            if value[i + 1] == "U" and i + 10 <= len(value):
                out.append(chr(int(value[i + 2 : i + 10], 16)))
                i += 10
                continue
        out.append(value[i])
        i += 1
    return "".join(out)


class Literal(Node):
    """An RDF literal with optional datatype or language tag.

    Python values are converted on construction: ``Literal(0.75)`` stores
    the lexical form ``"0.75"`` with an ``xsd:double`` datatype, and
    :meth:`to_python` converts back.
    """

    __slots__ = ("lexical", "datatype", "language")

    _XSD = "http://www.w3.org/2001/XMLSchema#"
    XSD_INTEGER = URIRef(_XSD + "integer")
    XSD_DOUBLE = URIRef(_XSD + "double")
    XSD_BOOLEAN = URIRef(_XSD + "boolean")
    XSD_STRING = URIRef(_XSD + "string")

    def __init__(
        self,
        value: Union[str, int, float, bool],
        datatype: Optional[URIRef] = None,
        language: Optional[str] = None,
    ) -> None:
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot carry both datatype and language")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or self.XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or self.XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or self.XSD_DOUBLE
        else:
            lexical = str(value)
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash((self.lexical, self.datatype, self.language))

    def __repr__(self) -> str:
        parts = [repr(self.lexical)]
        if self.datatype is not None:
            parts.append(f"datatype={self.datatype!r}")
        if self.language is not None:
            parts.append(f"language={self.language!r}")
        return f"Literal({', '.join(parts)})"

    def n3(self) -> str:
        core = f'"{_escape_literal(self.lexical)}"'
        if self.language is not None:
            return f"{core}@{self.language}"
        if self.datatype is not None:
            return f"{core}^^{self.datatype.n3()}"
        return core

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert the literal back to the closest Python value."""
        if self.datatype == self.XSD_INTEGER:
            return int(self.lexical)
        if self.datatype == self.XSD_DOUBLE:
            return float(self.lexical)
        if self.datatype == self.XSD_BOOLEAN:
            return self.lexical == "true"
        return self.lexical

    @staticmethod
    def unescape(lexical: str) -> str:
        """Reverse N-Triples escaping (used by the parser)."""
        return _unescape_literal(lexical)


Triple = tuple[Node, Node, Node]
TriplePattern = tuple[Optional[Node], Optional[Node], Optional[Node]]


class Graph:
    """An in-memory set of RDF triples with SPO/POS/OSP indexes.

    The three indexes cover every triple pattern with at least one bound
    term in a single dictionary walk; fully unbound patterns iterate the
    triple set directly.  Triples have set semantics: adding a duplicate is
    a no-op and ``len`` counts distinct triples.
    """

    __slots__ = ("_triples", "_spo", "_pos", "_osp")

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[Node, dict[Node, set[Node]]] = {}
        self._pos: dict[Node, dict[Node, set[Node]]] = {}
        self._osp: dict[Node, dict[Node, set[Node]]] = {}
        if triples is not None:
            for triple in triples:
                self.add(triple)

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._triples == other._triples

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are unhashable")

    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        return Graph(self._triples)

    def add(self, triple: Triple) -> "Graph":
        """Add a triple; duplicates are ignored.  Returns self for chaining."""
        subject, predicate, obj = triple
        self._validate(subject, predicate, obj)
        if triple in self._triples:
            return self
        self._triples.add(triple)
        self._spo.setdefault(subject, {}).setdefault(predicate, set()).add(obj)
        self._pos.setdefault(predicate, {}).setdefault(obj, set()).add(subject)
        self._osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)
        return self

    def remove(self, pattern: TriplePattern) -> int:
        """Remove every triple matching *pattern*; return the removal count."""
        matched = list(self.triples(pattern))
        for triple in matched:
            self._discard(triple)
        return len(matched)

    def _discard(self, triple: Triple) -> None:
        subject, predicate, obj = triple
        self._triples.discard(triple)
        self._prune(self._spo, subject, predicate, obj)
        self._prune(self._pos, predicate, obj, subject)
        self._prune(self._osp, obj, subject, predicate)

    @staticmethod
    def _prune(
        index: dict[Node, dict[Node, set[Node]]], a: Node, b: Node, c: Node
    ) -> None:
        inner = index.get(a)
        if inner is None:
            return
        values = inner.get(b)
        if values is None:
            return
        values.discard(c)
        if not values:
            del inner[b]
        if not inner:
            del index[a]

    @staticmethod
    def _validate(subject: Node, predicate: Node, obj: Node) -> None:
        if not isinstance(subject, (URIRef, BNode)):
            raise TypeError(f"triple subject must be URIRef or BNode, got {subject!r}")
        if not isinstance(predicate, URIRef):
            raise TypeError(f"triple predicate must be URIRef, got {predicate!r}")
        if not isinstance(obj, (URIRef, BNode, Literal)):
            raise TypeError(f"triple object must be an RDF term, got {obj!r}")

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield every triple matching the (s, p, o) *pattern*.

        ``None`` acts as a wildcard in any position.
        """
        subject, predicate, obj = pattern
        if subject is not None and predicate is not None and obj is not None:
            if (subject, predicate, obj) in self._triples:
                yield (subject, predicate, obj)
        elif subject is not None and predicate is not None:
            for o in self._spo.get(subject, {}).get(predicate, ()):
                yield (subject, predicate, o)
        elif predicate is not None and obj is not None:
            for s in self._pos.get(predicate, {}).get(obj, ()):
                yield (s, predicate, obj)
        elif subject is not None and obj is not None:
            for p in self._osp.get(obj, {}).get(subject, ()):
                yield (subject, p, obj)
        elif subject is not None:
            for p, objects in self._spo.get(subject, {}).items():
                for o in objects:
                    yield (subject, p, o)
        elif predicate is not None:
            for o, subjects in self._pos.get(predicate, {}).items():
                for s in subjects:
                    yield (s, predicate, o)
        elif obj is not None:
            for s, predicates in self._osp.get(obj, {}).items():
                for p in predicates:
                    yield (s, p, obj)
        else:
            yield from self._triples

    def subjects(
        self, predicate: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Node]:
        """Yield distinct subjects of triples matching (?, predicate, obj)."""
        seen: set[Node] = set()
        for s, _, _ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s

    def objects(
        self, subject: Optional[Node] = None, predicate: Optional[Node] = None
    ) -> Iterator[Node]:
        """Yield distinct objects of triples matching (subject, predicate, ?)."""
        seen: set[Node] = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def predicates(
        self, subject: Optional[Node] = None, obj: Optional[Node] = None
    ) -> Iterator[Node]:
        """Yield distinct predicates of triples matching (subject, ?, obj)."""
        seen: set[Node] = set()
        for _, p, _ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p

    def value(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[Node] = None,
        obj: Optional[Node] = None,
        default: Optional[Node] = None,
    ) -> Optional[Node]:
        """Return one term completing the pattern, or *default* if none.

        Exactly one of the three positions must be ``None``; that position
        is the one returned.  Mirrors ``rdflib.Graph.value``.
        """
        unbound = [subject, predicate, obj].count(None)
        if unbound != 1:
            raise ValueError("value() requires exactly one unbound position")
        for s, p, o in self.triples((subject, predicate, obj)):
            if subject is None:
                return s
            if predicate is None:
                return p
            return o
        return default

    def update(self, other: Union["Graph", Iterable[Triple]]) -> "Graph":
        """Add all triples from *other* into this graph."""
        for triple in other:
            self.add(triple)
        return self

    def __or__(self, other: "Graph") -> "Graph":
        return Graph(itertools.chain(self._triples, other._triples))

    def __sub__(self, other: "Graph") -> "Graph":
        return Graph(self._triples - other._triples)

    def __and__(self, other: "Graph") -> "Graph":
        return Graph(self._triples & other._triples)
