"""Semantic Web substrate: triple store, vocabularies, serialization, FOAF."""

from .diff import GraphDelta, HomepageUpdate, graph_diff, summarize_homepage_update
from .namespace import FOAF, RDF, RDFS, REPRO, TRUST, Namespace
from .query import Variable, select, select_one
from .rdf import BNode, Graph, Literal, Node, URIRef
from .validation import Issue, validate_homepage
from .serializer import (
    ParseError,
    parse_ntriples,
    serialize_ntriples,
    serialize_turtle,
)

__all__ = [
    "BNode",
    "FOAF",
    "Graph",
    "GraphDelta",
    "HomepageUpdate",
    "Issue",
    "Literal",
    "Namespace",
    "Node",
    "ParseError",
    "RDF",
    "RDFS",
    "REPRO",
    "TRUST",
    "URIRef",
    "Variable",
    "graph_diff",
    "parse_ntriples",
    "select",
    "select_one",
    "serialize_ntriples",
    "serialize_turtle",
    "summarize_homepage_update",
    "validate_homepage",
]
