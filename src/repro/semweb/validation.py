"""Shape validation for crawled documents — data QA for the open Web.

Crawled metadata is never clean (§2: no superordinate authority controls
what agents publish).  The parsers in :mod:`repro.semweb.foaf` already
*skip* malformed statements; this module makes the skipped problems
visible: :func:`validate_homepage` inspects a homepage graph and returns
a structured issue list a crawler operator can aggregate, rank and act
on.  Validation never mutates and never raises on content problems —
only on programmer errors.

Issue codes (stable identifiers, suitable for counting across a crawl):

* ``no-person`` / ``multiple-persons`` — principal resolution impossible
* ``missing-name`` — cosmetic but common
* ``trust-missing-target`` / ``trust-missing-value`` — dangling reified
  trust statement
* ``trust-out-of-range`` / ``rating-out-of-range`` — value outside
  [-1, +1]
* ``trust-self`` — self-trust statement (meaningless, dropped by parsers)
* ``trust-non-numeric`` / ``rating-non-numeric`` — unusable literal
* ``rating-missing-product`` / ``rating-missing-value`` — dangling rating
* ``foreign-subject-statements`` — triples anchored at a non-principal
  subject (the forgery pattern; see tests/test_security_properties.py)
"""

from __future__ import annotations

from dataclasses import dataclass

from .namespace import FOAF, RDF, REPRO, TRUST
from .rdf import Graph, Literal, Node, URIRef

__all__ = ["Issue", "validate_homepage"]


@dataclass(frozen=True, slots=True)
class Issue:
    """One validation finding: a stable code plus human-readable detail."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"{self.code}: {self.detail}"


def _numeric_value(term: Node | None) -> float | None:
    if not isinstance(term, Literal):
        return None
    try:
        return float(term.to_python())
    except (TypeError, ValueError):
        return None


def validate_homepage(graph: Graph) -> list[Issue]:
    """Validate one agent homepage graph; return all findings (possibly [])."""
    issues: list[Issue] = []
    persons = sorted(
        (p for p in graph.subjects(RDF.type, FOAF.Person)), key=lambda n: n.n3()
    )
    if not persons:
        issues.append(Issue("no-person", "no foaf:Person typed subject"))
        return issues
    if len(persons) > 1:
        listing = ", ".join(p.n3() for p in persons)
        issues.append(Issue("multiple-persons", f"ambiguous principal: {listing}"))
        return issues
    me = persons[0]

    if graph.value(subject=me, predicate=FOAF.name) is None:
        issues.append(Issue("missing-name", f"{me.n3()} carries no foaf:name"))

    for statement in graph.objects(me, TRUST.trusts):
        target = graph.value(subject=statement, predicate=TRUST.target)
        value_term = graph.value(subject=statement, predicate=TRUST.value)
        if target is None:
            issues.append(
                Issue("trust-missing-target", f"statement {statement.n3()}")
            )
        elif target == me:
            issues.append(Issue("trust-self", f"statement {statement.n3()}"))
        if value_term is None:
            issues.append(
                Issue("trust-missing-value", f"statement {statement.n3()}")
            )
            continue
        value = _numeric_value(value_term)
        if value is None:
            issues.append(
                Issue("trust-non-numeric", f"statement {statement.n3()}")
            )
        elif not -1.0 <= value <= 1.0:
            issues.append(
                Issue(
                    "trust-out-of-range",
                    f"statement {statement.n3()} value {value}",
                )
            )

    for statement in graph.objects(me, REPRO.rates):
        product = graph.value(subject=statement, predicate=REPRO.product)
        value_term = graph.value(subject=statement, predicate=REPRO.value)
        if product is None:
            issues.append(
                Issue("rating-missing-product", f"statement {statement.n3()}")
            )
        if value_term is None:
            issues.append(
                Issue("rating-missing-value", f"statement {statement.n3()}")
            )
            continue
        value = _numeric_value(value_term)
        if value is None:
            issues.append(
                Issue("rating-non-numeric", f"statement {statement.n3()}")
            )
        elif not -1.0 <= value <= 1.0:
            issues.append(
                Issue(
                    "rating-out-of-range",
                    f"statement {statement.n3()} value {value}",
                )
            )

    # Foreign-subject statements: trust/rating triples anchored at any
    # URI other than the principal are the forgery pattern.
    foreign: set[str] = set()
    for predicate in (TRUST.trusts, REPRO.rates):
        for subject, _, _ in graph.triples((None, predicate, None)):
            if isinstance(subject, URIRef) and subject != me:
                foreign.add(str(subject))
    for subject in sorted(foreign):
        issues.append(
            Issue(
                "foreign-subject-statements",
                f"statements anchored at non-principal <{subject}>",
            )
        )
    return issues
