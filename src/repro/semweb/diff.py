"""Graph diffing: what changed when a homepage was republished.

Asynchronous document updates (§2) mean a consumer periodically holds
two versions of the same homepage.  :func:`graph_diff` computes the
triple-level delta; :func:`summarize_homepage_update` lifts it to the
domain level — which trust statements and ratings were added, retracted
or revalued — which is what an incremental consumer actually reacts to
(e.g. invalidating one cached profile instead of rebuilding everything).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.models import Rating, TrustStatement
from .foaf import parse_agent_homepage
from .rdf import Graph, Triple

__all__ = ["GraphDelta", "HomepageUpdate", "graph_diff", "summarize_homepage_update"]


@dataclass(frozen=True, slots=True)
class GraphDelta:
    """Triple-level difference between two graphs."""

    added: frozenset[Triple]
    removed: frozenset[Triple]

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)


def graph_diff(old: Graph, new: Graph) -> GraphDelta:
    """Triples present only in *new* (added) / only in *old* (removed)."""
    old_triples = set(old)
    new_triples = set(new)
    return GraphDelta(
        added=frozenset(new_triples - old_triples),
        removed=frozenset(old_triples - new_triples),
    )


@dataclass(frozen=True, slots=True)
class HomepageUpdate:
    """Domain-level summary of a homepage revision.

    ``trust_changed``/``ratings_changed`` hold the *new* statement for
    targets/products present in both versions with a different value.
    """

    agent: str
    trust_added: tuple[TrustStatement, ...] = ()
    trust_removed: tuple[TrustStatement, ...] = ()
    trust_changed: tuple[TrustStatement, ...] = ()
    ratings_added: tuple[Rating, ...] = ()
    ratings_removed: tuple[Rating, ...] = ()
    ratings_changed: tuple[Rating, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.trust_added
            or self.trust_removed
            or self.trust_changed
            or self.ratings_added
            or self.ratings_removed
            or self.ratings_changed
        )

    @property
    def affects_trust_graph(self) -> bool:
        """Whether a consumer must recompute trust neighborhoods."""
        return bool(self.trust_added or self.trust_removed or self.trust_changed)

    @property
    def affects_profiles(self) -> bool:
        """Whether a consumer must rebuild this agent's taxonomy profile."""
        return bool(
            self.ratings_added or self.ratings_removed or self.ratings_changed
        )


def summarize_homepage_update(old: Graph, new: Graph) -> HomepageUpdate:
    """Summarize the revision of one agent's homepage.

    Both graphs must parse as homepages of the *same* principal;
    :class:`ValueError` otherwise.
    """
    old_agent, old_trust, old_ratings = parse_agent_homepage(old)
    new_agent, new_trust, new_ratings = parse_agent_homepage(new)
    if old_agent.uri != new_agent.uri:
        raise ValueError(
            f"homepage principal changed: {old_agent.uri} -> {new_agent.uri}"
        )

    old_trust_map = {s.target: s for s in old_trust}
    new_trust_map = {s.target: s for s in new_trust}
    trust_added = tuple(
        new_trust_map[t] for t in sorted(new_trust_map.keys() - old_trust_map.keys())
    )
    trust_removed = tuple(
        old_trust_map[t] for t in sorted(old_trust_map.keys() - new_trust_map.keys())
    )
    trust_changed = tuple(
        new_trust_map[t]
        for t in sorted(new_trust_map.keys() & old_trust_map.keys())
        if new_trust_map[t].value != old_trust_map[t].value
    )

    old_rating_map = {r.product: r for r in old_ratings}
    new_rating_map = {r.product: r for r in new_ratings}
    ratings_added = tuple(
        new_rating_map[p]
        for p in sorted(new_rating_map.keys() - old_rating_map.keys())
    )
    ratings_removed = tuple(
        old_rating_map[p]
        for p in sorted(old_rating_map.keys() - new_rating_map.keys())
    )
    ratings_changed = tuple(
        new_rating_map[p]
        for p in sorted(new_rating_map.keys() & old_rating_map.keys())
        if new_rating_map[p].value != old_rating_map[p].value
    )

    return HomepageUpdate(
        agent=new_agent.uri,
        trust_added=trust_added,
        trust_removed=trust_removed,
        trust_changed=trust_changed,
        ratings_added=ratings_added,
        ratings_removed=ratings_removed,
        ratings_changed=ratings_changed,
    )
