"""EX19 — similarity engine comparison (python oracle vs numpy kernels).

EX8 measures the *algorithmic* claim of §2 (global CF scales with the
community, the trust-bounded pipeline with the neighborhood) and
therefore pins the python engine.  This experiment measures the other
axis: how much the vectorized engine of :mod:`repro.perf` buys on the
identical workload, and that it buys it without changing any number.

For each community size the principal's community ranking is computed
twice — once per candidate pair through the dict oracle, once through a
:class:`~repro.perf.matrix.ProfileMatrix` shared by all principals — and
the table reports per-principal wall clock, speedup, and the largest
absolute score disagreement (must stay below 1e-9).
"""

from __future__ import annotations

from ..core.profiles import TaxonomyProfileBuilder
from ..core.recommender import ProfileStore
from ..core.similarity import top_similar
from ..datasets.amazon import book_taxonomy_config
from ..datasets.generators import CommunityConfig, generate_community
from ..obs import Stopwatch, get_tracer
from ..perf.engine import numpy_available
from .protocol import Table

__all__ = ["run_ex19_engine"]


def run_ex19_engine(
    sizes: tuple[int, ...] = (100, 200, 400),
    principals: int = 20,
    measure: str = "pearson",
    domain: str = "union",
    seed: int = 29,
) -> Table:
    """Per-principal community-ranking latency, python vs numpy engine.

    The numpy column includes the one-time matrix pack, amortized over
    *principals* — the same accounting a recommender session sees, where
    :meth:`~repro.core.recommender.ProfileStore.matrix` is built once
    and reused for every query.
    """
    table = Table(
        title=f"EX19 — similarity engine comparison ({measure}/{domain})",
        headers=["agents", "topics", "python ms", "numpy ms", "speedup", "max|delta|"],
    )
    if not numpy_available():
        table.add_note("numpy unavailable: only the python oracle can run here.")
        return table
    from ..perf.engine import community_scores
    from ..perf.matrix import ProfileMatrix

    for size in sizes:
        config = CommunityConfig(
            n_agents=size,
            n_products=size * 2,
            n_clusters=8,
            seed=seed,
            taxonomy=book_taxonomy_config(target_topics=600, seed=seed),
        )
        community = generate_community(config)
        dataset = community.dataset
        store = ProfileStore(dataset, TaxonomyProfileBuilder(community.taxonomy))
        agents = sorted(dataset.agents)
        profiles = {agent: store.profile(agent) for agent in agents}
        targets = agents[:principals]

        with get_tracer().span("ex19.size", agents=size) as span:
            python_watch = Stopwatch()
            with python_watch:
                python_rankings = [
                    top_similar(
                        profiles[agent],
                        profiles,
                        measure=measure,
                        domain=domain,
                        engine="python",
                    )
                    for agent in targets
                ]
            python_ms = python_watch.elapsed_ms / len(targets)

            numpy_watch = Stopwatch()
            with numpy_watch:
                matrix = ProfileMatrix.from_profiles(profiles)
                numpy_scores = [
                    community_scores(
                        profiles[agent], matrix, measure=measure, domain=domain
                    )
                    for agent in targets
                ]
            numpy_ms = numpy_watch.elapsed_ms / len(targets)
            # Wall-clock numbers stay out of span attrs: same-seed traces
            # must be identical modulo the duration_ms field alone.
            span.set("principals", len(targets))

        max_delta = 0.0
        for ranking, scores in zip(python_rankings, numpy_scores):
            lookup = dict(zip(matrix.ids, scores.tolist()))
            for identifier, value in ranking:
                max_delta = max(max_delta, abs(value - lookup[identifier]))

        table.add_row(
            size,
            matrix.width,
            f"{python_ms:.2f}",
            f"{numpy_ms:.2f}",
            f"{python_ms / numpy_ms:.1f}x" if numpy_ms > 0 else "inf",
            f"{max_delta:.1e}",
        )
    table.add_note(
        "numpy ms includes the one-time matrix pack amortized over "
        f"{principals} principals; max|delta| is the largest absolute "
        "score disagreement between engines (acceptance bound 1e-9)."
    )
    return table
