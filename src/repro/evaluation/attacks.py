"""Attack models for the security experiments (EX4, EX7).

§2 of the paper: "Decentralized systems … cannot prevent deception and
insincerity.  Spoofing and identity forging thus become facile to
achieve."  §3.2: "malicious agents a_j can accomplish high similarity with
a_i by simply copying its profile."  Two attack models operationalize
those threats:

* :func:`inject_sybil_region` — the canonical trust-metric attack from
  Levien's analysis: the adversary mints ``n_sybils`` fake identities and
  wires them into a dense sub-network.  The only thing the adversary
  cannot forge is *edges from honest agents into the region*; those
  ``n_bridges`` "attack edges" are the security bottleneck a good group
  metric exploits.
* :func:`inject_profile_copy_attack` — the CF-manipulation attack: sybils
  copy the victim's rating profile verbatim (maximizing similarity) and
  append the products the adversary wants pushed.

Both mutate a *copy* of the input dataset and return ground truth for
scoring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.models import Agent, Dataset, Product, Rating, TrustStatement

__all__ = [
    "ProfileCopyAttack",
    "SybilRegion",
    "inject_profile_copy_attack",
    "inject_sybil_region",
]

SYBIL_PREFIX = "http://sybil.example.org/s"


@dataclass(frozen=True, slots=True)
class SybilRegion:
    """Ground truth of an injected sybil region."""

    dataset: Dataset
    sybils: frozenset[str]
    bridges: tuple[TrustStatement, ...]


@dataclass(frozen=True, slots=True)
class ProfileCopyAttack:
    """Ground truth of an injected profile-copy attack."""

    dataset: Dataset
    sybils: frozenset[str]
    pushed_products: frozenset[str]
    victim: str


def _copy_dataset(dataset: Dataset) -> Dataset:
    return Dataset(
        agents=dict(dataset.agents),
        products=dict(dataset.products),
        trust=dict(dataset.trust),
        ratings=dict(dataset.ratings),
    )


def _sybil_uri(index: int, wave: int) -> str:
    """URI for the *index*-th sybil of injection *wave*.

    Wave 0 keeps the historical flat namespace so existing experiment
    tables stay byte-identical; later waves embed the wave number so
    repeated injections on one dataset mint disjoint identities.
    """
    if wave == 0:
        return f"{SYBIL_PREFIX}{index:04d}"
    return f"{SYBIL_PREFIX}w{wave:02d}-{index:04d}"


def _mint_sybils(dataset: Dataset, n_sybils: int, wave: int = 0) -> list[str]:
    sybils = [_sybil_uri(i, wave) for i in range(n_sybils)]
    for i, uri in enumerate(sybils):
        if uri in dataset.agents:
            raise ValueError(
                f"sybil identity collision: {uri!r} already exists; "
                "use a distinct `wave` for repeated injections"
            )
        name = f"Sybil {i}" if wave == 0 else f"Sybil {wave}/{i}"
        dataset.add_agent(Agent(uri=uri, name=name))
    return sybils


def _wire_region(
    dataset: Dataset,
    sybils: list[str],
    rng: random.Random,
    internal_degree: int,
) -> None:
    """Densely interconnect the sybil region with full-trust edges."""
    for uri in sybils:
        others = [s for s in sybils if s != uri]
        rng.shuffle(others)
        for target in others[:internal_degree]:
            dataset.add_trust(TrustStatement(source=uri, target=target, value=1.0))


def inject_sybil_region(
    dataset: Dataset,
    n_sybils: int,
    n_bridges: int,
    seed: int = 0,
    internal_degree: int = 5,
    bridge_weight: float = 0.9,
    wave: int = 0,
) -> SybilRegion:
    """Inject a dense sybil region reached by *n_bridges* attack edges.

    Bridge sources are honest agents drawn uniformly; each bridge targets
    a uniformly drawn sybil with weight *bridge_weight* (a compromised or
    careless honest agent vouching for a fake).  Returns the attacked
    dataset copy plus the ground truth.

    *wave* namespaces the minted identities: repeated injections on one
    dataset must pass distinct waves, otherwise the second call would
    collide with the first ring's URIs (a :class:`ValueError`, not a
    silent merge).
    """
    if n_sybils < 1:
        raise ValueError("n_sybils must be at least 1")
    if n_bridges < 0:
        raise ValueError("n_bridges must be non-negative")
    if wave < 0:
        raise ValueError("wave must be non-negative")
    rng = random.Random(seed)
    attacked = _copy_dataset(dataset)
    honest = sorted(dataset.agents)
    sybils = _mint_sybils(attacked, n_sybils, wave=wave)
    _wire_region(attacked, sybils, rng, min(internal_degree, n_sybils - 1))

    bridges: list[TrustStatement] = []
    for _ in range(n_bridges):
        source = honest[rng.randrange(len(honest))]
        target = sybils[rng.randrange(len(sybils))]
        statement = TrustStatement(source=source, target=target, value=bridge_weight)
        attacked.add_trust(statement)
        bridges.append(statement)
    return SybilRegion(
        dataset=attacked,
        sybils=frozenset(sybils),
        bridges=tuple(bridges),
    )


def inject_profile_copy_attack(
    dataset: Dataset,
    victim: str,
    n_sybils: int,
    n_pushed: int = 3,
    n_bridges: int = 0,
    seed: int = 0,
    wave: int = 0,
) -> ProfileCopyAttack:
    """Inject sybils that copy *victim*'s profile and push attacker items.

    Each sybil replicates every positive rating of the victim (the §3.2
    similarity-forging move) and additionally rates ``n_pushed`` freshly
    minted attacker products with +1.0.  Sybils interconnect with full
    trust; *n_bridges* optional attack edges from honest agents model
    partially successful social engineering.
    """
    if victim not in dataset.agents:
        raise KeyError(f"unknown victim agent {victim!r}")
    if n_sybils < 1:
        raise ValueError("n_sybils must be at least 1")
    if wave < 0:
        raise ValueError("wave must be non-negative")
    rng = random.Random(seed)
    attacked = _copy_dataset(dataset)
    sybils = _mint_sybils(attacked, n_sybils, wave=wave)
    _wire_region(attacked, sybils, rng, min(5, n_sybils - 1))

    pushed = (
        [f"isbn:attack{i:04d}" for i in range(n_pushed)]
        if wave == 0
        else [f"isbn:attack-w{wave:02d}-{i:04d}" for i in range(n_pushed)]
    )
    for identifier in pushed:
        attacked.add_product(
            Product(identifier=identifier, title=f"Pushed {identifier}")
        )

    victim_positives = [
        product
        for product, value in dataset.ratings_of(victim).items()
        if value > 0
    ]
    for uri in sybils:
        for product in victim_positives:
            attacked.add_rating(Rating(agent=uri, product=product, value=1.0))
        for product in pushed:
            attacked.add_rating(Rating(agent=uri, product=product, value=1.0))

    honest = sorted(dataset.agents)
    for _ in range(n_bridges):
        source = honest[rng.randrange(len(honest))]
        target = sybils[rng.randrange(len(sybils))]
        attacked.add_trust(TrustStatement(source=source, target=target, value=0.9))

    return ProfileCopyAttack(
        dataset=attacked,
        sybils=frozenset(sybils),
        pushed_products=frozenset(pushed),
        victim=victim,
    )
