"""The EX1–EX11 experiment suite (see DESIGN.md §5).

The paper prints no numeric tables — its single worked artifact is
Example 1 — so each experiment here operationalizes one of its claims as
a measurable table.  Every function is deterministic given its seed,
returns a :class:`~repro.evaluation.protocol.Table`, and is wrapped by
one benchmark under ``benchmarks/`` plus assertions under ``tests/``.

All experiments accept an optional pre-generated community so callers can
share the (comparatively expensive) generation step; defaults are sized
to finish in seconds.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..core.models import Dataset
from ..core.neighborhood import NeighborhoodFormation
from ..core.profiles import (
    Profile,
    TaxonomyProfileBuilder,
    descriptor_score_path,
    flat_category_profile,
    product_profile,
)
from ..core.recommender import (
    PopularityRecommender,
    ProfileStore,
    PureCFRecommender,
    RandomRecommender,
    Recommender,
    SemanticWebRecommender,
    TrustOnlyRecommender,
)
from ..core.similarity import pearson, profile_overlap
from ..core.synthesis import BordaCount, LinearBlend, Multiplicative, TrustFilter
from ..core.taxonomy import Taxonomy, figure1_fragment
from ..datasets.amazon import book_taxonomy_config, dvd_taxonomy_config
from ..datasets.generators import CommunityConfig, SyntheticCommunity, generate_community
from ..obs import Stopwatch, get_tracer
from ..trust.advogato import Advogato
from ..trust.appleseed import Appleseed
from ..trust.engine import rank_many
from ..trust.graph import TrustGraph
from ..trust.scalar import multiplicative_path_trust, scalar_neighborhood
from .attacks import inject_profile_copy_attack, inject_sybil_region
from .metrics import mean, standard_error
from .protocol import Table, evaluate_recommender, holdout_split

if TYPE_CHECKING:  # pragma: no cover
    from ..perf.parallel import ParallelExperimentRunner

__all__ = [
    "default_community",
    "run_ex01_example1",
    "run_ex02_trust_similarity",
    "run_ex03_appleseed_convergence",
    "run_ex04_attack_resistance",
    "run_ex05_profile_overlap",
    "run_ex06_recommendation_quality",
    "run_ex07_manipulation",
    "run_ex08_scalability",
    "run_ex09_taxonomy_structure",
    "run_ex10_synthesis",
    "run_ex11_crawler",
]

#: Paper-printed Example 1 values (for side-by-side display).
PAPER_EXAMPLE1 = {
    "Algebra": 29.087,
    "Pure": 14.543,
    "Mathematics": 4.848,
    "Science": 1.212,
    "Books": 0.303,
}


def default_community(
    seed: int = 42,
    n_agents: int = 400,
    n_products: int = 800,
) -> SyntheticCommunity:
    """The shared default community for the experiment suite."""
    config = CommunityConfig(
        n_agents=n_agents,
        n_products=n_products,
        n_clusters=8,
        seed=seed,
        taxonomy=book_taxonomy_config(target_topics=800, seed=seed),
    )
    with get_tracer().span(
        "community.generate", agents=n_agents, products=n_products, seed=seed
    ):
        return generate_community(config)


# ---------------------------------------------------------------------------
# EX1 — Figure 1 / Example 1: topic score assignment
# ---------------------------------------------------------------------------


def run_ex01_example1() -> Table:
    """Reproduce Example 1's score assignment on the Figure 1 fragment."""
    taxonomy = figure1_fragment()
    # s = 1000, 4 books, Matrix Analysis carries 5 descriptors:
    budget = 1000.0 / (4 * 5)
    scores = descriptor_score_path(taxonomy, "Algebra", budget)
    table = Table(
        title="EX1 — Example 1 topic score assignment (s=1000, 4 books, 5 descriptors)",
        headers=["topic", "paper", "reproduced", "abs diff"],
    )
    for topic in ("Algebra", "Pure", "Mathematics", "Science", "Books"):
        reproduced = scores[topic]
        paper = PAPER_EXAMPLE1[topic]
        table.add_row(topic, f"{paper:.3f}", f"{reproduced:.3f}", f"{abs(reproduced - paper):.4f}")
    table.add_note(
        "per-descriptor budget s/(4*5) = 50; reproduced values are the exact "
        "Eq. 3 solution; the paper's figures differ only in the final digit "
        "(rounding)."
    )
    table.add_note(f"path total re-sums to budget: {sum(scores.values()):.6f} = 50")
    return table


# ---------------------------------------------------------------------------
# EX2 — trust and interest profiles correlate
# ---------------------------------------------------------------------------


def run_ex02_trust_similarity(
    community: SyntheticCommunity | None = None,
    n_samples: int = 400,
    seed: int = 7,
    engine: str = "auto",
    runner: ParallelExperimentRunner | None = None,
) -> Table:
    """Mean profile similarity of trusted pairs vs 2-hop pairs vs random.

    Besides the raw statement classes, a fourth class correlates the
    *metric-formed* neighborhoods the §3.2 pipeline actually uses: each
    sampled source paired with its top-ranked Appleseed peer, computed
    as one sharded :func:`~repro.trust.engine.rank_many` sweep over the
    packed trust matrix (*engine*/*runner* select the kernel and the
    fan-out; results are engine- and worker-count-independent).
    """
    community = community or default_community()
    dataset = community.dataset
    rng = random.Random(seed)
    store = ProfileStore(dataset, TaxonomyProfileBuilder(community.taxonomy))
    graph = TrustGraph.from_dataset(dataset)
    agents = sorted(dataset.agents)

    direct_pairs = [
        (s.source, s.target) for s in dataset.iter_trust() if s.value > 0
    ]
    rng.shuffle(direct_pairs)
    direct_pairs = direct_pairs[:n_samples]

    two_hop_pairs: list[tuple[str, str]] = []
    attempts = 0
    while len(two_hop_pairs) < n_samples and attempts < n_samples * 40:
        attempts += 1
        source = agents[rng.randrange(len(agents))]
        mids = list(graph.positive_successors(source))
        if not mids:
            continue
        mid = mids[rng.randrange(len(mids))]
        far = list(graph.positive_successors(mid))
        candidates = [
            f for f in far if f != source and graph.weight(source, f) is None
        ]
        if candidates:
            two_hop_pairs.append((source, candidates[rng.randrange(len(candidates))]))

    random_pairs: list[tuple[str, str]] = []
    while len(random_pairs) < n_samples:
        a = agents[rng.randrange(len(agents))]
        b = agents[rng.randrange(len(agents))]
        if a != b:
            random_pairs.append((a, b))

    # Appleseed-formed pairs: one multi-source sweep over the shared
    # packed matrix; capped so the python fallback stays test-sized.
    sweep_sources = sorted(
        {agents[rng.randrange(len(agents))] for _ in range(min(n_samples, 60))}
    )
    neighborhood_pairs = [
        (result.source, result.top(1)[0][0])
        for result in rank_many(
            graph, sweep_sources, engine=engine, runner=runner
        )
        if result.ranks
    ]

    from ..core.similarity import cosine

    table = Table(
        title="EX2 — trust/similarity correlation (taxonomy profiles)",
        headers=["pair class", "pairs", "pearson", "pearson se", "cosine"],
    )
    for label, pairs in (
        ("direct trust (1 hop)", direct_pairs),
        ("appleseed top peer", neighborhood_pairs),
        ("2-hop trust", two_hop_pairs),
        ("random", random_pairs),
    ):
        pearsons = [pearson(store.profile(a), store.profile(b)) for a, b in pairs]
        cosines = [cosine(store.profile(a), store.profile(b)) for a, b in pairs]
        table.add_row(
            label,
            len(pairs),
            f"{mean(pearsons):.4f}",
            f"{standard_error(pearsons):.4f}",
            f"{mean(cosines):.4f}",
        )
    table.add_note(
        "paper claim (§3.2, ref [5]): trusted peers are more similar than "
        "random peers, with attenuation over trust distance.  Union-domain "
        "Pearson over sparse non-negative profiles is negatively offset; "
        "the *ordering* is the reproduced result."
    )
    return table


# ---------------------------------------------------------------------------
# EX3 — Appleseed convergence and neighborhood size
# ---------------------------------------------------------------------------


def run_ex03_appleseed_convergence(
    community: SyntheticCommunity | None = None,
    n_sources: int = 10,
    seed: int = 3,
    engine: str = "auto",
    runner: ParallelExperimentRunner | None = None,
) -> Table:
    """Iterations and neighborhood size across d, T_c and injection.

    Each ``(d, T_c, injection)`` configuration runs as one sharded
    :func:`~repro.trust.engine.rank_many` sweep; *engine* and *runner*
    change wall-clock only, never a table cell.
    """
    community = community or default_community()
    graph = TrustGraph.from_dataset(community.dataset)
    rng = random.Random(seed)
    agents = sorted(community.dataset.agents)
    sources = [agents[rng.randrange(len(agents))] for _ in range(n_sources)]

    table = Table(
        title="EX3 — Appleseed convergence (mean over sources)",
        headers=["d", "T_c", "injection", "iterations", "ranked>0.1", "top rank"],
    )
    for d in (0.5, 0.65, 0.85, 0.95):
        for threshold in (0.1, 0.01):
            for injection in (200.0,):
                iterations: list[float] = []
                sizes: list[float] = []
                peaks: list[float] = []
                metric = Appleseed(
                    spreading_factor=d, convergence_threshold=threshold
                )
                with get_tracer().span(
                    "ex03.config", d=d, T_c=threshold, injection=injection
                ) as span:
                    for result in rank_many(
                        graph,
                        sources,
                        metric=metric,
                        injection=injection,
                        engine=engine,
                        runner=runner,
                    ):
                        iterations.append(result.iterations)
                        sizes.append(len(result.neighborhood(0.1)))
                        peaks.append(max(result.ranks.values(), default=0.0))
                    span.set("sources", len(sources))
                    span.set("total_iterations", int(sum(iterations)))
                table.add_row(
                    d,
                    threshold,
                    int(injection),
                    f"{mean(iterations):.1f}",
                    f"{mean(sizes):.1f}",
                    f"{mean(peaks):.2f}",
                )
    table.add_note(
        "expected shape: higher d and lower T_c -> more iterations and larger "
        "neighborhoods; rank mass concentrates near the source for low d."
    )
    return table


# ---------------------------------------------------------------------------
# EX4 — attack resistance: Appleseed vs Advogato vs scalar path metric
# ---------------------------------------------------------------------------


def run_ex04_attack_resistance(
    community: SyntheticCommunity | None = None,
    n_sybils: int = 50,
    bridge_counts: tuple[int, ...] = (0, 1, 2, 5, 10, 20),
    top_k: int = 50,
    seed: int = 11,
    engine: str = "auto",
) -> Table:
    """Fraction of sybils admitted into the neighborhood vs #attack edges."""
    community = community or default_community()
    dataset = community.dataset
    agents = sorted(dataset.agents)
    source = agents[0]

    from ..trust.pagerank import PersonalizedPageRank

    table = Table(
        title=f"EX4 — sybil admission ({n_sybils} sybils, top-{top_k} / accepted set)",
        headers=[
            "bridges",
            "appleseed sybils@topK",
            "pagerank sybils@topK",
            "advogato sybils/accepted",
            "scalar-path sybils/admitted",
        ],
    )
    for n_bridges in bridge_counts:
        region = inject_sybil_region(
            dataset, n_sybils=n_sybils, n_bridges=n_bridges, seed=seed
        )
        graph = TrustGraph.from_dataset(region.dataset)

        apple = Appleseed(engine=engine).compute(graph, source)
        top = [agent for agent, _ in apple.top(top_k)]
        apple_frac = sum(1 for a in top if a in region.sybils) / max(len(top), 1)

        ppr = PersonalizedPageRank(engine=engine).compute(graph, source)
        ppr_top = [agent for agent, _ in ppr.top(top_k)]
        ppr_frac = sum(1 for a in ppr_top if a in region.sybils) / max(len(ppr_top), 1)

        advogato = Advogato(target_size=top_k, engine=engine).compute(graph, source)
        accepted = advogato.accepted - {source}
        adv_frac = (
            sum(1 for a in accepted if a in region.sybils) / len(accepted)
            if accepted
            else 0.0
        )

        scalar = multiplicative_path_trust(graph, source, max_depth=6)
        admitted = scalar_neighborhood(scalar, threshold=0.2)
        scalar_frac = (
            sum(1 for a in admitted if a in region.sybils) / len(admitted)
            if admitted
            else 0.0
        )
        table.add_row(
            n_bridges,
            f"{apple_frac:.3f}",
            f"{ppr_frac:.3f}",
            f"{adv_frac:.3f} ({len(accepted)})",
            f"{scalar_frac:.3f} ({len(admitted)})",
        )
    table.add_note(
        "expected shape: with 0 bridges no metric admits sybils; group "
        "metrics (Appleseed, Advogato) bound admission by the bridge cut "
        "while the scalar path metric admits the whole region once any "
        "high-trust path exists."
    )
    return table


# ---------------------------------------------------------------------------
# EX5 — profile overlap: product vs flat category vs taxonomy vectors
# ---------------------------------------------------------------------------


def _ex05_profile_chunk(
    task: tuple[Dataset, Taxonomy, Sequence[str]],
) -> list[tuple[str, Profile, Profile, Profile]]:
    """Worker: all three profile representations for one agent chunk.

    Module-level so :class:`~repro.perf.parallel.ParallelExperimentRunner`
    can pickle it into worker processes.
    """
    dataset, taxonomy, agents = task
    builder = TaxonomyProfileBuilder(taxonomy)
    out: list[tuple[str, Profile, Profile, Profile]] = []
    for agent in agents:
        ratings = dataset.ratings_of(agent)
        out.append(
            (
                agent,
                builder.build(ratings, dataset.products),
                flat_category_profile(ratings, dataset.products, known_topics=taxonomy),
                product_profile(ratings),
            )
        )
    return out


def run_ex05_profile_overlap(
    community: SyntheticCommunity | None = None,
    n_pairs: int = 500,
    seed: int = 5,
    runner: "ParallelExperimentRunner | None" = None,
) -> Table:
    """Fraction of agent pairs with any overlap, per representation.

    *runner* parallelizes the per-agent profile builds; the merge is
    keyed by agent identifier, so the table is identical to a serial run.
    """
    community = community or default_community()
    dataset = community.dataset
    taxonomy = community.taxonomy
    rng = random.Random(seed)
    agents = sorted(dataset.agents)

    taxonomy_profiles = {}
    flat_profiles = {}
    product_profiles = {}
    if runner is None:
        built = _ex05_profile_chunk((dataset, taxonomy, agents))
    else:
        from ..perf.parallel import split_evenly

        chunks = split_evenly(agents, runner.effective_workers())
        built = [
            entry
            for chunk_result in runner.map(
                _ex05_profile_chunk,
                [(dataset, taxonomy, chunk) for chunk in chunks],
            )
            for entry in chunk_result
        ]
    for agent, tax, flat, prod in built:
        taxonomy_profiles[agent] = tax
        flat_profiles[agent] = flat
        product_profiles[agent] = prod

    pairs = []
    while len(pairs) < n_pairs:
        a = agents[rng.randrange(len(agents))]
        b = agents[rng.randrange(len(agents))]
        if a != b:
            pairs.append((a, b))

    table = Table(
        title="EX5 — profile overlap across representations",
        headers=[
            "representation",
            "pairs w/ overlap",
            "mean jaccard",
            "mean support",
        ],
    )
    for label, profiles in (
        ("product vectors", product_profiles),
        ("flat categories", flat_profiles),
        ("taxonomy (Eq. 3)", taxonomy_profiles),
    ):
        overlaps = [profile_overlap(profiles[a], profiles[b]) for a, b in pairs]
        nonzero = sum(1 for o in overlaps if o > 0) / len(overlaps)
        support = mean([float(len(p)) for p in profiles.values()])
        table.add_row(label, f"{nonzero:.3f}", f"{mean(overlaps):.3f}", f"{support:.1f}")
    table.add_note(
        "paper claim (§2/§3.3): raw product vectors barely overlap; taxonomy "
        "propagation makes similarity meaningful even with zero co-rated items."
    )
    return table


# ---------------------------------------------------------------------------
# EX6 — recommendation quality across methods
# ---------------------------------------------------------------------------


def _build_methods(
    train: Dataset, taxonomy: Taxonomy
) -> list[tuple[str, Recommender]]:
    """All competing recommenders over one training dataset."""
    store = ProfileStore(train, TaxonomyProfileBuilder(taxonomy))
    graph = TrustGraph.from_dataset(train)
    hybrid = SemanticWebRecommender(
        dataset=train,
        graph=graph,
        profiles=store,
        formation=NeighborhoodFormation(),
        synthesis=LinearBlend(gamma=0.5),
    )
    return [
        ("hybrid (trust+taxonomy)", hybrid),
        (
            "pure CF (taxonomy)",
            PureCFRecommender(dataset=train, profiles=store, representation="taxonomy"),
        ),
        (
            "pure CF (product)",
            PureCFRecommender(dataset=train, representation="product"),
        ),
        (
            "trust only",
            TrustOnlyRecommender(dataset=train, graph=graph),
        ),
        ("popularity", PopularityRecommender(dataset=train)),
        ("random", RandomRecommender(dataset=train, seed=1)),
    ]


def run_ex06_recommendation_quality(
    community: SyntheticCommunity | None = None,
    top_n: int = 10,
    per_user: int = 5,
    max_users: int = 40,
    seed: int = 13,
    runner: "ParallelExperimentRunner | None" = None,
) -> Table:
    """Leave-``per_user``-out precision/recall/F1@N across methods.

    *runner* parallelizes per-user scoring inside each method's
    evaluation; the table is byte-identical to a serial run.
    """
    community = community or default_community()
    split = holdout_split(
        community.dataset,
        per_user=per_user,
        min_ratings=per_user * 2 + 2,
        max_users=max_users,
        seed=seed,
    )
    table = Table(
        title=f"EX6 — recommendation quality (top-{top_n}, leave-{per_user}-out)",
        headers=["method", "users", "precision", "recall", "F1", "hit-rate"],
    )
    for name, recommender in _build_methods(split.train, community.taxonomy):
        report = evaluate_recommender(
            name, recommender, split, top_n=top_n, runner=runner
        )
        table.add_row(*report.as_row())
    table.add_note(
        "expected shape: personalized methods beat popularity and random; "
        "the hybrid is competitive with pure CF while using bounded "
        "neighborhoods only."
    )
    return table


# ---------------------------------------------------------------------------
# EX7 — robustness to profile-copy manipulation
# ---------------------------------------------------------------------------


def run_ex07_manipulation(
    community: SyntheticCommunity | None = None,
    sybil_counts: tuple[int, ...] = (5, 25, 50),
    n_victims: int = 8,
    top_n: int = 10,
    seed: int = 17,
) -> Table:
    """Attacker-item contamination of top-N lists, with/without trust."""
    community = community or default_community()
    dataset = community.dataset
    taxonomy = community.taxonomy
    rng = random.Random(seed)
    candidates = sorted(
        agent
        for agent in dataset.agents
        if len([v for v in dataset.ratings_of(agent).values() if v > 0]) >= 8
    )
    rng.shuffle(candidates)
    victims = candidates[:n_victims]

    table = Table(
        title=f"EX7 — profile-copy attack contamination (top-{top_n}, mean over victims)",
        headers=["sybils", "hybrid (trust-filtered)", "pure CF (trust-blind)"],
    )
    for n_sybils in sybil_counts:
        hybrid_rates: list[float] = []
        cf_rates: list[float] = []
        for victim in victims:
            attack = inject_profile_copy_attack(
                dataset, victim=victim, n_sybils=n_sybils, n_pushed=3, seed=seed
            )
            train = attack.dataset
            store = ProfileStore(train, TaxonomyProfileBuilder(taxonomy))
            hybrid = SemanticWebRecommender(
                dataset=train,
                graph=TrustGraph.from_dataset(train),
                profiles=store,
            )
            cf = PureCFRecommender(
                dataset=train, profiles=store, representation="taxonomy"
            )
            for recommender, bucket in ((hybrid, hybrid_rates), (cf, cf_rates)):
                recs = [r.product for r in recommender.recommend(victim, limit=top_n)]
                contamination = (
                    sum(1 for p in recs if p in attack.pushed_products) / top_n
                )
                bucket.append(contamination)
        table.add_row(n_sybils, f"{mean(hybrid_rates):.3f}", f"{mean(cf_rates):.3f}")
    table.add_note(
        "paper claim (§3.2): CF is 'highly susceptive to manipulation' by "
        "profile copying; trust filtering shields the neighborhood because "
        "sybils receive no trust edges from honest agents."
    )
    return table


# ---------------------------------------------------------------------------
# EX8 — scalability: bounded neighborhoods vs global CF
# ---------------------------------------------------------------------------


def run_ex08_scalability(
    sizes: tuple[int, ...] = (200, 400, 800),
    queries: int = 5,
    seed: int = 19,
    engine: str = "python",
) -> Table:
    """Wall-clock per recommendation as the community grows.

    Pins ``engine="python"`` by default: this table measures the
    *algorithmic* claim of §2 (global CF scales with |A|, the
    trust-bounded pipeline with the neighborhood), so the vectorized
    engine — which flattens the constant factor — would obscure exactly
    the shape under test.  EX19 measures the engine speedup itself.
    """
    table = Table(
        title="EX8 — per-recommendation latency vs community size",
        headers=["agents", "hybrid ms", "global CF ms", "ratio CF/hybrid"],
    )
    for size in sizes:
        config = CommunityConfig(
            n_agents=size,
            n_products=size * 2,
            n_clusters=8,
            seed=seed,
            taxonomy=book_taxonomy_config(target_topics=600, seed=seed),
        )
        community = generate_community(config)
        dataset = community.dataset
        store = ProfileStore(dataset, TaxonomyProfileBuilder(community.taxonomy))
        graph = TrustGraph.from_dataset(dataset)
        hybrid = SemanticWebRecommender(
            dataset=dataset,
            graph=graph,
            profiles=store,
            formation=NeighborhoodFormation(
                metric=Appleseed(max_depth=4, engine=engine), max_peers=30
            ),
            engine=engine,
        )
        cf = PureCFRecommender(dataset=dataset, profiles=store, engine=engine)
        agents = sorted(dataset.agents)[:queries]
        for agent in agents:  # warm profile caches outside the timed region
            store.profile(agent)

        def time_per_query(recommender: Recommender) -> float:
            watch = Stopwatch()
            with watch:
                for agent in agents:
                    recommender.recommend(agent, limit=10)
            return watch.elapsed_ms / len(agents)

        hybrid_ms = time_per_query(hybrid)
        cf_ms = time_per_query(cf)
        table.add_row(
            size,
            f"{hybrid_ms:.1f}",
            f"{cf_ms:.1f}",
            f"{cf_ms / hybrid_ms:.2f}" if hybrid_ms > 0 else "inf",
        )
    table.add_note(
        "expected shape (§2): global CF cost grows with community size; the "
        "trust-bounded pipeline depends on neighborhood size, not |A|."
    )
    return table


# ---------------------------------------------------------------------------
# EX9 — taxonomy structure impact (books vs DVDs)
# ---------------------------------------------------------------------------


def run_ex09_taxonomy_structure(
    n_agents: int = 300,
    n_products: int = 600,
    seed: int = 23,
) -> Table:
    """EX5/EX6 summary metrics under deep-narrow vs broad-shallow taxonomies."""
    table = Table(
        title="EX9 — taxonomy structure impact (book-like vs DVD-like)",
        headers=[
            "taxonomy",
            "topics",
            "max depth",
            "mean branching",
            "pairs w/ overlap",
            "hybrid F1@10",
        ],
    )
    for label, tax_config in (
        ("book-like (deep)", book_taxonomy_config(target_topics=800, seed=seed)),
        ("dvd-like (broad)", dvd_taxonomy_config(target_topics=800, seed=seed)),
    ):
        config = CommunityConfig(
            n_agents=n_agents,
            n_products=n_products,
            n_clusters=8,
            seed=seed,
            taxonomy=tax_config,
        )
        community = generate_community(config)
        stats = community.taxonomy.branching_stats()

        overlap_table = run_ex05_profile_overlap(community, n_pairs=300, seed=seed)
        taxonomy_row = overlap_table.rows[-1]  # taxonomy representation row
        split = holdout_split(
            community.dataset, per_user=5, min_ratings=12, max_users=25, seed=seed
        )
        store = ProfileStore(split.train, TaxonomyProfileBuilder(community.taxonomy))
        hybrid = SemanticWebRecommender(
            dataset=split.train,
            graph=TrustGraph.from_dataset(split.train),
            profiles=store,
        )
        report = evaluate_recommender("hybrid", hybrid, split, top_n=10)
        table.add_row(
            label,
            stats["topics"],
            stats["max_depth"],
            f"{stats['mean_branching']:.1f}",
            taxonomy_row[1],
            f"{report.f1:.4f}",
        )
    table.add_note(
        "paper §6: 'we would like to better understand the impact that "
        "taxonomy structure may have upon profile generation and similarity "
        "computation' — this table is that study at small scale."
    )
    return table


# ---------------------------------------------------------------------------
# EX10 — rank synthesization strategies
# ---------------------------------------------------------------------------


def run_ex10_synthesis(
    community: SyntheticCommunity | None = None,
    top_n: int = 10,
    max_users: int = 40,
    seed: int = 29,
) -> Table:
    """EX6 metrics per §3.4 synthesis strategy."""
    community = community or default_community()
    split = holdout_split(
        community.dataset, per_user=5, min_ratings=12, max_users=max_users, seed=seed
    )
    train = split.train
    store = ProfileStore(train, TaxonomyProfileBuilder(community.taxonomy))
    graph = TrustGraph.from_dataset(train)

    strategies = [
        ("linear γ=0.25", LinearBlend(gamma=0.25)),
        ("linear γ=0.50", LinearBlend(gamma=0.5)),
        ("linear γ=0.75", LinearBlend(gamma=0.75)),
        ("multiplicative", Multiplicative()),
        ("borda", BordaCount()),
        ("trust filter", TrustFilter()),
    ]
    table = Table(
        title=f"EX10 — rank synthesis strategies (top-{top_n})",
        headers=["strategy", "users", "precision", "recall", "F1", "hit-rate"],
    )
    for name, strategy in strategies:
        recommender = SemanticWebRecommender(
            dataset=train,
            graph=graph,
            profiles=store,
            synthesis=strategy,
        )
        report = evaluate_recommender(name, recommender, split, top_n=top_n)
        table.add_row(*report.as_row())
    table.add_note(
        "§3.4 leaves synthesis as future work; this table compares the "
        "alternatives the paper proposes."
    )
    return table


# ---------------------------------------------------------------------------
# EX11 — crawler coverage and staleness
# ---------------------------------------------------------------------------


def run_ex11_crawler(
    community: SyntheticCommunity | None = None,
    budgets: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0),
    top_n: int = 10,
    seed: int = 31,
) -> Table:
    """Replica coverage and recommendation agreement vs crawl budget."""
    from ..web.crawler import Crawler, publish_community
    from ..web.network import SimulatedWeb

    community = community or default_community(n_agents=200, n_products=400)
    dataset = community.dataset
    taxonomy = community.taxonomy
    web = SimulatedWeb()
    taxonomy_uri, catalog_uri = publish_community(web, dataset, taxonomy)
    principal = sorted(dataset.agents)[0]

    # Reference recommendations from the complete data.
    full_store = ProfileStore(dataset, TaxonomyProfileBuilder(taxonomy))
    reference = SemanticWebRecommender(
        dataset=dataset,
        graph=TrustGraph.from_dataset(dataset),
        profiles=full_store,
    )
    reference_list = [r.product for r in reference.recommend(principal, limit=top_n)]

    table = Table(
        title=f"EX11 — crawl budget vs replica coverage and rec agreement (top-{top_n})",
        headers=[
            "budget (fraction)",
            "fetches",
            "agents replicated",
            "rec overlap (BFS)",
            "rec overlap (trust-first)",
        ],
    )
    n_agents = len(dataset.agents)

    def overlap_for(prioritize: bool, budget: int) -> tuple[int, int, str]:
        crawler = Crawler(web=web)
        crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        report = crawler.crawl(
            [principal], budget=budget, prioritize_by_trust=prioritize
        )
        partial, _ = crawler.store.assemble_dataset()
        partial_taxonomy = crawler.store.assemble_taxonomy()
        assert partial_taxonomy is not None
        if principal not in partial.agents or not reference_list:
            return report.fetched, len(partial.agents), "n/a"
        store = ProfileStore(partial, TaxonomyProfileBuilder(partial_taxonomy))
        recommender = SemanticWebRecommender(
            dataset=partial,
            graph=TrustGraph.from_dataset(partial),
            profiles=store,
        )
        recs = [r.product for r in recommender.recommend(principal, limit=top_n)]
        overlap = len(set(recs) & set(reference_list)) / len(reference_list)
        return report.fetched, len(partial.agents), f"{overlap:.2f}"

    for fraction in budgets:
        budget = max(1, int(n_agents * fraction))
        fetched, replicated, bfs_overlap = overlap_for(False, budget)
        _, _, prioritized_overlap = overlap_for(True, budget)
        table.add_row(fraction, fetched, replicated, bfs_overlap, prioritized_overlap)
    table.add_note(
        "expected shape: recommendation agreement with the full-knowledge "
        "reference rises with crawl budget and saturates well below 100% "
        "coverage — the trust neighborhood is local."
    )
    table.add_note(
        "measured insight: plain BFS tracks the Appleseed neighborhood "
        "better than path-trust-first ordering — Appleseed's backward "
        "edges make rank decay primarily with hop distance, which BFS "
        "matches, while best-first dives down high-trust chains that "
        "Appleseed has already attenuated."
    )
    return table
